//! Convergence race: a second flow joins a saturated 10 G link under three
//! schemes, and this example prints each scheme's throughput trace of the
//! joining flow as a sparkline plus the measured time to fair share —
//! the paper's headline "up to 80× faster than DCTCP" demonstration.
//!
//! Run with: `cargo run --release --example convergence`

use xpass::experiments::harness::{convergence_time, Scheme};
use xpass::expresspass::XPassConfig;
use xpass::net::ids::HostId;
use xpass::net::topology::Topology;
use xpass::sim::time::{Dur, SimTime};

fn main() {
    let link = 10_000_000_000u64;
    let rtt = Dur::us(100);
    for scheme in [
        Scheme::XPass(XPassConfig::aggressive()),
        Scheme::Rcp,
        Scheme::Dctcp,
    ] {
        let topo = Topology::dumbbell(2, link, rtt / 12);
        let mut net = scheme.build(topo, link, 3);
        net.set_sample_interval(rtt);
        let bytes = link / 8;
        net.add_flow(HostId(0), HostId(2), bytes, SimTime::ZERO);
        let join = SimTime::ZERO + Dur::ms(8);
        let late = net.add_flow(HostId(1), HostId(3), bytes, join);
        net.track_flow(late);
        net.run_until(join + Dur::ms(60));

        let eff = match scheme {
            Scheme::XPass(_) => 0.9482 * 1460.0 / 1538.0,
            _ => 1460.0 / 1538.0,
        };
        let fair = link as f64 / 2.0 * eff / 1e9;
        let conv = convergence_time(&net, late, join, fair, 0.30, 15);
        let series = net.flow_series(late).unwrap();
        let spark: String = series
            .samples
            .iter()
            .filter(|&&(t, _)| t >= join)
            .step_by(10)
            .map(|&(_, v)| match (v / fair * 3.0) as usize {
                0 => '_',
                1 => '.',
                2 => '-',
                3 => '=',
                _ => '^',
            })
            .collect();
        println!("{:<22} joinee trace: {spark}", scheme.name());
        match conv {
            Some(d) => println!(
                "{:<22} fair share in {} (~{:.0} RTTs)\n",
                "",
                d,
                d.as_secs_f64() / rtt.as_secs_f64()
            ),
            None => println!("{:<22} not converged within the window\n", ""),
        }
    }
}
