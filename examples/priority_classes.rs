//! Traffic classes via credit prioritization (paper §7): "prioritizing
//! flow A's credits over flow B's ... will result in the strict
//! prioritization of A over B."
//!
//! Two long ExpressPass flows share a 10 G bottleneck. The latency-critical
//! flow rides credit class 0 (strict priority); the bulk flow rides
//! class 1. Switches prioritize only the tiny credit packets — the data
//! path needs no priority queues at all — yet the class-0 flow takes the
//! whole link until it finishes, then class 1 instantly reclaims it.
//!
//! Run with: `cargo run --release --example priority_classes`

use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::ids::HostId;
use xpass::net::network::Network;
use xpass::net::topology::Topology;
use xpass::sim::time::{Dur, SimTime};

fn main() {
    let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(4));
    let mut cfg = NetConfig::expresspass().with_seed(5);
    cfg.credit_classes = 2;
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));

    // 20 MB latency-critical transfer in class 0; 40 MB bulk in class 1.
    let hi = net.add_flow_in_class(HostId(0), HostId(2), 20_000_000, SimTime::ZERO, 0);
    let lo = net.add_flow_in_class(HostId(1), HostId(3), 40_000_000, SimTime::ZERO, 1);

    let mut last = (0u64, 0u64);
    println!("{:>8} {:>12} {:>12}", "t(ms)", "class0 Gbps", "class1 Gbps");
    for step in 1..=14u64 {
        net.run_until(SimTime::ZERO + Dur::ms(step * 5));
        let cur = (net.delivered_bytes(hi), net.delivered_bytes(lo));
        println!(
            "{:>8} {:>12.2} {:>12.2}",
            step * 5,
            (cur.0 - last.0) as f64 * 8.0 / 5e-3 / 1e9,
            (cur.1 - last.1) as f64 * 8.0 / 5e-3 / 1e9,
        );
        last = cur;
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    let recs = net.flow_records();
    println!(
        "\nclass-0 FCT: {}   class-1 FCT: {}   data drops: {}",
        recs[0].fct.unwrap(),
        recs[1].fct.unwrap(),
        net.total_data_drops()
    );
}
