//! Incast: 32 senders dump 512 KB each onto one receiver simultaneously —
//! the partition/aggregate pattern that motivates the paper (§2).
//!
//! Compares ExpressPass against DCTCP on the same rack: the credit scheme
//! schedules data arrivals at packet granularity (tiny bounded queue, zero
//! loss); DCTCP absorbs the burst in queue and sheds the overflow.
//!
//! Run with: `cargo run --release --example incast`

use xpass::experiments::Scheme;
use xpass::expresspass::XPassConfig;
use xpass::net::ids::HostId;
use xpass::net::topology::Topology;
use xpass::sim::stats::Percentiles;
use xpass::sim::time::{Dur, SimTime};
use xpass::workloads::{add_all, incast};

fn main() {
    const SENDERS: usize = 32;
    const BYTES: u64 = 512_000;
    let link = 10_000_000_000u64;

    for scheme in [Scheme::XPass(XPassConfig::default()), Scheme::Dctcp] {
        let topo = Topology::star(SENDERS + 1, link, Dur::us(2));
        let mut net = scheme.build(topo, link, 7);
        let senders: Vec<HostId> = (0..SENDERS as u32).map(HostId).collect();
        let dst = HostId(SENDERS as u32);
        let specs = incast(&senders, dst, BYTES, SimTime::ZERO);
        add_all(&mut net, &specs);
        net.run_until_done(SimTime::ZERO + Dur::secs(5));
        net.finish_stats();

        let mut fcts = Percentiles::new();
        for r in net.flow_records() {
            fcts.add(r.fct.expect("all incast flows complete").as_secs_f64());
        }
        println!("== {} ==", scheme.name());
        println!(
            "  fct p50/p99/max : {:.2} / {:.2} / {:.2} ms",
            fcts.median() * 1e3,
            fcts.p99() * 1e3,
            fcts.max() * 1e3
        );
        println!("  data drops      : {}", net.total_data_drops());
        println!(
            "  max switch queue: {:.1} KB",
            net.max_switch_queue_bytes() as f64 / 1e3
        );
    }
}
