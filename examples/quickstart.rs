//! Quickstart: one ExpressPass flow over a 10 G dumbbell.
//!
//! Builds a topology, runs a 10 MB transfer under credit-scheduled
//! congestion control, and prints the numbers that make ExpressPass
//! interesting: goodput near the 94.82 % credit-metered ceiling, zero data
//! loss, and a data queue of at most a couple of packets.
//!
//! Run with: `cargo run --release --example quickstart`

use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::ids::HostId;
use xpass::net::network::Network;
use xpass::net::topology::Topology;
use xpass::sim::time::{Dur, SimTime};

fn main() {
    // A dumbbell: sender h0 — switch — switch — receiver h1, all 10 G.
    let topo = Topology::dumbbell(1, 10_000_000_000, Dur::us(4));

    // Credit-enabled network with the paper's default parameters.
    let cfg = NetConfig::expresspass().with_seed(42);
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));

    // One 10 MB flow.
    let size = 10_000_000u64;
    let flow = net.add_flow(HostId(0), HostId(1), size, SimTime::ZERO);

    let done = net.run_until_done(SimTime::ZERO + Dur::secs(1));
    net.finish_stats();

    assert!(net.flow_done(flow), "flow did not complete");
    let secs = done.as_secs_f64();
    println!(
        "transferred   : {:.1} MB in {:.3} ms",
        size as f64 / 1e6,
        secs * 1e3
    );
    println!(
        "goodput       : {:.2} Gbps (ceiling ≈ 9.00)",
        size as f64 * 8.0 / secs / 1e9
    );
    println!("data drops    : {}", net.total_data_drops());
    println!("credits sent  : {}", net.counters().credits_sent);
    println!(
        "credits shed  : {} (the congestion signal)",
        net.counters().credits_dropped
    );
    println!(
        "max data queue: {} bytes (≈ {} packets)",
        net.max_switch_queue_bytes(),
        net.max_switch_queue_bytes() / 1538
    );
    assert_eq!(net.total_data_drops(), 0, "ExpressPass must not drop data");
}
