//! Datacenter flow-completion times: a scaled-down §6.3 experiment.
//!
//! Generates a Poisson web-server workload (Table 2 flow sizes) at 60 %
//! ToR-uplink load on the paper's 192-host, 3:1-oversubscribed fat tree,
//! and compares per-size-bucket FCTs of ExpressPass against DCTCP and RCP.
//!
//! Run with: `cargo run --release --example datacenter_fct`

use xpass::experiments::harness::{fmt_secs, RealisticRun};
use xpass::experiments::{Scheme, SizeBucket};
use xpass::expresspass::XPassConfig;
use xpass::workloads::Workload;

fn main() {
    println!("workload: Web Server (Table 2), 2000 flows, load 0.6, 10G links\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "S avg/p99", "M avg/p99", "L avg/p99", "drops"
    );
    for scheme in [
        Scheme::XPass(XPassConfig::default()),
        Scheme::Dctcp,
        Scheme::Rcp,
    ] {
        let r = RealisticRun {
            workload: Workload::WebServer,
            load: 0.6,
            n_flows: 2000,
            link_bps: 10_000_000_000,
            scheme,
            seed: 11,
        }
        .run();
        let mut fct = r.fct.clone();
        let cell = |b: SizeBucket, fct: &mut xpass::experiments::FctBuckets| {
            format!("{}/{}", fmt_secs(fct.avg(b)), fmt_secs(fct.p99(b)))
        };
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>10}",
            scheme.name(),
            cell(SizeBucket::S, &mut fct),
            cell(SizeBucket::M, &mut fct),
            cell(SizeBucket::L, &mut fct),
            r.data_drops,
        );
        assert_eq!(r.unfinished, 0, "{}: unfinished flows", scheme.name());
    }
}
