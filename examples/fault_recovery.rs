//! Fault injection demo: ExpressPass flows ride through a mid-run credit
//! storm and a ToR–agg link failure, printing the aggregate goodput trace
//! around the fault and the recovery verdicts.
//!
//! Run with: `cargo run --release --example fault_recovery`

use xpass::experiments::fault_recovery::{run, Config};

fn main() {
    let cfg = Config::default();
    println!(
        "Injecting: 80% credit loss on the bottleneck during [{}, {}), \
         then a frozen ToR-agg cable over the same window.\n",
        cfg.fault_at, cfg.fault_clear
    );
    let result = run(&cfg);
    println!("{result}");
}
