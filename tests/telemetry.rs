//! Telemetry integration tests: the zero-cost guarantee (tracing and
//! invariant monitoring leave runs byte-identical), trace-event coverage,
//! JSONL output, engine profiling consistency, invariant monitors on
//! healthy and deliberately broken configurations, and the `xpass-repro`
//! CLI surface (`--json`, `--seed`, bad-flag exits).

use std::process::Command;
use xpass::baselines::cubic_factory;
use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::health::InvariantSpec;
use xpass::net::ids::HostId;
use xpass::net::network::{Counters, FlowRecord, Network};
use xpass::net::topology::Topology;
use xpass::sim::json;
use xpass::sim::time::{Dur, SimTime};
use xpass::sim::trace::{JsonlSink, RingSink, TraceSink};

const G10: u64 = 10_000_000_000;

fn xpass_dumbbell(n_pairs: usize, seed: u64) -> Network {
    let topo = Topology::dumbbell(n_pairs, G10, Dur::us(2));
    let cfg = NetConfig::expresspass().with_seed(seed);
    Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()))
}

/// Run a busy 4-pair dumbbell to completion with optional telemetry.
fn observed_run(
    seed: u64,
    trace: bool,
    monitor: bool,
) -> (
    Counters,
    Vec<FlowRecord>,
    Option<Box<dyn TraceSink>>,
    Network,
) {
    let mut net = xpass_dumbbell(4, seed);
    if trace {
        net.install_trace_sink(Box::new(RingSink::new(1 << 20)));
    }
    if monitor {
        net.install_invariants(InvariantSpec {
            data_queue_bound_bytes: Some(net.cfg().switch_queue_bytes),
            zero_data_loss: true,
        });
    }
    for i in 0..4u32 {
        net.add_flow(HostId(i), HostId(4 + i), 2_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    let counters = net.counters().clone();
    let records = net.flow_records();
    let sink = net.take_trace_sink();
    (counters, records, sink, net)
}

#[test]
fn telemetry_does_not_perturb_the_run() {
    let (c_plain, r_plain, _, _) = observed_run(41, false, false);
    let (c_traced, r_traced, sink, _) = observed_run(41, true, false);
    let (c_full, r_full, _, _) = observed_run(41, true, true);
    assert_eq!(c_plain, c_traced, "tracing changed the counters");
    assert_eq!(r_plain, r_traced, "tracing changed the flow records");
    assert_eq!(c_plain, c_full, "monitoring changed the counters");
    assert_eq!(r_plain, r_full, "monitoring changed the flow records");
    // The traced run genuinely observed something.
    let mut sink = sink.expect("sink must be returned");
    let ring = sink.as_any().downcast_mut::<RingSink>().unwrap();
    assert!(ring.total_recorded() > 1000, "{}", ring.total_recorded());
}

#[test]
fn ring_sink_sees_the_expected_event_kinds() {
    let (counters, records, sink, _) = observed_run(43, true, false);
    let mut sink = sink.unwrap();
    let ring = sink.as_any().downcast_mut::<RingSink>().unwrap();
    let events = ring.drain();
    // Timestamps never go backwards (events are emitted in processing order).
    for w in events.windows(2) {
        assert!(w[0].at() <= w[1].at(), "{:?} then {:?}", w[0], w[1]);
    }
    let count = |name: &str| events.iter().filter(|e| e.name() == name).count() as u64;
    assert_eq!(count("flow_started"), 4);
    assert_eq!(count("flow_completed"), 4);
    assert_eq!(count("credit_sent"), counters.credits_sent);
    assert_eq!(count("credit_wasted"), counters.credits_wasted);
    assert_eq!(count("ecn_mark"), counters.ecn_marked);
    assert!(count("pkt_enqueue") > 0);
    assert!(count("pkt_dequeue") > 0);
    assert!(
        count("feedback_update") > 0,
        "no Algorithm-1 updates traced"
    );
    // Cross-check one flow-completion record against the trace.
    let done: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            xpass::sim::trace::TraceEvent::FlowCompleted { flow, fct_ps, .. } => {
                Some((*flow, *fct_ps))
            }
            _ => None,
        })
        .collect();
    for r in &records {
        let fct = r.fct.expect("all flows complete").as_ps();
        assert!(done.contains(&(r.id.0, fct)), "flow {} not traced", r.id.0);
    }
}

#[test]
fn jsonl_sink_writes_parseable_lines() {
    let path = std::env::temp_dir().join(format!("xpass-telemetry-{}.jsonl", std::process::id()));
    {
        let mut net = xpass_dumbbell(1, 47);
        net.install_trace_sink(Box::new(JsonlSink::create(&path).unwrap()));
        net.add_flow(HostId(0), HostId(1), 100_000, SimTime::ZERO);
        net.run_until_done(SimTime::ZERO + Dur::secs(1));
        let mut sink = net.take_trace_sink().unwrap();
        let jsonl = sink.as_any().downcast_mut::<JsonlSink>().unwrap();
        assert_eq!(jsonl.write_errors(), 0);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 100, "only {} trace lines", lines.len());
    for line in &lines {
        let j = json::parse(line).expect("every trace line parses");
        assert!(j.get("ev").unwrap().as_str().is_some());
        assert!(j.get("t_ps").unwrap().as_u64().is_some());
    }
}

#[test]
fn engine_report_is_consistent() {
    let (_, _, _, net) = observed_run(53, false, false);
    let rep = net.engine_report();
    let by_kind: u64 = rep.events_by_kind.iter().map(|&(_, n)| n).sum();
    assert_eq!(by_kind, rep.events_processed, "per-kind counts must sum");
    assert!(rep.events_processed > 1000);
    assert!(rep.peak_queue_len > 0);
    // Regression fence: a 4-pair dumbbell keeps ~38 live events at peak
    // (a handful per flow plus per-port timers). A leak of cancelled
    // timers or a scheduler that stops consuming would blow well past 64.
    assert!(
        rep.peak_queue_len <= 64,
        "peak queue depth regressed: {} live events (expected <= 64)",
        rep.peak_queue_len
    );
    assert!(rep.sim_secs > 0.0);
    assert!(rep.wall_secs > 0.0);
    assert!(rep.events_per_sec() > 0.0);
    let j = json::parse(&rep.to_json().to_string()).unwrap();
    assert_eq!(
        j.get("events_processed").unwrap().as_u64(),
        Some(rep.events_processed)
    );
    assert_eq!(
        j.get("scheduler").unwrap().as_str(),
        Some(rep.scheduler),
        "report must name the scheduler that ran the queue"
    );
}

#[test]
fn stock_run_reports_healthy() {
    let (counters, _, _, net) = observed_run(59, false, true);
    let h = net.health_report();
    assert!(h.monitored);
    assert!(h.ok(), "{h:?}");
    assert_eq!(h.queue_violations, 0);
    assert_eq!(h.loss_violations, 0);
    assert!(h.peak_switch_queue_bytes > 0, "monitor saw no traffic");
    assert_eq!(counters.data_dropped, 0, "ExpressPass must not lose data");
}

#[test]
fn unmonitored_network_reports_unmonitored() {
    let (_, _, _, net) = observed_run(61, false, false);
    let h = net.health_report();
    assert!(!h.monitored);
    assert!(h.ok());
    assert_eq!(h.peak_switch_queue_bytes, 0);
}

#[test]
fn undersized_buffer_trips_the_invariant_monitors() {
    // A TCP sender into a 3-MTU switch buffer: guaranteed overflow drops
    // and queue levels above an (artificially tight) 1000-byte bound.
    let topo = Topology::dumbbell(2, G10, Dur::us(2));
    let mut cfg = NetConfig::default().with_seed(67);
    cfg.switch_queue_bytes = 3 * 1538;
    let mut net = Network::new(topo, cfg, cubic_factory());
    net.install_trace_sink(Box::new(RingSink::new(1 << 16)));
    net.install_invariants(InvariantSpec {
        data_queue_bound_bytes: Some(1000),
        zero_data_loss: true,
    });
    for i in 0..2u32 {
        net.add_flow(HostId(i), HostId(2 + i), 1_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    let h = net.health_report();
    assert!(!h.ok());
    assert!(h.queue_violations > 0, "no queue-bound violations seen");
    assert!(h.loss_violations > 0, "no loss violations seen");
    assert!(h.first_queue_violation.is_some());
    assert!(h.first_loss.is_some());
    assert_eq!(h.loss_violations, net.counters().data_dropped);
    // Violations also surface as trace events.
    let mut sink = net.take_trace_sink().unwrap();
    let ring = sink.as_any().downcast_mut::<RingSink>().unwrap();
    let violations = ring
        .events()
        .filter(|e| e.name() == "invariant_violation")
        .count() as u64;
    assert_eq!(violations, h.queue_violations + h.loss_violations);
    // The health report serializes and flags the failure.
    let j = json::parse(&h.to_json().to_string()).unwrap();
    assert_eq!(j.get("ok").unwrap().as_bool(), Some(false));
}

// --- xpass-repro CLI surface ---------------------------------------------

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn repro_json_record_round_trips() {
    let dir = std::env::temp_dir().join(format!("xpass-repro-json-{}", std::process::id()));
    let out = repro(&["fig12", "--seed", "5", "--json", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(dir.join("fig12.json")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let j = json::parse(&text).expect("record parses");
    assert_eq!(j.get("schema").unwrap().as_str(), Some("xpass-repro/v1"));
    assert_eq!(j.get("name").unwrap().as_str(), Some("fig12"));
    assert_eq!(j.get("paper_scale").unwrap().as_bool(), Some(false));
    assert_eq!(j.get("seed").unwrap().as_u64(), Some(5));
    // Every experiment now emits a structured payload, never a text blob;
    // fig12's carries its utilization trace and convergence summary.
    let payload = j.get("payload").unwrap();
    assert!(payload.get("text").is_none(), "payload fell back to text");
    assert!(payload.get("trace").is_some());
    assert!(payload.get("converged_at").is_some());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Fig 12"));
}

#[test]
fn repro_rejects_bad_usage() {
    let out = repro(&["--definitely-not-a-flag"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = repro(&["no-such-experiment"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));

    let out = repro(&["fig12", "--seed", "not-a-number"]);
    assert!(!out.status.success());

    let out = repro(&["fig12", "--json"]);
    assert!(!out.status.success());
}

#[test]
fn repro_seed_changes_stochastic_output() {
    let a = repro(&["fig06", "--seed", "1"]);
    let b = repro(&["fig06", "--seed", "1"]);
    let c = repro(&["fig06", "--seed", "2"]);
    assert!(a.status.success() && b.status.success() && c.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must reproduce exactly");
    assert_ne!(a.stdout, c.stdout, "seed override had no effect");
}
