//! Live-metrics-plane integration tests: the zero-cost fence (metrics off
//! and on leave simulation results untouched), sampler determinism across
//! schedulers and job counts, `xpass-metrics/v1` decode, Prometheus
//! exposition parse-back, live HTTP endpoints, snapshot/resume series
//! identity, the `--progress` heartbeat, and the health-violation and
//! feedback-update counters.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use xpass::baselines::cubic_factory;
use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::health::InvariantSpec;
use xpass::net::ids::HostId;
use xpass::net::network::Network;
use xpass::net::topology::Topology;
use xpass::sim::json;
use xpass::sim::metrics::{self, decode_jsonl, parse_exposition, MetricsSpec, Plane};
use xpass::sim::time::{Dur, SimTime};

const G10: u64 = 10_000_000_000;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("xpass-metrics-{}-{name}", std::process::id()))
}

// --- in-process: sampling, exposition, counters ---------------------------

/// Run a 4-pair ExpressPass dumbbell with the metrics runtime installed on
/// this thread, returning the plane and the finished network.
fn metered_run(seed: u64, interval: Dur) -> (Plane, Network) {
    let plane = Plane::new();
    metrics::install(
        MetricsSpec {
            interval,
            ..MetricsSpec::default()
        },
        Some(plane.clone()),
    );
    let topo = Topology::dumbbell(4, G10, Dur::us(2));
    let cfg = NetConfig::expresspass().with_seed(seed);
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    for i in 0..4u32 {
        net.add_flow(HostId(i), HostId(4 + i), 1_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    metrics::clear();
    (plane, net)
}

#[test]
fn metrics_do_not_perturb_the_run() {
    let plain = {
        let topo = Topology::dumbbell(4, G10, Dur::us(2));
        let cfg = NetConfig::expresspass().with_seed(71);
        let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
        for i in 0..4u32 {
            net.add_flow(HostId(i), HostId(4 + i), 1_000_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        (net.counters().clone(), net.flow_records())
    };
    let (_, net) = metered_run(71, Dur::us(50));
    assert_eq!(plain.0, *net.counters(), "metrics changed the counters");
    assert_eq!(plain.1, net.flow_records(), "metrics changed flow records");
}

#[test]
fn exposition_parses_back_and_matches_the_run() {
    let (plane, net) = metered_run(73, Dur::us(50));
    let text = plane.render_metrics();
    let samples = parse_exposition(&text).expect("exposition parses");
    assert!(!samples.is_empty());
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .value
    };
    // The final scrape matches the end-of-run state.
    let c = net.counters();
    assert_eq!(get("xpass_credits_sent_total") as u64, c.credits_sent);
    assert_eq!(get("xpass_credits_wasted_total") as u64, c.credits_wasted);
    assert_eq!(get("xpass_data_dropped_total") as u64, c.data_dropped);
    assert_eq!(get("xpass_flows_completed") as u64, 4);
    assert_eq!(get("xpass_flows_active") as u64, 0);
    assert_eq!(get("xpass_fct_seconds_count") as u64, 4);
    assert_eq!(get("xpass_health_violations_total") as u64, 0);
    assert!(
        get("xpass_feedback_updates_total") > 0.0,
        "ExpressPass must count Algorithm-1 feedback updates"
    );
    assert_eq!(
        get("xpass_engine_events_total") as u64,
        net.engine_report().events_processed
    );
    // Every sample carries the job/net identity labels.
    for s in &samples {
        assert_eq!(
            s.labels
                .iter()
                .find(|(k, _)| k == "job")
                .map(|(_, v)| v.as_str()),
            Some("main")
        );
        assert!(s.labels.iter().any(|(k, _)| k == "net"), "{}", s.name);
    }
}

#[test]
fn series_rings_decode_and_are_well_formed() {
    let interval = Dur::us(50);
    let (plane, net) = metered_run(79, interval);
    let jsonl = plane.jsonl_for_jobs(&["main".to_string()]);
    let dumps = decode_jsonl(&jsonl).expect("series decode");
    assert_eq!(dumps.len(), 1);
    let d = &dumps[0];
    assert_eq!(d.job, "main");
    assert_eq!(d.interval_ps, interval.as_ps());
    assert!(d.keys.iter().any(|k| k == "xpass_sim_seconds"));
    assert!(d
        .keys
        .iter()
        .any(|k| k.starts_with("xpass_link_utilization")));
    assert!(d.ticks.len() > 10, "only {} ticks sampled", d.ticks.len());
    for w in d.ticks.windows(2) {
        assert_eq!(
            w[1].0 - w[0].0,
            interval.as_ps(),
            "ticks must be interval-spaced"
        );
    }
    for (_, row) in &d.ticks {
        assert_eq!(row.len(), d.keys.len(), "row width must match the keys");
        assert!(row.iter().all(|v| v.is_finite()));
    }
    // Utilization is a ratio; flows gauges are consistent with the run.
    let col = |name: &str| d.keys.iter().position(|k| k == name).unwrap();
    let last = &d.ticks.last().unwrap().1;
    assert_eq!(last[col("xpass_flows_total")], 4.0);
    assert!((0.0..=4.0).contains(&last[col("xpass_flows_active")]));
    for (_, row) in &d.ticks {
        for (i, k) in d.keys.iter().enumerate() {
            if k.starts_with("xpass_link_utilization") {
                assert!(
                    (0.0..=1.05).contains(&row[i]),
                    "{k} out of range: {}",
                    row[i]
                );
            }
        }
    }
    let _ = net;
}

#[test]
fn health_violations_surface_on_the_counter() {
    // The telemetry suite's undersized-buffer CUBIC setup: guaranteed
    // queue-bound and loss violations; the live counter must see each one.
    let plane = Plane::new();
    metrics::install(MetricsSpec::default(), Some(plane.clone()));
    let topo = Topology::dumbbell(2, G10, Dur::us(2));
    let mut cfg = NetConfig::default().with_seed(67);
    cfg.switch_queue_bytes = 3 * 1538;
    let mut net = Network::new(topo, cfg, cubic_factory());
    net.install_invariants(InvariantSpec {
        data_queue_bound_bytes: Some(1000),
        zero_data_loss: true,
    });
    for i in 0..2u32 {
        net.add_flow(HostId(i), HostId(2 + i), 1_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    metrics::clear();
    let h = net.health_report();
    assert!(h.queue_violations > 0 && h.loss_violations > 0);
    let samples = parse_exposition(&plane.render_metrics()).unwrap();
    let counted = samples
        .iter()
        .find(|s| s.name == "xpass_health_violations_total")
        .expect("violation counter exposed")
        .value as u64;
    assert_eq!(counted, h.queue_violations + h.loss_violations);
}

// --- CLI: fence, determinism, resume, heartbeat, HTTP ---------------------

#[test]
fn metrics_flags_off_keep_stdout_byte_identical() {
    let file = tmp("fence.jsonl");
    let plain = repro(&["fig10", "--seed", "9"]);
    let metered = repro(&["fig10", "--seed", "9", "--metrics", file.to_str().unwrap()]);
    assert!(plain.status.success() && metered.status.success());
    assert_eq!(
        plain.stdout, metered.stdout,
        "--metrics must not change experiment output"
    );
    assert!(
        !String::from_utf8_lossy(&plain.stderr).contains("metrics"),
        "a run without metrics flags must not mention the subsystem"
    );
    assert!(file.is_file(), "--metrics file missing");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn series_identical_across_schedulers_and_jobs() {
    let mut blobs = Vec::new();
    for (tag, extra) in [
        (
            "calendar-j1",
            vec!["--scheduler", "calendar", "--jobs", "1"],
        ),
        ("heap-j1", vec!["--scheduler", "heap", "--jobs", "1"]),
        (
            "calendar-j4",
            vec!["--scheduler", "calendar", "--jobs", "4"],
        ),
        ("heap-j4", vec!["--scheduler", "heap", "--jobs", "4"]),
    ] {
        let file = tmp(&format!("det-{tag}.jsonl"));
        let mut args = vec![
            "fig10",
            "fig01",
            "--seed",
            "9",
            "--metrics",
            file.to_str().unwrap(),
        ];
        args.extend(extra);
        let out = repro(&args);
        assert!(out.status.success(), "{tag} failed");
        blobs.push((tag, std::fs::read(&file).expect("series file")));
        let _ = std::fs::remove_file(&file);
    }
    let (_, first) = &blobs[0];
    for (tag, blob) in &blobs[1..] {
        assert_eq!(blob, first, "series differ under {tag}");
    }
    decode_jsonl(&String::from_utf8(first.clone()).unwrap()).expect("series decode");
}

#[test]
fn snapshot_resume_reproduces_the_identical_series() {
    let dir = tmp("resume-ck");
    let base = tmp("resume-base.jsonl");
    let resumed = tmp("resume-res.jsonl");
    let out = repro(&[
        "fig10",
        "--metrics",
        base.to_str().unwrap(),
        "--checkpoint-every",
        "1",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // Resume from the oldest surviving snapshot of the first network: the
    // re-run replays the prefix and must emit the very same series.
    let mut snaps: Vec<_> = std::fs::read_dir(dir.join("scope-0").join("net0"))
        .expect("snapshots written")
        .map(|e| e.unwrap().path())
        .collect();
    snaps.sort();
    let out2 = repro(&[
        "--resume",
        snaps[0].to_str().unwrap(),
        "--metrics",
        resumed.to_str().unwrap(),
    ]);
    assert!(out2.status.success(), "{out2:?}");
    assert_eq!(out.stdout, out2.stdout, "resume changed stdout");
    assert_eq!(
        std::fs::read(&base).unwrap(),
        std::fs::read(&resumed).unwrap(),
        "resume changed the metrics series"
    );
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_heartbeat_prints_on_stderr() {
    let out = repro(&["fig10", "--seed", "9", "--progress", "0.0005"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("xpass-repro: [fig10#net0] t="),
        "no heartbeat lines:\n{err}"
    );
    let line = err
        .lines()
        .find(|l| l.contains("[fig10#net0]"))
        .unwrap()
        .to_string();
    assert!(line.contains("events="), "{line}");
    assert!(line.contains("flows"), "{line}");
    let silent = repro(&["fig10", "--seed", "9"]);
    assert!(
        !String::from_utf8_lossy(&silent.stderr).contains("[fig10#net0]"),
        "heartbeat must be off by default"
    );
}

/// Minimal HTTP/1.0-style GET over a std TcpStream (the server answers
/// every request with `Connection: close`, so read-to-end is the framing).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let status: u16 = buf
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_exposes_live_endpoints_and_final_scrape_matches() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
        .args(["serve", "fig10", "--seed", "9", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let mut addr = None;
    // Wait for the bind line, then for run completion (the process parks).
    for line in &mut lines {
        let line = line.expect("stderr line");
        if let Some(rest) = line.strip_prefix("xpass-repro: serving live metrics on http://") {
            addr = Some(rest.trim_end_matches("/metrics").to_string());
        }
        if line.contains("runs complete; still serving") {
            break;
        }
    }
    let addr = addr.expect("server never reported its address");

    let (code, text) = http_get(&addr, "/metrics");
    assert_eq!(code, 200);
    let samples = parse_exposition(&text).expect("live exposition parses");
    // fig10 simulates many networks; pin assertions to net 0.
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "net" && v == "0"))
            .unwrap_or_else(|| panic!("{name} missing for net 0"))
            .value
    };
    assert!(get("xpass_engine_events_total") > 0.0);
    assert!(
        samples.iter().any(|s| s.name == "xpass_span_wall_seconds"),
        "span profiler samples missing from the exposition"
    );
    assert!(samples
        .iter()
        .all(|s| s.labels.iter().any(|(k, v)| k == "job" && v == "fig10")));

    // The final scrape agrees with the end-of-run reports.
    let (code, body) = http_get(&addr, "/progress");
    assert_eq!(code, 200);
    let j = json::parse(&body).expect("/progress is JSON");
    let p = j.get("jobs").unwrap().get("fig10#net0").expect("progress");
    for (gauge, field) in [
        ("xpass_flows_total", "flows_total"),
        ("xpass_flows_active", "flows_active"),
        ("xpass_flows_completed", "flows_completed"),
        ("xpass_flows_aborted", "flows_aborted"),
    ] {
        assert_eq!(
            get(gauge) as u64,
            p.get(field).unwrap().as_u64().unwrap(),
            "{gauge} disagrees with /progress {field}"
        );
    }
    let sim_secs = p.get("sim_secs").unwrap().as_f64().unwrap();
    assert!((get("xpass_sim_seconds") - sim_secs).abs() < 1e-12);

    let (code, body) = http_get(&addr, "/engine");
    assert_eq!(code, 200);
    let j = json::parse(&body).expect("/engine is JSON");
    let eng = j.get("jobs").unwrap().get("fig10#net0").expect("engine");
    assert_eq!(
        get("xpass_engine_events_total") as u64,
        eng.get("events_processed").unwrap().as_u64().unwrap(),
        "event counter disagrees with /engine"
    );
    assert!(eng.get("spans").is_some(), "published engine reports spans");

    let (code, body) = http_get(&addr, "/health");
    assert_eq!(code, 200);
    json::parse(&body).expect("/health is JSON");

    let (code, _) = http_get(&addr, "/definitely-not-here");
    assert_eq!(code, 404);

    child.kill().expect("kill serve");
    let _ = child.wait();
}
