//! Property-based tests (proptest) over the core data structures and
//! protocol invariants.

use proptest::prelude::*;
use xpass::expresspass::feedback::{max_credit_rate, CreditFeedback};
use xpass::expresspass::netcalc::{buffer_bounds, HierTopo, NetCalcParams};
use xpass::expresspass::XPassConfig;
use xpass::net::ids::{FlowId, HostId};
use xpass::net::packet::{data_wire_size, Packet, PktKind, MAX_FRAME, MIN_FRAME};
use xpass::net::queue::{CreditDropPolicy, CreditQueue, DataQueue};
use xpass::net::routing::{ecmp_index, symmetric_flow_hash};
use xpass::net::topology::Topology;
use xpass::sim::bucket::TokenBucket;
use xpass::sim::event::EventQueue;
use xpass::sim::rng::Rng;
use xpass::sim::stats::{jain_fairness, Percentiles};
use xpass::sim::time::{tx_time, Dur, SimTime};

proptest! {
    // ---- sim core ---------------------------------------------------------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn tx_time_monotone_in_bytes(a in 1u64..100_000, b in 1u64..100_000,
                                 bps in 1_000_000u64..200_000_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(tx_time(lo, bps) <= tx_time(hi, bps));
    }

    #[test]
    fn token_bucket_never_exceeds_cap(rate in 1_000_000u64..10_000_000_000,
                                      cap in 84u64..10_000,
                                      steps in prop::collection::vec((0u64..1_000_000, 1u64..200), 1..50)) {
        let mut tb = TokenBucket::new(rate, cap);
        let mut now = SimTime::ZERO;
        for (dt, bytes) in steps {
            now = now + Dur::ps(dt);
            prop_assert!(tb.level_bytes() <= cap);
            if tb.conforms(now, bytes) {
                tb.consume(now, bytes);
            }
            prop_assert!(tb.level_bytes() <= cap);
        }
    }

    #[test]
    fn token_bucket_conforming_time_is_earliest(rate in 1_000_000u64..10_000_000_000,
                                                bytes in 1u64..2_000) {
        let mut tb = TokenBucket::new(rate, 2 * bytes);
        tb.drain();
        let t = tb.time_until_conforming(SimTime::ZERO, bytes);
        prop_assert!(tb.conforms(t, bytes));
        if t.as_ps() > 1 {
            let mut tb2 = TokenBucket::new(rate, 2 * bytes);
            tb2.drain();
            prop_assert!(!tb2.conforms(SimTime(t.as_ps() - 2), bytes));
        }
    }

    #[test]
    fn percentiles_are_order_statistics(mut xs in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut p = Percentiles::new();
        for &x in &xs {
            p.add(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(p.min(), xs[0]);
        prop_assert_eq!(p.max(), *xs.last().unwrap());
        let med = p.median();
        prop_assert!(xs.contains(&med));
        prop_assert!(p.quantile(0.25) <= p.quantile(0.75));
    }

    #[test]
    fn jain_index_in_unit_interval(xs in prop::collection::vec(0.0f64..1e9, 1..100)) {
        let j = jain_fairness(&xs);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&j));
    }

    #[test]
    fn rng_jitter_stays_in_band(seed in any::<u64>(), base_us in 1u64..1000, spread_us in 0u64..100) {
        let mut rng = Rng::new(seed);
        let base = Dur::us(base_us);
        let spread = Dur::us(spread_us);
        // jitter = base + uniform[0, spread] - spread/2, clamped at zero.
        let half = spread.as_ps() / 2;
        let lo = Dur::ps(base.as_ps().saturating_sub(half));
        let hi = Dur::ps(base.as_ps() + (spread.as_ps() - half));
        for _ in 0..50 {
            let j = rng.jitter(base, spread);
            prop_assert!(j >= lo, "{j} < {lo}");
            prop_assert!(j <= hi, "{j} > {hi}");
        }
    }

    // ---- net --------------------------------------------------------------

    #[test]
    fn data_queue_conserves_bytes(sizes in prop::collection::vec(84u32..1538, 1..100),
                                  cap in 2_000u64..100_000) {
        let mut q = DataQueue::new(cap);
        let mut accepted_bytes = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let mut p = Packet::new(FlowId(0), HostId(0), HostId(1), PktKind::Data, s);
            p.seq = i as u64;
            if q.enqueue(SimTime(i as u64), p) {
                accepted_bytes += s as u64;
            }
            prop_assert!(q.len_bytes() <= cap);
        }
        let mut drained = 0u64;
        while let Some(p) = q.dequeue(SimTime(1_000_000)) {
            drained += p.size as u64;
        }
        prop_assert_eq!(drained, accepted_bytes);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn credit_queue_never_exceeds_capacity(policy_pick in 0u8..3,
                                           flows in prop::collection::vec(0u32..4, 1..200),
                                           cap in 1usize..16) {
        let mut q = CreditQueue::new(10_000_000_000, cap);
        q.drop_policy = match policy_pick {
            0 => CreditDropPolicy::Tail,
            1 => CreditDropPolicy::UniformRandom,
            _ => CreditDropPolicy::LongestQueueDrop,
        };
        let mut rng = Rng::new(42);
        for (i, &f) in flows.iter().enumerate() {
            let mut p = Packet::new(FlowId(f), HostId(f), HostId(9), PktKind::Credit, 84);
            p.seq = i as u64;
            q.enqueue(SimTime(i as u64 * 1000), p, &mut rng);
            prop_assert!(q.len() <= cap);
        }
        // Conservation: enqueued - dropped = still queued + (none dequeued).
        prop_assert_eq!(q.stats.enqueued - (q.stats.enqueued - q.len() as u64), q.len() as u64);
        prop_assert_eq!(q.stats.dropped + q.stats.enqueued >= flows.len() as u64, true);
    }

    #[test]
    fn credit_queue_fifo_order_survives_drops(n in 10usize..150) {
        // Per-flow sequence numbers of dequeued credits must be increasing
        // regardless of drop policy (the receiver's loss accounting relies
        // on it).
        for policy in [CreditDropPolicy::Tail, CreditDropPolicy::UniformRandom, CreditDropPolicy::LongestQueueDrop] {
            let mut q = CreditQueue::new(10_000_000_000, 8);
            q.drop_policy = policy;
            let mut rng = Rng::new(9);
            let mut now = SimTime::ZERO;
            let mut last_seq = [0u64; 2];
            for i in 0..n {
                let f = (i % 2) as u32;
                let mut p = Packet::new(FlowId(f), HostId(f), HostId(9), PktKind::Credit, 84);
                p.seq = i as u64;
                q.enqueue(now, p, &mut rng);
                now = now + Dur::ns(400);
                if q.head_conforms(now) {
                    let out = q.dequeue(now).unwrap();
                    let fl = out.src.0 as usize;
                    prop_assert!(out.seq >= last_seq[fl], "{policy:?}: reordered");
                    last_seq[fl] = out.seq;
                }
            }
        }
    }

    #[test]
    fn symmetric_hash_property(a in 0u32..100_000, b in 0u32..100_000, f in any::<u32>()) {
        prop_assert_eq!(
            symmetric_flow_hash(HostId(a), HostId(b), FlowId(f)),
            symmetric_flow_hash(HostId(b), HostId(a), FlowId(f))
        );
        if a != b {
            let n = 1 + (f as usize % 8);
            prop_assert_eq!(
                ecmp_index(HostId(a), HostId(b), FlowId(f), n),
                ecmp_index(HostId(b), HostId(a), FlowId(f), n)
            );
        }
    }

    #[test]
    fn wire_sizes_bounded(app in 0u32..1461) {
        let w = data_wire_size(app);
        prop_assert!(w >= MIN_FRAME);
        prop_assert!(w <= MAX_FRAME);
    }

    #[test]
    fn fat_tree_routes_complete(k in prop::sample::select(vec![2usize, 4, 6, 8])) {
        let topo = Topology::fat_tree(k, 10_000_000_000, 10_000_000_000, Dur::us(1));
        // Every switch can route to every host with ≥1 next hop.
        for s in 0..topo.n_switches {
            for h in 0..topo.n_hosts {
                prop_assert!(!topo.routes[s][h].is_empty(), "sw{s} cannot reach h{h}");
            }
        }
    }

    // ---- expresspass feedback ---------------------------------------------

    #[test]
    fn feedback_rate_always_within_bounds(losses in prop::collection::vec(0.0f64..1.0, 1..300),
                                          alpha_inv in 1u32..33) {
        let cfg = XPassConfig::default().with_alpha_winit(1.0 / alpha_inv as f64, 0.5);
        let max = max_credit_rate(10_000_000_000);
        let mut fb = CreditFeedback::new(max, cfg);
        let floor = max * cfg.min_rate_frac;
        for loss in losses {
            let r = fb.on_update(loss);
            prop_assert!(r >= floor - 1e-9, "rate {r} under floor {floor}");
            prop_assert!(r <= fb.ceiling() + 1e-9, "rate {r} over ceiling");
            prop_assert!(fb.w() >= cfg.w_min - 1e-12);
            prop_assert!(fb.w() <= cfg.w_max + 1e-12);
        }
    }

    #[test]
    fn feedback_clean_periods_monotone_toward_ceiling(n in 1usize..100) {
        let mut fb = CreditFeedback::new(1e6, XPassConfig::default());
        let mut last = fb.rate();
        for _ in 0..n {
            let r = fb.on_update(0.0);
            prop_assert!(r >= last - 1e-9, "clean update decreased rate");
            last = r;
        }
    }

    #[test]
    fn netcalc_bounds_monotone_in_credit_queue(cq in 1usize..33) {
        let mut p1 = NetCalcParams::testbed();
        p1.credit_queue = cq;
        let mut p2 = p1;
        p2.credit_queue = cq + 1;
        let topo = HierTopo::fat32_10_40();
        let b1 = buffer_bounds(&topo, &p1);
        let b2 = buffer_bounds(&topo, &p2);
        prop_assert!(b2.tor_down.buffer_bytes >= b1.tor_down.buffer_bytes);
        prop_assert!(b2.core.buffer_bytes >= b1.core.buffer_bytes);
    }
}

/// Protocol-level invariants over randomized scenarios (fewer cases — each
/// case is a full packet-level simulation).
mod protocol_props {
    use super::*;
    use proptest::prelude::*;
    use xpass::expresspass::xpass_factory;
    use xpass::net::config::NetConfig;
    use xpass::net::network::Network;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// ExpressPass never drops data and always completes, for random
        /// topology shapes, flow matrices, sizes, and seeds.
        #[test]
        fn xpass_zero_loss_everywhere(
            seed in 1u64..10_000,
            shape in 0u8..3,
            n_flows in 1usize..10,
            size_kb in 1u64..400,
        ) {
            let topo = match shape {
                0 => Topology::star(8, 10_000_000_000, Dur::us(2)),
                1 => Topology::dumbbell(8, 10_000_000_000, Dur::us(4)),
                _ => Topology::fat_tree(4, 10_000_000_000, 10_000_000_000, Dur::us(2)),
            };
            let n_hosts = topo.n_hosts as u32;
            let cfg = NetConfig::expresspass().with_seed(seed);
            let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
            let mut rng = xpass::sim::rng::Rng::new(seed ^ 0xF00D);
            for _ in 0..n_flows {
                let src = HostId(rng.below(n_hosts as u64) as u32);
                let dst = loop {
                    let d = HostId(rng.below(n_hosts as u64) as u32);
                    if d != src {
                        break d;
                    }
                };
                let start = SimTime::ZERO + Dur::us(rng.below(500));
                net.add_flow(src, dst, size_kb * 1000, start);
            }
            net.run_until_done(SimTime::ZERO + Dur::secs(5));
            prop_assert_eq!(net.completed_count(), n_flows, "incomplete flows");
            prop_assert_eq!(net.total_data_drops(), 0, "data loss");
        }

        /// The window transport completes under arbitrary loss pressure
        /// (random tiny buffers), for DCTCP.
        #[test]
        fn dctcp_completes_despite_random_buffers(
            seed in 1u64..10_000,
            queue_mtus in 4u64..60,
            n_flows in 1usize..8,
        ) {
            let topo = Topology::star(9, 10_000_000_000, Dur::us(2));
            let mut cfg = NetConfig::dctcp(10_000_000_000).with_seed(seed);
            cfg.switch_queue_bytes = queue_mtus * 1538;
            let mut net = Network::new(
                topo,
                cfg,
                xpass::baselines::dctcp_factory(10_000_000_000),
            );
            for i in 0..n_flows {
                net.add_flow(HostId(i as u32), HostId(8), 150_000, SimTime::ZERO);
            }
            net.run_until_done(SimTime::ZERO + Dur::secs(5));
            prop_assert_eq!(net.completed_count(), n_flows);
        }

        /// Determinism as a property: identical seeds give identical FCTs
        /// regardless of the scenario.
        #[test]
        fn any_scenario_is_deterministic(seed in 1u64..10_000, n in 2usize..6) {
            let run = || {
                let topo = Topology::dumbbell(n, 10_000_000_000, Dur::us(4));
                let cfg = NetConfig::expresspass().with_seed(seed);
                let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
                for i in 0..n {
                    net.add_flow(
                        HostId(i as u32),
                        HostId((n + i) as u32),
                        500_000,
                        SimTime::ZERO,
                    );
                }
                net.run_until_done(SimTime::ZERO + Dur::secs(2));
                net.flow_records()
                    .iter()
                    .map(|r| r.fct.map(|d| d.as_ps()))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(), run());
        }
    }
}
