//! Cross-crate integration: every congestion-control scheme completes the
//! same scenarios on the same substrate, with scheme-appropriate behaviour.

use xpass::experiments::Scheme;
use xpass::expresspass::XPassConfig;
use xpass::net::ids::HostId;
use xpass::net::topology::Topology;
use xpass::sim::time::{Dur, SimTime};

const G10: u64 = 10_000_000_000;

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::XPass(XPassConfig::default()),
        Scheme::Dctcp,
        Scheme::Rcp,
        Scheme::Hull,
        Scheme::Dx,
        Scheme::Cubic,
        Scheme::Reno,
        Scheme::NaiveCredit,
        Scheme::Ideal,
    ]
}

#[test]
fn every_scheme_completes_a_simple_transfer() {
    for scheme in all_schemes() {
        let topo = Topology::dumbbell(1, G10, Dur::us(4));
        let mut net = scheme.build(topo, G10, 5);
        let f = net.add_flow(HostId(0), HostId(1), 3_000_000, SimTime::ZERO);
        let done = net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert!(net.flow_done(f), "{}: flow incomplete", scheme.name());
        assert_eq!(net.delivered_bytes(f), 3_000_000, "{}", scheme.name());
        // 3MB at worst-case ~2Gbps: must finish within 20ms.
        assert!(
            done < SimTime::ZERO + Dur::ms(40),
            "{}: done at {done}",
            scheme.name()
        );
    }
}

#[test]
fn every_scheme_survives_fan_in_on_a_fat_tree() {
    for scheme in all_schemes() {
        let topo = Topology::fat_tree(4, G10, G10, Dur::us(2));
        let mut net = scheme.build(topo, G10, 9);
        // 6 flows from distinct pods into one host.
        for i in 0..6u32 {
            net.add_flow(HostId(4 + i), HostId(0), 400_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert_eq!(net.completed_count(), 6, "{}", scheme.name());
    }
}

#[test]
fn credit_schemes_never_drop_data_under_incast() {
    for scheme in [Scheme::XPass(XPassConfig::default()), Scheme::NaiveCredit] {
        let topo = Topology::star(25, G10, Dur::us(2));
        let mut net = scheme.build(topo, G10, 13);
        for i in 0..24u32 {
            net.add_flow(HostId(i), HostId(24), 250_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert_eq!(net.completed_count(), 24, "{}", scheme.name());
        assert_eq!(net.total_data_drops(), 0, "{}: dropped data", scheme.name());
    }
}

#[test]
fn window_schemes_drop_but_recover_under_incast() {
    // The contrast case: loss-based schemes shed packets at the incast
    // point yet still complete via retransmission.
    let topo = Topology::star(25, G10, Dur::us(2));
    let mut net = Scheme::Dctcp.build(topo, G10, 13);
    for i in 0..24u32 {
        net.add_flow(HostId(i), HostId(24), 250_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert_eq!(net.completed_count(), 24);
    assert!(
        net.total_data_drops() > 0,
        "expected incast drops for DCTCP"
    );
}

#[test]
fn expresspass_beats_dctcp_queue_by_an_order_of_magnitude() {
    let measure = |scheme: Scheme| {
        let topo = Topology::dumbbell(8, G10, Dur::us(4));
        let mut net = scheme.build(topo, G10, 17);
        for i in 0..8u32 {
            net.add_flow(HostId(i), HostId(8 + i), 4_000_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert_eq!(net.completed_count(), 8, "{}", scheme.name());
        net.max_switch_queue_bytes()
    };
    let xp = measure(Scheme::XPass(XPassConfig::default()));
    let dc = measure(Scheme::Dctcp);
    assert!(
        dc >= xp * 8,
        "paper: ≥8x buffer advantage; got xpass {xp} vs dctcp {dc}"
    );
}

#[test]
fn path_symmetry_holds_for_credit_flows_on_fat_tree() {
    // Run ExpressPass across a fat tree and verify no switch saw credits
    // without the matching reverse data (gross asymmetry would show up as
    // wild credit drops on idle paths and stalled flows).
    let topo = Topology::fat_tree(4, G10, G10, Dur::us(2));
    let mut net = Scheme::XPass(XPassConfig::default()).build(topo, G10, 21);
    for i in 0..8u32 {
        net.add_flow(HostId(i), HostId(15 - i), 1_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert_eq!(net.completed_count(), 8);
    assert_eq!(net.total_data_drops(), 0);
    // Every cable that carried credits must have carried data in reverse.
    let topo = net.topo().clone();
    for (i, l) in topo.dlinks.iter().enumerate() {
        let port = net.port(xpass::net::ids::DLinkId(i as u32));
        if port.tx_credit_bytes > 10_000 {
            let rev = topo
                .dlink_between(l.to, l.from)
                .expect("reverse link exists");
            assert!(
                net.port(rev).tx_data_bytes > 0,
                "credits on {i} without reverse data"
            );
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let topo = Topology::dumbbell(4, G10, Dur::us(4));
        let mut net = Scheme::XPass(XPassConfig::default()).build(topo, G10, seed);
        for i in 0..4u32 {
            net.add_flow(HostId(i), HostId(4 + i), 2_000_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(1));
        let fcts: Vec<u64> = net
            .flow_records()
            .iter()
            .map(|r| r.fct.unwrap().as_ps())
            .collect();
        (
            fcts,
            net.counters().credits_sent,
            net.counters().credits_dropped,
        )
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed must reproduce bit-for-bit");
    let c = run(78);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn ideal_oracle_matches_water_filling_on_fat_tree() {
    // One flow per pod pair on a 4-ary fat tree: all can run at full rate.
    let topo = Topology::fat_tree(4, G10, G10, Dur::us(2));
    let mut net = Scheme::Ideal.build(topo, G10, 23);
    let f = net.add_flow(HostId(0), HostId(12), 10_000_000, SimTime::ZERO);
    let done = net.run_until_done(SimTime::ZERO + Dur::secs(1));
    assert!(net.flow_done(f));
    let gbps = 10_000_000.0 * 8.0 / done.as_secs_f64() / 1e9;
    assert!(gbps > 8.0, "oracle flow at {gbps:.2} Gbps");
}
