//! Determinism fence: the text tables of representative experiments are
//! byte-identical to goldens captured before the Experiment-trait refactor
//! (`tests/golden/*.txt`, default seeds and scaled-down configs). Any drift
//! in simulation results, formatting, or CLI plumbing fails here first.
//!
//! To regenerate after an *intentional* change:
//! `cargo run --bin xpass-repro -- <name> > tests/golden/<name>.txt`

use std::process::Command;

fn run(name: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
        .arg(name)
        .output()
        .expect("run xpass-repro");
    assert!(out.status.success(), "xpass-repro {name} failed: {out:?}");
    out.stdout
}

fn check(name: &str) {
    let golden = std::fs::read(format!("tests/golden/{name}.txt")).expect("read golden");
    let now = run(name);
    assert_eq!(
        now,
        golden,
        "{name} output drifted from tests/golden/{name}.txt:\n--- golden ---\n{}\n--- now ---\n{}",
        String::from_utf8_lossy(&golden),
        String::from_utf8_lossy(&now)
    );
}

#[test]
fn fig01_matches_golden() {
    check("fig01");
}

#[test]
fn fig10_matches_golden() {
    check("fig10");
}

#[test]
fn fig16_matches_golden() {
    check("fig16");
}

#[test]
fn faults_matches_golden() {
    check("faults");
}
