//! Randomized invariant tests over the core data structures and protocol.
//!
//! These were originally proptest suites; the offline build cannot resolve
//! external registries, so each property is now exercised over a fixed
//! number of cases drawn from the workspace's own seeded deterministic
//! `xpass::sim::rng::Rng`. Same invariants, bit-identical replay, zero
//! external dependencies.

use xpass::expresspass::feedback::{max_credit_rate, CreditFeedback};
use xpass::expresspass::netcalc::{buffer_bounds, HierTopo, NetCalcParams};
use xpass::expresspass::XPassConfig;
use xpass::net::ids::{FlowId, HostId, SwitchId};
use xpass::net::packet::{data_wire_size, Packet, PktKind, MAX_FRAME, MIN_FRAME};
use xpass::net::queue::{CreditDropPolicy, CreditQueue, DataQueue};
use xpass::net::routing::{ecmp_index, symmetric_flow_hash};
use xpass::net::topology::Topology;
use xpass::sim::bucket::TokenBucket;
use xpass::sim::event::EventQueue;
use xpass::sim::rng::Rng;
use xpass::sim::stats::{jain_fairness, Percentiles};
use xpass::sim::time::{tx_time, Dur, SimTime};

/// Uniform draw in `[lo, hi)` — helper mirroring proptest's integer ranges.
fn below(rng: &mut Rng, lo: u64, hi: u64) -> u64 {
    lo + rng.below(hi - lo)
}

// ---- sim core -------------------------------------------------------------

#[test]
fn event_queue_pops_sorted() {
    let mut rng = Rng::new(0x5EED_0001);
    for _ in 0..64 {
        let n = below(&mut rng, 1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len());
    }
}

#[test]
fn tx_time_monotone_in_bytes() {
    let mut rng = Rng::new(0x5EED_0002);
    for _ in 0..256 {
        let a = below(&mut rng, 1, 100_000);
        let b = below(&mut rng, 1, 100_000);
        let bps = below(&mut rng, 1_000_000, 200_000_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(tx_time(lo, bps) <= tx_time(hi, bps));
    }
}

#[test]
fn token_bucket_never_exceeds_cap() {
    let mut rng = Rng::new(0x5EED_0003);
    for _ in 0..64 {
        let rate = below(&mut rng, 1_000_000, 10_000_000_000);
        let cap = below(&mut rng, 84, 10_000);
        let mut tb = TokenBucket::new(rate, cap);
        let mut now = SimTime::ZERO;
        let steps = below(&mut rng, 1, 50);
        for _ in 0..steps {
            let dt = rng.below(1_000_000);
            let bytes = below(&mut rng, 1, 200);
            now += Dur::ps(dt);
            assert!(tb.level_bytes() <= cap);
            if tb.conforms(now, bytes) {
                tb.consume(now, bytes);
            }
            assert!(tb.level_bytes() <= cap);
        }
    }
}

#[test]
fn token_bucket_conforming_time_is_earliest() {
    let mut rng = Rng::new(0x5EED_0004);
    for _ in 0..128 {
        let rate = below(&mut rng, 1_000_000, 10_000_000_000);
        let bytes = below(&mut rng, 1, 2_000);
        let mut tb = TokenBucket::new(rate, 2 * bytes);
        tb.drain();
        let t = tb.time_until_conforming(SimTime::ZERO, bytes);
        assert!(tb.conforms(t, bytes));
        if t.as_ps() > 1 {
            let mut tb2 = TokenBucket::new(rate, 2 * bytes);
            tb2.drain();
            assert!(!tb2.conforms(SimTime(t.as_ps() - 2), bytes));
        }
    }
}

#[test]
fn percentiles_are_order_statistics() {
    let mut rng = Rng::new(0x5EED_0005);
    for _ in 0..64 {
        let n = below(&mut rng, 1, 300) as usize;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| (rng.below(2_000_000_000) as f64) - 1e9)
            .collect();
        let mut p = Percentiles::new();
        for &x in &xs {
            p.add(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(p.min(), xs[0]);
        assert_eq!(p.max(), *xs.last().unwrap());
        let med = p.median();
        assert!(xs.contains(&med));
        assert!(p.quantile(0.25) <= p.quantile(0.75));
    }
}

#[test]
fn jain_index_in_unit_interval() {
    let mut rng = Rng::new(0x5EED_0006);
    for _ in 0..128 {
        let n = below(&mut rng, 1, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.below(1_000_000_000) as f64).collect();
        let j = jain_fairness(&xs);
        assert!((0.0..=1.0 + 1e-12).contains(&j));
    }
}

#[test]
fn rng_jitter_stays_in_band() {
    let mut meta = Rng::new(0x5EED_0007);
    for _ in 0..32 {
        let seed = meta.next_u64();
        let base_us = below(&mut meta, 1, 1000);
        let spread_us = meta.below(100);
        let mut rng = Rng::new(seed);
        let base = Dur::us(base_us);
        let spread = Dur::us(spread_us);
        // jitter = base + uniform[0, spread] - spread/2, clamped at zero.
        let half = spread.as_ps() / 2;
        let lo = Dur::ps(base.as_ps().saturating_sub(half));
        let hi = Dur::ps(base.as_ps() + (spread.as_ps() - half));
        for _ in 0..50 {
            let j = rng.jitter(base, spread);
            assert!(j >= lo, "{j} < {lo}");
            assert!(j <= hi, "{j} > {hi}");
        }
    }
}

// ---- net ------------------------------------------------------------------

#[test]
fn data_queue_conserves_bytes() {
    let mut rng = Rng::new(0x5EED_0008);
    for _ in 0..64 {
        let n = below(&mut rng, 1, 100) as usize;
        let cap = below(&mut rng, 2_000, 100_000);
        let mut q = DataQueue::new(cap);
        let mut accepted_bytes = 0u64;
        for i in 0..n {
            let s = below(&mut rng, 84, 1538) as u32;
            let mut p = Packet::new(FlowId(0), HostId(0), HostId(1), PktKind::Data, s);
            p.seq = i as u64;
            if q.enqueue(SimTime(i as u64), p) {
                accepted_bytes += s as u64;
            }
            assert!(q.len_bytes() <= cap);
        }
        let mut drained = 0u64;
        while let Some(p) = q.dequeue(SimTime(1_000_000)) {
            drained += p.size as u64;
        }
        assert_eq!(drained, accepted_bytes);
        assert_eq!(q.len_bytes(), 0);
    }
}

#[test]
fn credit_queue_never_exceeds_capacity() {
    let mut meta = Rng::new(0x5EED_0009);
    for _ in 0..48 {
        let policy = match meta.below(3) {
            0 => CreditDropPolicy::Tail,
            1 => CreditDropPolicy::UniformRandom,
            _ => CreditDropPolicy::LongestQueueDrop,
        };
        let n = below(&mut meta, 1, 200) as usize;
        let cap = below(&mut meta, 1, 16) as usize;
        let mut q = CreditQueue::new(10_000_000_000, cap);
        q.drop_policy = policy;
        let mut rng = Rng::new(42);
        for i in 0..n {
            let f = meta.below(4) as u32;
            let mut p = Packet::new(FlowId(f), HostId(f), HostId(9), PktKind::Credit, 84);
            p.seq = i as u64;
            q.enqueue(SimTime(i as u64 * 1000), p, &mut rng);
            assert!(q.len() <= cap);
        }
        // Conservation: everything enqueued was either dropped or is queued.
        assert!(q.stats.dropped + q.stats.enqueued >= n as u64);
    }
}

#[test]
fn credit_queue_fifo_order_survives_drops() {
    let mut meta = Rng::new(0x5EED_000A);
    for _ in 0..16 {
        let n = below(&mut meta, 10, 150) as usize;
        // Per-flow sequence numbers of dequeued credits must be increasing
        // regardless of drop policy (the receiver's loss accounting relies
        // on it).
        for policy in [
            CreditDropPolicy::Tail,
            CreditDropPolicy::UniformRandom,
            CreditDropPolicy::LongestQueueDrop,
        ] {
            let mut q = CreditQueue::new(10_000_000_000, 8);
            q.drop_policy = policy;
            let mut rng = Rng::new(9);
            let mut now = SimTime::ZERO;
            let mut last_seq = [0u64; 2];
            for i in 0..n {
                let f = (i % 2) as u32;
                let mut p = Packet::new(FlowId(f), HostId(f), HostId(9), PktKind::Credit, 84);
                p.seq = i as u64;
                q.enqueue(now, p, &mut rng);
                now += Dur::ns(400);
                if q.head_conforms(now) {
                    let out = q.dequeue(now).unwrap();
                    let fl = out.src.0 as usize;
                    assert!(out.seq >= last_seq[fl], "{policy:?}: reordered");
                    last_seq[fl] = out.seq;
                }
            }
        }
    }
}

#[test]
fn symmetric_hash_property() {
    let mut rng = Rng::new(0x5EED_000B);
    for _ in 0..256 {
        let a = rng.below(100_000) as u32;
        let b = rng.below(100_000) as u32;
        let f = rng.next_u64() as u32;
        assert_eq!(
            symmetric_flow_hash(HostId(a), HostId(b), FlowId(f)),
            symmetric_flow_hash(HostId(b), HostId(a), FlowId(f))
        );
        if a != b {
            let n = 1 + (f as usize % 8);
            assert_eq!(
                ecmp_index(HostId(a), HostId(b), FlowId(f), n),
                ecmp_index(HostId(b), HostId(a), FlowId(f), n)
            );
        }
    }
}

#[test]
fn wire_sizes_bounded() {
    for app in 0u32..1461 {
        let w = data_wire_size(app);
        assert!(w >= MIN_FRAME);
        assert!(w <= MAX_FRAME);
    }
}

#[test]
fn fat_tree_routes_complete() {
    for k in [2usize, 4, 6, 8] {
        let topo = Topology::fat_tree(k, 10_000_000_000, 10_000_000_000, Dur::us(1));
        // Every switch can route to every host with ≥1 next hop.
        for s in 0..topo.n_switches {
            for h in 0..topo.n_hosts {
                assert!(
                    !topo
                        .route_choices(SwitchId(s as u32), HostId(h as u32))
                        .is_empty(),
                    "sw{s} cannot reach h{h}"
                );
            }
        }
    }
}

// ---- expresspass feedback -------------------------------------------------

#[test]
fn feedback_rate_always_within_bounds() {
    let mut rng = Rng::new(0x5EED_000C);
    for _ in 0..32 {
        let alpha_inv = below(&mut rng, 1, 33) as u32;
        let cfg = XPassConfig::default().with_alpha_winit(1.0 / alpha_inv as f64, 0.5);
        let max = max_credit_rate(10_000_000_000);
        let mut fb = CreditFeedback::new(max, cfg);
        let floor = max * cfg.min_rate_frac;
        let n = below(&mut rng, 1, 300);
        for _ in 0..n {
            let loss = rng.below(1_000_000) as f64 / 1_000_000.0;
            let r = fb.on_update(loss);
            assert!(r >= floor - 1e-9, "rate {r} under floor {floor}");
            assert!(r <= fb.ceiling() + 1e-9, "rate {r} over ceiling");
            assert!(fb.w() >= cfg.w_min - 1e-12);
            assert!(fb.w() <= cfg.w_max + 1e-12);
        }
    }
}

#[test]
fn feedback_clean_periods_monotone_toward_ceiling() {
    let mut fb = CreditFeedback::new(1e6, XPassConfig::default());
    let mut last = fb.rate();
    for _ in 0..100 {
        let r = fb.on_update(0.0);
        assert!(r >= last - 1e-9, "clean update decreased rate");
        last = r;
    }
}

#[test]
fn netcalc_bounds_monotone_in_credit_queue() {
    for cq in 1usize..33 {
        let mut p1 = NetCalcParams::testbed();
        p1.credit_queue = cq;
        let mut p2 = p1;
        p2.credit_queue = cq + 1;
        let topo = HierTopo::fat32_10_40();
        let b1 = buffer_bounds(&topo, &p1);
        let b2 = buffer_bounds(&topo, &p2);
        assert!(b2.tor_down.buffer_bytes >= b1.tor_down.buffer_bytes);
        assert!(b2.core.buffer_bytes >= b1.core.buffer_bytes);
    }
}

/// Protocol-level invariants over randomized scenarios (fewer cases — each
/// case is a full packet-level simulation).
mod protocol_props {
    use super::*;
    use xpass::expresspass::xpass_factory;
    use xpass::net::config::NetConfig;
    use xpass::net::network::Network;

    /// ExpressPass never drops data and always completes, for random
    /// topology shapes, flow matrices, sizes, and seeds.
    #[test]
    fn xpass_zero_loss_everywhere() {
        let mut meta = Rng::new(0x5EED_0100);
        for _ in 0..12 {
            let seed = below(&mut meta, 1, 10_000);
            let shape = meta.below(3);
            let n_flows = below(&mut meta, 1, 10) as usize;
            let size_kb = below(&mut meta, 1, 400);
            let topo = match shape {
                0 => Topology::star(8, 10_000_000_000, Dur::us(2)),
                1 => Topology::dumbbell(8, 10_000_000_000, Dur::us(4)),
                _ => Topology::fat_tree(4, 10_000_000_000, 10_000_000_000, Dur::us(2)),
            };
            let n_hosts = topo.n_hosts as u32;
            let cfg = NetConfig::expresspass().with_seed(seed);
            let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
            let mut rng = Rng::new(seed ^ 0xF00D);
            for _ in 0..n_flows {
                let src = HostId(rng.below(n_hosts as u64) as u32);
                let dst = loop {
                    let d = HostId(rng.below(n_hosts as u64) as u32);
                    if d != src {
                        break d;
                    }
                };
                let start = SimTime::ZERO + Dur::us(rng.below(500));
                net.add_flow(src, dst, size_kb * 1000, start);
            }
            net.run_until_done(SimTime::ZERO + Dur::secs(5));
            assert_eq!(net.completed_count(), n_flows, "incomplete flows");
            assert_eq!(net.total_data_drops(), 0, "data loss");
        }
    }

    /// The window transport completes under arbitrary loss pressure
    /// (random tiny buffers), for DCTCP.
    #[test]
    fn dctcp_completes_despite_random_buffers() {
        let mut meta = Rng::new(0x5EED_0200);
        for _ in 0..12 {
            let seed = below(&mut meta, 1, 10_000);
            let queue_mtus = below(&mut meta, 4, 60);
            let n_flows = below(&mut meta, 1, 8) as usize;
            let topo = Topology::star(9, 10_000_000_000, Dur::us(2));
            let mut cfg = NetConfig::dctcp(10_000_000_000).with_seed(seed);
            cfg.switch_queue_bytes = queue_mtus * 1538;
            let mut net = Network::new(topo, cfg, xpass::baselines::dctcp_factory(10_000_000_000));
            for i in 0..n_flows {
                net.add_flow(HostId(i as u32), HostId(8), 150_000, SimTime::ZERO);
            }
            net.run_until_done(SimTime::ZERO + Dur::secs(5));
            assert_eq!(net.completed_count(), n_flows);
        }
    }

    /// Determinism as a property: identical seeds give identical FCTs
    /// regardless of the scenario.
    #[test]
    fn any_scenario_is_deterministic() {
        let mut meta = Rng::new(0x5EED_0300);
        for _ in 0..6 {
            let seed = below(&mut meta, 1, 10_000);
            let n = below(&mut meta, 2, 6) as usize;
            let run = || {
                let topo = Topology::dumbbell(n, 10_000_000_000, Dur::us(4));
                let cfg = NetConfig::expresspass().with_seed(seed);
                let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
                for i in 0..n {
                    net.add_flow(
                        HostId(i as u32),
                        HostId((n + i) as u32),
                        500_000,
                        SimTime::ZERO,
                    );
                }
                net.run_until_done(SimTime::ZERO + Dur::secs(2));
                net.flow_records()
                    .iter()
                    .map(|r| r.fct.map(|d| d.as_ps()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(), run());
        }
    }
}
