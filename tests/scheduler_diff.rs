//! Differential scheduler tests: the calendar queue must be a drop-in
//! replacement for the reference heap scheduler. Each paper experiment is
//! run once under each scheduler (on its own thread — scheduler choice is
//! thread-scoped) and the outputs are compared **byte for byte**: the
//! human-readable tables, the `xpass-repro/v1` JSON records written by the
//! CLI, and the JSONL event traces of an instrumented network run.
//!
//! These tests are the contract that lets every other test in the suite
//! run on the calendar queue without loss of coverage: any divergence in
//! event ordering, RNG stream consumption, or timer cancellation shows up
//! here as a text diff.

use std::process::Command;
use std::thread;
use xpass::experiments as ex;
use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::ids::HostId;
use xpass::net::network::Network;
use xpass::net::topology::Topology;
use xpass::sim::event::{set_thread_scheduler, SchedulerKind};
use xpass::sim::time::{Dur, SimTime};
use xpass::sim::trace::JsonlSink;

const G10: u64 = 10_000_000_000;

/// Run `f` on a dedicated thread with `kind` installed as that thread's
/// scheduler. A fresh thread keeps the thread-local scheduler choice from
/// leaking into other tests running on the harness's thread pool.
fn with_scheduler<T, F>(kind: SchedulerKind, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    thread::spawn(move || {
        set_thread_scheduler(kind);
        f()
    })
    .join()
    .expect("scheduler worker panicked")
}

/// Run `f` under both schedulers and return (heap, calendar) results.
fn under_both<T, F>(f: F) -> (T, T)
where
    T: Send + 'static,
    F: Fn() -> T + Send + Clone + 'static,
{
    let heap = with_scheduler(SchedulerKind::Heap, f.clone());
    let calendar = with_scheduler(SchedulerKind::Calendar, f);
    (heap, calendar)
}

#[test]
fn fig01_queue_buildup_is_scheduler_invariant() {
    let (h, c) = under_both(|| {
        ex::fig01_queue_buildup::run(&ex::fig01_queue_buildup::Config::default()).to_string()
    });
    assert_eq!(h, c, "fig01 table differs between heap and calendar");
}

#[test]
fn fig10_parking_lot_is_scheduler_invariant() {
    let (h, c) = under_both(|| {
        ex::fig10_parking_lot::run(&ex::fig10_parking_lot::Config::default()).to_string()
    });
    assert_eq!(h, c, "fig10 table differs between heap and calendar");
}

#[test]
fn fig16_convergence_is_scheduler_invariant() {
    let (h, c) = under_both(|| {
        ex::fig16_convergence::run(&ex::fig16_convergence::Config::default()).to_string()
    });
    assert_eq!(h, c, "fig16 table differs between heap and calendar");
}

#[test]
fn fault_recovery_is_scheduler_invariant() {
    let (h, c) =
        under_both(|| ex::fault_recovery::run(&ex::fault_recovery::Config::default()).to_string());
    assert_eq!(
        h, c,
        "fault-recovery table differs between heap and calendar"
    );
}

/// One busy ExpressPass dumbbell run: counters, flow records, the engine
/// report's event tally, and (optionally) a JSONL trace on disk.
fn traced_dumbbell(trace_path: Option<std::path::PathBuf>) -> (String, u64, usize) {
    let topo = Topology::dumbbell(4, G10, Dur::us(2));
    let cfg = NetConfig::expresspass().with_seed(11);
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    if let Some(path) = trace_path {
        let sink = JsonlSink::create(&path).expect("create trace file");
        net.install_trace_sink(Box::new(sink));
    }
    for i in 0..4u32 {
        net.add_flow(HostId(i), HostId(4 + i), 1_500_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    let digest = format!("{:?}\n{:?}", net.counters(), net.flow_records());
    let report = net.engine_report();
    drop(net.take_trace_sink()); // flush the JSONL writer
    (digest, report.events_processed, report.peak_queue_len)
}

#[test]
fn network_run_and_jsonl_trace_are_byte_identical() {
    let dir = std::env::temp_dir();
    let heap_path = dir.join(format!("xpass-diff-heap-{}.jsonl", std::process::id()));
    let cal_path = dir.join(format!("xpass-diff-cal-{}.jsonl", std::process::id()));

    let hp = heap_path.clone();
    let (h_digest, h_events, h_peak) =
        with_scheduler(SchedulerKind::Heap, move || traced_dumbbell(Some(hp)));
    let cp = cal_path.clone();
    let (c_digest, c_events, c_peak) =
        with_scheduler(SchedulerKind::Calendar, move || traced_dumbbell(Some(cp)));

    assert_eq!(h_digest, c_digest, "counters/flow records diverged");
    assert_eq!(h_events, c_events, "event totals diverged");
    assert_eq!(h_peak, c_peak, "peak queue depth diverged");

    let h_trace = std::fs::read(&heap_path).expect("read heap trace");
    let c_trace = std::fs::read(&cal_path).expect("read calendar trace");
    assert!(!h_trace.is_empty(), "heap trace is empty");
    assert_eq!(h_trace, c_trace, "JSONL traces diverged");

    let _ = std::fs::remove_file(&heap_path);
    let _ = std::fs::remove_file(&cal_path);
}

/// Run the CLI on a set of experiments with `--json`, returning stdout and
/// the bytes of every record file (in experiment order).
fn cli_json_run(scheduler: &str, dir: &std::path::Path) -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let out = Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
        .args([
            "fig01",
            "fig10",
            "fig16",
            "faults",
            "--seed",
            "5",
            "--scheduler",
            scheduler,
            "--json",
        ])
        .arg(dir)
        .output()
        .expect("run xpass-repro");
    assert!(out.status.success(), "xpass-repro failed: {out:?}");
    let mut records = Vec::new();
    for name in ["fig01", "fig10", "fig16", "faults"] {
        let path = dir.join(format!("{name}.json"));
        let bytes = std::fs::read(&path).expect("read JSON record");
        records.push((name.to_string(), bytes));
    }
    (out.stdout, records)
}

#[test]
fn cli_json_records_are_scheduler_invariant() {
    let base = std::env::temp_dir().join(format!("xpass-diff-cli-{}", std::process::id()));
    let heap_dir = base.join("heap");
    let cal_dir = base.join("calendar");

    let (h_stdout, h_records) = cli_json_run("heap", &heap_dir);
    let (c_stdout, c_records) = cli_json_run("calendar", &cal_dir);

    assert_eq!(h_stdout, c_stdout, "CLI stdout diverged between schedulers");
    for ((name, h), (_, c)) in h_records.iter().zip(&c_records) {
        assert_eq!(h, c, "{name}.json diverged between schedulers");
        let text = String::from_utf8(h.clone()).expect("record is UTF-8");
        assert!(
            text.contains("\"schema\":\"xpass-repro/v1\""),
            "{name}.json is missing the schema tag: {text}"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
