//! Integration tests for the §7 extension features: multi-class credit
//! priority, packet-spray routing, the preemptive CREDIT_STOP, and the
//! documented heterogeneous-link-speed limitation.

use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::{NetConfig, RoutingMode};
use xpass::net::ids::{HostId, NodeId};
use xpass::net::network::Network;
use xpass::net::topology::{TopoBuilder, Topology};
use xpass::sim::time::{Dur, SimTime};

const G10: u64 = 10_000_000_000;

fn xpass_net(topo: Topology, mut cfg: NetConfig, xp: XPassConfig) -> Network {
    cfg.credit = true;
    Network::new(topo, cfg, xpass_factory(xp))
}

#[test]
fn class_zero_credits_strictly_preempt_class_one() {
    // §7: "prioritizing flow A's credits over flow B's ... will result in
    // the strict prioritization of A over B." Two long flows share a
    // bottleneck; the high-priority one must take nearly the whole link.
    let topo = Topology::dumbbell(2, G10, Dur::us(4));
    let mut cfg = NetConfig::expresspass().with_seed(31);
    cfg.credit_classes = 2;
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    let hi = net.add_flow_in_class(HostId(0), HostId(2), 1 << 30, SimTime::ZERO, 0);
    let lo = net.add_flow_in_class(HostId(1), HostId(3), 1 << 30, SimTime::ZERO, 1);
    net.run_until(SimTime::ZERO + Dur::ms(20));
    let hi_bytes = net.delivered_bytes(hi);
    let lo_bytes = net.delivered_bytes(lo);
    assert!(
        hi_bytes > lo_bytes * 4,
        "no strict priority: hi {hi_bytes} vs lo {lo_bytes}"
    );
    // High-priority flow runs at near-solo throughput.
    let hi_gbps = hi_bytes as f64 * 8.0 / 0.020 / 1e9;
    assert!(hi_gbps > 7.0, "hi class at {hi_gbps:.2} Gbps");
}

#[test]
fn same_class_flows_still_share_fairly() {
    // With multiple classes configured but both flows in class 0, sharing
    // is unchanged.
    let topo = Topology::dumbbell(2, G10, Dur::us(4));
    let mut cfg = NetConfig::expresspass().with_seed(33);
    cfg.credit_classes = 2;
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    let a = net.add_flow_in_class(HostId(0), HostId(2), 1 << 30, SimTime::ZERO, 0);
    let b = net.add_flow_in_class(HostId(1), HostId(3), 1 << 30, SimTime::ZERO, 0);
    net.run_until(SimTime::ZERO + Dur::ms(20));
    let (da, db) = (net.delivered_bytes(a) as f64, net.delivered_bytes(b) as f64);
    let ratio = da.max(db) / da.min(db);
    assert!(ratio < 1.5, "same-class flows unfair: {da} vs {db}");
}

#[test]
#[should_panic(expected = "outside configured credit_classes")]
fn class_must_be_configured() {
    let topo = Topology::dumbbell(1, G10, Dur::us(4));
    let cfg = NetConfig::expresspass();
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
    net.add_flow_in_class(HostId(0), HostId(1), 1, SimTime::ZERO, 3);
}

#[test]
fn packet_spray_completes_with_bounded_queues() {
    // §7: packet spraying as the path-symmetry alternative — the bounded
    // queuing property also bounds reordering, so ExpressPass still works.
    let topo = Topology::fat_tree(4, G10, G10, Dur::us(2));
    let mut cfg = NetConfig::expresspass().with_seed(35);
    cfg.routing = RoutingMode::PacketSpray;
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
    for i in 0..8u32 {
        net.add_flow(HostId(i), HostId(15 - i), 2_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert_eq!(net.completed_count(), 8);
    assert_eq!(
        net.total_data_drops(),
        0,
        "spraying must not cause data loss"
    );
    assert!(
        net.max_switch_queue_bytes() < 30_000,
        "queue {} under spraying",
        net.max_switch_queue_bytes()
    );
}

#[test]
fn spray_balances_core_load_better_than_hash_collisions() {
    // Per-packet spraying equalizes bytes across a ToR's uplinks even when
    // symmetric hashing collides flows onto one uplink.
    let measure = |mode: RoutingMode| -> f64 {
        let topo = Topology::fat_tree(4, G10, G10, Dur::us(2));
        let mut cfg = NetConfig::expresspass().with_seed(37);
        cfg.routing = mode;
        let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::default()));
        // Two cross-pod flows from the same ToR.
        net.add_flow(HostId(0), HostId(12), 5_000_000, SimTime::ZERO);
        net.add_flow(HostId(1), HostId(13), 5_000_000, SimTime::ZERO);
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        // Imbalance across ToR 0's two uplinks.
        let topo = net.topo().clone();
        let ups: Vec<u64> = topo
            .dlinks
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.from == NodeId::Switch(xpass::net::ids::SwitchId(0))
                    && matches!(l.to, NodeId::Switch(_))
            })
            .map(|(i, _)| net.port(xpass::net::ids::DLinkId(i as u32)).tx_data_bytes)
            .collect();
        let hi = *ups.iter().max().unwrap() as f64;
        let lo = *ups.iter().min().unwrap() as f64;
        hi / lo.max(1.0)
    };
    let spray = measure(RoutingMode::PacketSpray);
    assert!(spray < 1.2, "spray imbalance {spray:.2}");
}

#[test]
fn heterogeneous_host_speeds_document_the_limitation() {
    // §7: "when host link speeds are different, the algorithm does not
    // achieve fairness" — the feedback assumes a uniform max_rate. Build a
    // 10G sender and a 40G sender sharing a 10G bottleneck: the 40G flow's
    // receiver targets 4x the credit ceiling and grabs the larger share.
    let mut b = TopoBuilder::new();
    let h = b.add_hosts(4);
    let s0 = b.add_switch();
    let s1 = b.add_switch();
    b.connect(NodeId::Host(h[0]), NodeId::Switch(s0), G10, Dur::us(4));
    b.connect(NodeId::Host(h[1]), NodeId::Switch(s0), 4 * G10, Dur::us(4));
    b.connect(NodeId::Host(h[2]), NodeId::Switch(s1), G10, Dur::us(4));
    b.connect(NodeId::Host(h[3]), NodeId::Switch(s1), 4 * G10, Dur::us(4));
    b.connect(NodeId::Switch(s0), NodeId::Switch(s1), G10, Dur::us(4));
    let topo = b.build("hetero");
    let cfg = NetConfig::expresspass().with_seed(39);
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    let slow = net.add_flow(HostId(0), HostId(2), 1 << 30, SimTime::ZERO);
    let fast = net.add_flow(HostId(1), HostId(3), 1 << 30, SimTime::ZERO);
    net.run_until(SimTime::ZERO + Dur::ms(20));
    let (ds, df) = (net.delivered_bytes(slow), net.delivered_bytes(fast));
    // Documented limitation: the faster-NIC flow wins a super-fair share.
    assert!(
        df as f64 > ds as f64 * 1.3,
        "expected unfairness toward the 40G flow: slow {ds} vs fast {df}"
    );
    // But the system still operates: no data loss, bounded queue.
    assert_eq!(net.total_data_drops(), 0);
}

#[test]
fn early_credit_stop_reduces_fleet_waste() {
    // Many mice with the §7 preemptive stop: total waste drops vs default.
    let run = |early: bool| -> u64 {
        let topo = Topology::star(9, G10, Dur::us(25));
        let cfg = NetConfig::expresspass().with_seed(41);
        let xp = if early {
            XPassConfig::aggressive().with_early_credit_stop()
        } else {
            XPassConfig::aggressive()
        };
        let mut net = xpass_net(topo, cfg, xp);
        for i in 0..8u32 {
            for k in 0..5u32 {
                net.add_flow(
                    HostId(i),
                    HostId(8),
                    300_000,
                    SimTime::ZERO + Dur::ms(k as u64),
                );
            }
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert_eq!(net.completed_count(), 40);
        net.drain_until(net.now() + Dur::ms(5));
        net.counters().credits_wasted
    };
    let off = run(false);
    let on = run(true);
    assert!(on < off, "early stop: {on} wasted vs {off} without");
}

#[test]
fn uncredited_background_traffic_is_absorbed() {
    // §7 "Presence of other traffic": a modest uncredited stream coexists
    // with ExpressPass flows — the near-empty data queues absorb it, the
    // credit flows keep their zero-loss property, and the background bytes
    // get through.
    use xpass::baselines::udp::{UdpBlastReceiver, UdpBlastSender};
    use xpass::expresspass::{XPassReceiver, XPassSender};
    use xpass::net::ids::Side;

    let topo = Topology::dumbbell(3, G10, Dur::us(4));
    let cfg = NetConfig::expresspass().with_seed(51);
    // Mixed factory: flow 2 (the third added) is the uncredited blaster at
    // 300 Mbps; the rest are ExpressPass.
    let mut net = Network::new(
        topo,
        cfg,
        Box::new(|side, info, _h| {
            if info.id.0 == 2 {
                match side {
                    Side::Sender => Box::new(UdpBlastSender::new(3e8)),
                    Side::Receiver => Box::new(UdpBlastReceiver),
                }
            } else {
                match side {
                    Side::Sender => Box::new(XPassSender::new(XPassConfig::aggressive())),
                    Side::Receiver => Box::new(XPassReceiver::new(XPassConfig::aggressive())),
                }
            }
        }),
    );
    let a = net.add_flow(HostId(0), HostId(3), 8_000_000, SimTime::ZERO);
    let b = net.add_flow(HostId(1), HostId(4), 8_000_000, SimTime::ZERO);
    let bg = net.add_flow(HostId(2), HostId(5), 1_000_000, SimTime::ZERO);
    net.run_until_done(SimTime::ZERO + Dur::secs(1));
    assert!(net.flow_done(a) && net.flow_done(b) && net.flow_done(bg));
    // Nothing dropped: the credit headroom absorbed the background stream.
    assert_eq!(net.total_data_drops(), 0);
}

#[test]
fn link_failure_reroutes_and_preserves_symmetry() {
    // §3.1: failed links must be excluded (bidirectionally) so credit/data
    // symmetry holds on the surviving paths. Kill one ToR-agg cable of a
    // fat tree and run ExpressPass across it.
    use xpass::net::ids::SwitchId;
    let topo = Topology::fat_tree(4, G10, G10, Dur::us(2));
    // ToR 0 (switch 0) to its first agg (aggs start at k*half = 8).
    let failed = topo.without_cable(NodeId::Switch(SwitchId(0)), NodeId::Switch(SwitchId(8)));
    // ToR 0 now has a single uplink toward remote pods.
    assert_eq!(
        failed
            .route_choices(SwitchId(0), HostId(failed.n_hosts as u32 - 1))
            .len(),
        1
    );
    let cfg = NetConfig::expresspass().with_seed(61);
    let mut net = Network::new(failed, cfg, xpass_factory(XPassConfig::default()));
    for i in 0..4u32 {
        net.add_flow(HostId(i), HostId(12 + i), 1_500_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert_eq!(net.completed_count(), 4);
    assert_eq!(
        net.total_data_drops(),
        0,
        "rerouted flows must stay lossless"
    );
}

#[test]
#[should_panic(expected = "no cable")]
fn removing_missing_cable_panics() {
    let topo = Topology::dumbbell(1, G10, Dur::us(1));
    let _ = topo.without_cable(NodeId::Host(HostId(0)), NodeId::Host(HostId(1)));
}
