//! Thread-count invariance: `xpass-repro --jobs N` must produce the same
//! bytes for every N. The parallel harness runs one single-threaded engine
//! per experiment and merges results in selection order, so stdout and the
//! `--json` directory are independent of worker count and of OS thread
//! scheduling. This test pins that contract by diffing a `--jobs 1` run
//! against a `--jobs 4` run.

use std::path::Path;
use std::process::Command;

/// Experiments picked to cover distinct engine workloads without making
/// the test slow: queue build-up, multi-hop fairness, convergence, faults.
const TARGETS: [&str; 4] = ["fig01", "fig10", "fig16", "faults"];

fn run_with_jobs(jobs: &str, dir: &Path) -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let out = Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
        .args(TARGETS)
        .args(["--seed", "9", "--jobs", jobs, "--json"])
        .arg(dir)
        .output()
        .expect("run xpass-repro");
    assert!(out.status.success(), "xpass-repro failed: {out:?}");
    let mut records = Vec::new();
    for name in TARGETS {
        let path = dir.join(format!("{name}.json"));
        let bytes = std::fs::read(&path).expect("read JSON record");
        records.push((name.to_string(), bytes));
    }
    (out.stdout, records)
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_output() {
    let base = std::env::temp_dir().join(format!("xpass-jobs-inv-{}", std::process::id()));
    let serial_dir = base.join("j1");
    let parallel_dir = base.join("j4");

    let (s_stdout, s_records) = run_with_jobs("1", &serial_dir);
    let (p_stdout, p_records) = run_with_jobs("4", &parallel_dir);

    assert_eq!(
        s_stdout, p_stdout,
        "stdout differs between --jobs 1 and --jobs 4"
    );
    for ((name, s), (_, p)) in s_records.iter().zip(&p_records) {
        assert_eq!(s, p, "{name}.json differs between --jobs 1 and --jobs 4");
    }

    let _ = std::fs::remove_dir_all(&base);
}
