//! Snapshot/resume fence: for every fence experiment, a run interrupted by
//! a checkpoint and resumed **in a fresh process** produces output — final
//! tables on stdout and the `xpass-repro/v1` JSON record — byte-identical
//! to the uninterrupted run, under both event schedulers. Also pins the
//! zero-cost-when-off guarantee (checkpointing changes no output bytes),
//! the library-level round trip of `Network::snapshot_into`/`restore_from`,
//! and the budget-kill → resume path of the robustness story.

use std::path::{Path, PathBuf};
use std::process::Command;
use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::ids::HostId;
use xpass::net::network::Network;
use xpass::net::topology::Topology;
use xpass::sim::checkpoint::{self, CheckpointConfig};
use xpass::sim::event::{set_thread_scheduler, SchedulerKind};
use xpass::sim::snap::SnapWriter;
use xpass::sim::time::{Dur, SimTime};
use xpass::sim::watchdog::{TripReason, WatchdogSpec};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xpass-snapdet-{tag}-{}", std::process::id()))
}

/// Every `.snap` file under `dir`, recursively, sorted by path.
fn snaps(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "snap") {
                found.push(p);
            }
        }
    }
    found.sort();
    found
}

/// Run the CLI, assert success, return (stdout, `<exp>.json` record text).
fn run(args: &[&str], json_dir: &Path, exp: &str) -> (Vec<u8>, String) {
    let out = bin()
        .args(args)
        .args(["--json"])
        .arg(json_dir)
        .output()
        .expect("spawn xpass-repro");
    assert!(
        out.status.success(),
        "xpass-repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rec_path = json_dir.join(format!("{exp}.json"));
    let rec = std::fs::read_to_string(&rec_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", rec_path.display()));
    (out.stdout, rec)
}

/// The fence proper: clean run vs checkpointed run vs fresh-process resume
/// from both the earliest and the latest kept snapshot, × both schedulers.
fn fence(exp: &str, every_ms: &str, extra: &[&str]) {
    for sched in ["heap", "calendar"] {
        let root = tmp(&format!("{exp}-{sched}"));
        let _ = std::fs::remove_dir_all(&root);
        let ckd = root.join("ckd");

        let mut clean_args = vec![exp, "--scheduler", sched];
        clean_args.extend_from_slice(extra);
        let (clean_out, clean_rec) = run(&clean_args, &root.join("j-clean"), exp);

        let mut ck_args = clean_args.clone();
        ck_args.extend_from_slice(&["--checkpoint-every", every_ms, "--checkpoint-dir"]);
        let ckd_s = ckd.to_str().unwrap();
        ck_args.push(ckd_s);
        let (ck_out, ck_rec) = run(&ck_args, &root.join("j-ck"), exp);
        assert_eq!(
            clean_out, ck_out,
            "{exp}/{sched}: checkpointing changed stdout"
        );
        assert_eq!(
            clean_rec, ck_rec,
            "{exp}/{sched}: checkpointing changed the JSON record"
        );

        let written = snaps(&ckd);
        assert!(
            !written.is_empty(),
            "{exp}/{sched}: no snapshots were written under {}",
            ckd.display()
        );
        // Resume must be byte-identical from ANY snapshot, not just the
        // newest: exercise the two extremes.
        let picks: Vec<&PathBuf> = if written.len() == 1 {
            vec![&written[0]]
        } else {
            vec![&written[0], &written[written.len() - 1]]
        };
        for (k, snap) in picks.into_iter().enumerate() {
            let snap_s = snap.to_str().unwrap();
            let resume_args = vec!["--resume", snap_s, "--scheduler", sched];
            let (r_out, r_rec) = run(&resume_args, &root.join(format!("j-r{k}")), exp);
            assert_eq!(
                clean_out,
                r_out,
                "{exp}/{sched}: resume from {} diverged on stdout",
                snap.display()
            );
            assert_eq!(
                clean_rec,
                r_rec,
                "{exp}/{sched}: resume from {} diverged on the JSON record",
                snap.display()
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn fig01_resumes_byte_identically() {
    fence("fig01", "1", &[]);
}

#[test]
fn fig10_resumes_byte_identically() {
    fence("fig10", "5", &[]);
}

#[test]
fn fig16_resumes_byte_identically() {
    fence("fig16", "5", &[]);
}

#[test]
fn faults_resumes_byte_identically() {
    fence("faults", "5", &[]);
}

#[test]
fn chaos_sweep_resumes_byte_identically() {
    // --jobs 2 on the original run: snapshots taken inside the nested
    // per-seed fan-out (scope-0-k) must still resume on a 1-job run.
    fence("chaos_sweep", "5", &["--jobs", "2"]);
}

/// The fence experiments record no traces, so `--trace` on a checkpointed
/// run must change nothing: the CLI notes it, writes no file, and output
/// stays byte-identical. (Trace-recording experiments are snapshot-exempt
/// by design: the sink is external I/O, not simulator state.)
#[test]
fn trace_flag_is_inert_for_fence_experiments() {
    let root = tmp("trace-inert");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let trace = root.join("t.jsonl");
    let trace_s = trace.to_str().unwrap();
    let (clean_out, clean_rec) = run(&["fig10"], &root.join("j-clean"), "fig10");
    let ckd = root.join("ckd");
    let ckd_s = ckd.to_str().unwrap();
    let (ck_out, ck_rec) = run(
        &[
            "fig10",
            "--trace",
            trace_s,
            "--checkpoint-every",
            "5",
            "--checkpoint-dir",
            ckd_s,
        ],
        &root.join("j-ck"),
        "fig10",
    );
    assert_eq!(clean_out, ck_out);
    assert_eq!(clean_rec, ck_rec);
    assert!(!trace.exists(), "fig10 traces nothing; no file expected");
    let _ = std::fs::remove_dir_all(&root);
}

fn demo_net(max_events: Option<u64>) -> Network {
    let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
    let cfg = NetConfig::expresspass().with_seed(11);
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    net.install_ledger();
    net.install_watchdog(WatchdogSpec {
        max_events,
        max_wall: None,
        max_events_per_instant: Some(100_000),
    });
    for i in 0..2u32 {
        net.add_flow(HostId(i), HostId(2 + i), 2_000_000, SimTime::ZERO);
    }
    net
}

const CAP: SimTime = SimTime(10_000_000_000); // 10 ms in ps

/// Library-level round trip: snapshot a network mid-run, restore the bytes
/// into a freshly built twin — under the *other* scheduler — and continue
/// both to completion. Identical final state proves the snapshot captures
/// everything the run depends on, in scheduler-independent bytes.
#[test]
fn network_state_round_trips_in_process_across_schedulers() {
    set_thread_scheduler(SchedulerKind::Heap);
    let mut a = demo_net(None);
    a.run_until(SimTime::ZERO + Dur::us(300));
    let mut w = SnapWriter::new();
    a.snapshot_into(&mut w);
    let body = w.into_body();
    a.run_until_done(CAP);

    set_thread_scheduler(SchedulerKind::Calendar);
    let mut b = demo_net(None);
    b.restore_from(&body).expect("twin restore");
    b.run_until_done(CAP);

    assert_eq!(a.flow_records(), b.flow_records());
    assert_eq!(a.counters(), b.counters());
    assert_eq!(a.now(), b.now());
    assert_eq!(a.completed_count(), 2);
}

/// The million-flow memory layout round-trips: a small fig15_xl-style
/// 3-tier Clos with a mid-run cable cut, snapshotted while timers are
/// armed and the fault overlay is active, restores into a twin under the
/// other scheduler — arena slots (with SoA lanes), timer-wheel occupancy,
/// and the routing-overlay epoch all travel through the bytes.
#[test]
fn three_tier_with_faults_round_trips_across_schedulers() {
    use xpass::net::faults::FaultPlan;
    use xpass::net::ids::NodeId;

    fn clos_net() -> Network {
        // 4 pods × 2 ToRs × 6 hosts = 48 hosts, the fig15_xl quick shape.
        let topo = Topology::three_tier(
            4,
            2,
            2,
            6,
            4,
            10_000_000_000,
            10_000_000_000,
            10_000_000_000,
            Dur::us(1),
        );
        let cfg = NetConfig::expresspass().with_seed(29);
        let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
        for i in 0..24u32 {
            net.add_flow(HostId(i), HostId(24 + i), 400_000, SimTime::ZERO);
        }
        // Cut one ToR uplink mid-run so the flat-route overlay holds
        // excluded slices (and a bumped epoch) at the snapshot point.
        let tor = net.topo().tor_switches()[0];
        let up = net.topo().route_choices(tor, HostId(47))[0];
        let agg = match net.topo().dlinks[up.0 as usize].to {
            NodeId::Switch(s) => s,
            other => panic!("ToR uplink must reach a switch, got {other:?}"),
        };
        let down = net
            .topo()
            .dlink_between(NodeId::Switch(agg), NodeId::Switch(tor))
            .unwrap();
        net.install_fault_plan(
            FaultPlan::new()
                .cable_down(SimTime::ZERO + Dur::us(100), up, down)
                .cable_up(SimTime::ZERO + Dur::us(600), up, down),
        );
        net
    }

    // Generous cap: a SYN blackholed by the cut retries on exponential
    // backoff and may settle tens of ms after the heal.
    let cap = SimTime::ZERO + Dur::ms(200);
    set_thread_scheduler(SchedulerKind::Heap);
    let mut a = clos_net();
    a.run_until(SimTime::ZERO + Dur::us(250));
    let mut w = SnapWriter::new();
    a.snapshot_into(&mut w);
    let body = w.into_body();
    a.run_until_done(cap);

    set_thread_scheduler(SchedulerKind::Calendar);
    let mut b = clos_net();
    b.restore_from(&body).expect("clos twin restore");
    b.run_until_done(cap);

    assert_eq!(a.flow_records(), b.flow_records());
    assert_eq!(a.counters(), b.counters());
    assert_eq!(a.now(), b.now());
    // The cut can abort a SYN-blackholed flow or two; every flow must
    // still settle, identically on both sides.
    assert_eq!(a.completed_count() + a.aborted_count(), 24);
    assert_eq!(a.completed_count(), b.completed_count());
    assert_eq!(a.aborted_count(), b.aborted_count());
    set_thread_scheduler(SchedulerKind::default());
}

/// Satellite: a run killed by its event budget leaves a valid latest
/// snapshot behind, and resuming with a larger budget completes
/// byte-identically to the run that was never killed.
#[test]
fn budget_killed_run_resumes_to_the_unbudgeted_result() {
    // Reference: generous budget, never trips.
    let mut reference = demo_net(Some(10_000_000));
    reference.run_until_done(CAP);
    assert!(reference.watchdog_report().is_none());

    let dir = tmp("budget-kill");
    let _ = std::fs::remove_dir_all(&dir);
    checkpoint::install(
        Some(CheckpointConfig {
            every: Dur::us(50),
            dir: dir.clone(),
            keep: 3,
        }),
        None,
    );
    // Killed run: tight budget trips the watchdog mid-flight, well after
    // the first checkpoint (50 µs of sim time is a few hundred events).
    let mut killed = demo_net(Some(10_000));
    killed.run_until_done(CAP);
    let report = killed.watchdog_report().expect("tight budget must trip");
    assert_eq!(report.reason, TripReason::EventBudget);
    let snap = checkpoint::latest_checkpoint().expect("a snapshot survives the kill");
    let img = checkpoint::load_image(&snap).expect("the latest snapshot is valid");
    assert!(img.time < CAP);

    // Resume: fresh scope (the net-index counter restarts), generous
    // budget, image armed — the twin restores mid-flight and finishes.
    checkpoint::swap(checkpoint::current());
    checkpoint::arm_resume(img);
    let mut resumed = demo_net(Some(10_000_000));
    resumed.run_until_done(CAP);
    checkpoint::clear();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(resumed.watchdog_report().is_none());
    assert_eq!(reference.flow_records(), resumed.flow_records());
    assert_eq!(reference.counters(), resumed.counters());
    assert_eq!(reference.now(), resumed.now());
}
