//! Structure-aware seeded fuzzing of every parser that consumes external
//! bytes: the JSON parser, the scenario loader, and the `xpass-snap/v1`
//! decoder/restore pipeline. Plain `cargo test` — no external fuzzer. The
//! committed corpus in `tests/corpus/` provides valid seeds; deterministic
//! xoshiro-seeded mutations (truncations, bit flips, splices, overwrites)
//! derive thousands of hostile inputs from them. The contract under test:
//! every input is either accepted or rejected with a path-carrying error —
//! never a panic, never unbounded work.

use std::path::PathBuf;
use xpass::experiments::scenario;
use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::ids::HostId;
use xpass::net::network::Network;
use xpass::net::topology::Topology;
use xpass::sim::checkpoint;
use xpass::sim::http;
use xpass::sim::json;
use xpass::sim::metrics;
use xpass::sim::rng::Rng;
use xpass::sim::snap::{self, SnapWriter};
use xpass::sim::time::{Dur, SimTime};

fn corpus(sub: &str) -> Vec<(PathBuf, Vec<u8>)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus {}", dir.display());
    files
        .into_iter()
        .map(|p| {
            let data = std::fs::read(&p).unwrap();
            (p, data)
        })
        .collect()
}

/// One deterministic mutation of `data`: truncate, bit-flip, insert, or
/// overwrite a short run. Structure-aware in the sense that every derived
/// input is one small step from a valid seed, so mutations concentrate on
/// the interesting boundaries instead of uniform noise.
fn mutate(data: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut v = data.to_vec();
    match rng.below(4) {
        0 => {
            let n = v.len() as u64;
            v.truncate(if n == 0 { 0 } else { rng.below(n) as usize });
        }
        1 if !v.is_empty() => {
            let i = rng.below(v.len() as u64) as usize;
            v[i] ^= 1 << rng.below(8);
        }
        2 => {
            let i = rng.below(v.len() as u64 + 1) as usize;
            v.insert(i, rng.below(256) as u8);
        }
        _ if !v.is_empty() => {
            let i = rng.below(v.len() as u64) as usize;
            let end = (i + 8).min(v.len());
            for b in &mut v[i..end] {
                *b = rng.below(256) as u8;
            }
        }
        _ => v.push(0),
    }
    v
}

const ROUNDS: usize = 400;

#[test]
fn json_parser_never_panics_on_mutated_corpus() {
    for (path, data) in corpus("json") {
        let src = String::from_utf8(data.clone()).unwrap();
        let parsed = json::parse(&src)
            .unwrap_or_else(|e| panic!("corpus seed {} must parse: {e}", path.display()));
        // The printer must round-trip what the parser accepted.
        let reprinted = json::parse(&parsed.to_string()).expect("reprint parses");
        assert_eq!(
            parsed,
            reprinted,
            "{}: print/parse round trip",
            path.display()
        );

        let mut rng = Rng::new(0xA11CE);
        for _ in 0..ROUNDS {
            let m = mutate(&data, &mut rng);
            // Accept or reject — either is fine; panicking is not.
            if let Ok(j) = json::parse(&String::from_utf8_lossy(&m)) {
                let _ = j.to_string();
            }
        }
    }
}

#[test]
fn scenario_loader_never_panics_on_mutated_corpus() {
    for (path, data) in corpus("scenario") {
        let src = String::from_utf8(data.clone()).unwrap();
        scenario::parse_str(&src)
            .unwrap_or_else(|e| panic!("corpus seed {} must load: {e}", path.display()));

        let mut rng = Rng::new(0xB0B);
        for _ in 0..ROUNDS {
            let m = mutate(&data, &mut rng);
            let _ = scenario::parse_str(&String::from_utf8_lossy(&m));
        }

        // Structure-aware pass: delete each top-level key in turn — the
        // loader must diagnose missing/ill-typed fields, not unwrap them.
        if let Ok(json::Json::Obj(pairs)) = json::parse(&src) {
            for k in pairs.iter().map(|(k, _)| k) {
                let pruned: Vec<_> = pairs.iter().filter(|(n, _)| n != k).cloned().collect();
                let _ = scenario::parse_str(&json::Json::Obj(pruned).to_string());
            }
        }
    }
}

#[test]
fn snapshot_decoder_never_panics_on_mutated_corpus() {
    for (path, data) in corpus("snap") {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let original = snap::decode_file(&data);
        match name.as_str() {
            // Committed hostile seeds: must be *rejected*, with an error
            // that names where and why.
            "bad-version.snap" => {
                let e = original.unwrap_err();
                assert_eq!(e.at, 10, "{e}");
                assert!(e.msg.contains("expected 1, found 99"), "{e}");
            }
            "bad-crc.snap" => {
                let e = original.unwrap_err();
                assert!(e.msg.contains("checksum mismatch"), "{e}");
            }
            "truncated.snap" => {
                assert!(original.unwrap_err().msg.contains("truncated"));
            }
            // Valid envelopes decode; the image-shaped ones parse too.
            "empty-body.snap" => {
                assert!(original.unwrap().is_empty());
            }
            _ => {
                let body = original.unwrap_or_else(|e| panic!("{name} must decode: {e}"));
                let img = checkpoint::parse_image(body)
                    .unwrap_or_else(|e| panic!("{name} must parse as an image: {e}"));
                assert_eq!(img.label.name, "fig01");
                assert_eq!(img.run_call, 1);
            }
        }

        let mut rng = Rng::new(0x5EED);
        for _ in 0..ROUNDS {
            let m = mutate(&data, &mut rng);
            if let Ok(body) = snap::decode_file(&m) {
                // A mutation that survives the CRC is overwhelmingly a
                // no-op; whatever it is, image parsing must stay total.
                let _ = checkpoint::parse_image(body);
            }
        }
    }
}

#[test]
fn http_parser_never_panics_on_mutated_corpus() {
    for (path, data) in corpus("http") {
        let req = http::parse_request(&data)
            .unwrap_or_else(|e| panic!("corpus seed {} must parse: {e}", path.display()));
        assert!(
            req.path.starts_with('/'),
            "{}: parsed path {:?}",
            path.display(),
            req.path
        );
        assert!(
            !req.headers.is_empty(),
            "{}: seed should carry headers",
            path.display()
        );

        let mut rng = Rng::new(0xCAFE);
        for _ in 0..ROUNDS {
            let m = mutate(&data, &mut rng);
            // Accept or reject — either is fine; panicking is not.
            if let Ok(req) = http::parse_request(&m) {
                assert!(req.path.starts_with('/'), "accepted a non-origin target");
                assert!(req.headers.len() <= http::MAX_HEADERS);
            }
        }

        // Bound check: an oversized head must be rejected, not scanned.
        let mut huge = data.clone();
        huge.resize(http::MAX_HEAD_BYTES + 1, b'a');
        assert!(http::parse_request(&huge).is_err());
    }
}

/// Both consumers of externally-produced metrics text: the
/// `xpass-metrics/v1` JSONL series decoder and the Prometheus exposition
/// parse-back. Seed validity is keyed on extension (`.jsonl` vs `.prom`);
/// mutations are fed to *both* decoders regardless, since a scraper can
/// hand either one arbitrary bytes.
#[test]
fn metrics_decoders_never_panic_on_mutated_corpus() {
    for (path, data) in corpus("metrics") {
        let src = String::from_utf8(data.clone()).unwrap();
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl") => {
                let dumps = metrics::decode_jsonl(&src)
                    .unwrap_or_else(|e| panic!("corpus seed {} must decode: {e}", path.display()));
                assert!(!dumps.is_empty(), "{}: empty series", path.display());
                // The encoder must round-trip what the decoder accepted.
                for d in &dumps {
                    let redecoded = metrics::decode_jsonl(&metrics::encode_jsonl(d))
                        .expect("re-encoded series decodes");
                    assert_eq!(redecoded.len(), 1, "{}", path.display());
                    assert_eq!(redecoded[0].keys, d.keys, "{}", path.display());
                    assert_eq!(
                        redecoded[0].ticks.len(),
                        d.ticks.len(),
                        "{}",
                        path.display()
                    );
                }
            }
            Some("prom") => {
                let samples = metrics::parse_exposition(&src)
                    .unwrap_or_else(|e| panic!("corpus seed {} must parse: {e}", path.display()));
                assert!(!samples.is_empty(), "{}: empty exposition", path.display());
            }
            other => panic!("{}: unexpected extension {other:?}", path.display()),
        }

        let mut rng = Rng::new(0xD0_5E_ED);
        for _ in 0..ROUNDS {
            let m = mutate(&data, &mut rng);
            let text = String::from_utf8_lossy(&m);
            let _ = metrics::decode_jsonl(&text);
            let _ = metrics::parse_exposition(&text);
        }
    }
}

/// Deepest layer: a real network snapshot body, mutated, fed straight to
/// `Network::restore_from` — below the CRC envelope that normally shields
/// it. Every outcome must be `Ok` or a path-carrying `Err`; never a panic,
/// hang, or unbounded allocation.
#[test]
fn network_restore_never_panics_on_mutated_state() {
    fn build() -> Network {
        let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
        let cfg = NetConfig::expresspass().with_seed(5);
        let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
        for i in 0..2u32 {
            net.add_flow(HostId(i), HostId(2 + i), 500_000, SimTime::ZERO);
        }
        net
    }
    let mut donor = build();
    donor.run_until(SimTime::ZERO + Dur::us(200));
    let mut w = SnapWriter::new();
    donor.snapshot_into(&mut w);
    let body = w.into_body();

    // Sanity: the unmutated body restores into a twin.
    build().restore_from(&body).expect("clean body restores");

    let mut rng = Rng::new(0xF00D);
    for round in 0..ROUNDS {
        let m = mutate(&body, &mut rng);
        let mut twin = build();
        if let Err(e) = twin.restore_from(&m) {
            assert!(!e.path.is_empty(), "round {round}: error must carry a path");
        }
    }
}
