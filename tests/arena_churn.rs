//! Arena-reuse churn tests: many short flows arriving, completing, and
//! being retired must recycle slots through the free list, with handle
//! generations invalidating every stale timer minted before a slot was
//! reused — a timer armed by a retired flow's endpoint must never be
//! dispatched to the slot's next occupant.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;
use xpass::net::config::{HostDelayModel, NetConfig};
use xpass::net::endpoint::{Ctx, Endpoint};
use xpass::net::ids::{FlowId, HostId, Side};
use xpass::net::network::Network;
use xpass::net::packet::{Packet, PktKind};
use xpass::net::topology::Topology;
use xpass::net::FlowHandle;
use xpass::sim::time::{Dur, SimTime};

const G10: u64 = 10_000_000_000;

/// A minimal one-shot protocol. The sender ships the whole flow as a
/// single data packet at start and arms a long timer tagged with this
/// endpoint's unique id; the receiver delivers the payload. Every timer
/// delivery is logged as `(endpoint id, kind)` so a stale timer reaching
/// a successor endpoint is directly observable.
struct OneShot {
    id: u8,
    side: Side,
    timer_log: Rc<RefCell<Vec<(u8, u8)>>>,
}

impl Endpoint for OneShot {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.side == Side::Sender {
            let size = ctx.info().size_bytes;
            let mut p = ctx.make_pkt(PktKind::Data, size as u32 + 78);
            p.payload = size as u32;
            ctx.send(p);
            // Long timer, deliberately outliving the flow: it fires well
            // after the flow completed and was retired.
            ctx.arm_timer(self.id, Dur::ms(2));
        }
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        if self.side == Side::Receiver && pkt.kind == PktKind::Data {
            ctx.deliver(pkt.payload as u64);
        }
    }

    fn on_timer(&mut self, kind: u8, _gen: u64, _ctx: &mut Ctx<'_>) {
        self.timer_log.borrow_mut().push((self.id, kind));
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn snap_state(&self, _w: &mut xpass_sim::SnapWriter) {}

    fn restore_state(
        &mut self,
        _r: &mut xpass_sim::SnapReader,
    ) -> Result<(), xpass_sim::SnapError> {
        Ok(())
    }
}

/// Network whose factory records every [`FlowHandle`] it is given and
/// numbers endpoints in creation order.
fn churn_net(
    timer_log: Rc<RefCell<Vec<(u8, u8)>>>,
    handles: Rc<RefCell<Vec<FlowHandle>>>,
) -> Network {
    let topo = Topology::dumbbell(1, G10, Dur::us(1));
    let mut cfg = NetConfig::default().with_seed(7);
    cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let next_id = Rc::new(RefCell::new(0u8));
    Network::new(
        topo,
        cfg,
        Box::new(move |side, _info, h| {
            if side == Side::Sender {
                handles.borrow_mut().push(h);
            }
            let id = *next_id.borrow();
            *next_id.borrow_mut() += 1;
            Box::new(OneShot {
                id,
                side,
                timer_log: timer_log.clone(),
            })
        }),
    )
}

#[test]
fn retired_slot_is_reused_with_a_bumped_generation() {
    let timer_log = Rc::new(RefCell::new(Vec::new()));
    let handles = Rc::new(RefCell::new(Vec::new()));
    let mut net = churn_net(timer_log.clone(), handles.clone());

    let f0 = net.add_flow(HostId(0), HostId(1), 1000, SimTime::ZERO);
    net.run_until(SimTime::ZERO + Dur::ms(1));
    assert!(net.flow_done(f0));
    let record = net.retire_flow(f0);
    assert_eq!(record.id, f0);
    assert!(record.fct.is_some());
    assert_eq!(
        net.arena().slot_count(),
        1,
        "slot must be recycled, not kept"
    );
    assert_eq!(net.arena().live_count(), 0);
    assert_eq!(net.completed_count(), 0, "retirement hands the stat back");

    let f1 = net.add_flow(HostId(0), HostId(1), 1000, net.now() + Dur::us(10));
    assert_eq!(f1, f0, "free list must hand the retired slot back");
    assert_eq!(net.arena().slot_count(), 1);
    let hs = handles.borrow();
    assert_eq!(hs.len(), 2);
    assert_eq!(hs[0].idx, hs[1].idx);
    assert_eq!(
        hs[1].gen,
        hs[0].gen + 1,
        "reuse must bump the slot generation"
    );
}

#[test]
fn stale_timers_never_reach_the_slots_next_occupant() {
    let timer_log = Rc::new(RefCell::new(Vec::new()));
    let handles = Rc::new(RefCell::new(Vec::new()));
    let mut net = churn_net(timer_log.clone(), handles.clone());

    // Flow 0: sender id 0 arms a kind-0 timer for t=2 ms, then the flow
    // completes within microseconds and is retired.
    let f0 = net.add_flow(HostId(0), HostId(1), 1000, SimTime::ZERO);
    net.run_until(SimTime::ZERO + Dur::ms(1));
    assert!(net.flow_done(f0));
    net.retire_flow(f0);

    // Flow 1 reuses slot 0; its sender (id 2) arms a kind-2 timer. Run
    // far past both expiries.
    net.add_flow(HostId(0), HostId(1), 1000, net.now() + Dur::us(10));
    net.run_until(SimTime::ZERO + Dur::ms(10));

    let log = timer_log.borrow();
    // The successor's own timer arrived …
    assert!(
        log.contains(&(2, 2)),
        "successor's own timer must fire: {log:?}"
    );
    // … but flow 0's stale timer was filtered by the generation check:
    // nobody ever observed kind 0 (its endpoint was dropped at retirement,
    // and the successor must not receive it either).
    assert!(
        log.iter().all(|&(_, kind)| kind != 0),
        "stale timer leaked to the reused slot: {log:?}"
    );
}

#[test]
fn sustained_churn_recycles_one_slot_and_counts_stay_exact() {
    let timer_log = Rc::new(RefCell::new(Vec::new()));
    let handles = Rc::new(RefCell::new(Vec::new()));
    let mut net = churn_net(timer_log.clone(), handles.clone());

    for i in 0..50u32 {
        let start = if i == 0 {
            SimTime::ZERO
        } else {
            net.now() + Dur::us(10)
        };
        let f = net.add_flow(HostId(0), HostId(1), 1000, start);
        assert_eq!(f, FlowId(0), "round {i}: dense reuse of slot 0");
        net.run_until(start + Dur::ms(1));
        assert!(net.flow_done(f), "round {i}: flow must complete");
        net.retire_flow(f);
        assert_eq!(net.arena().slot_count(), 1, "round {i}");
        assert_eq!(net.arena().live_count(), 0, "round {i}");
    }
    let hs = handles.borrow();
    assert_eq!(hs.len(), 50);
    for (i, pair) in hs.windows(2).enumerate() {
        assert_eq!(
            pair[1].gen,
            pair[0].gen + 1,
            "round {i}: generation must advance monotonically"
        );
    }
    // Every round armed one long timer that went stale at retirement; all
    // 50 fire as events, none may be delivered as a stale kind. Each
    // sender observes only its own kind (2·round).
    for &(id, kind) in timer_log.borrow().iter() {
        assert_eq!(id, kind, "timer delivered across a slot reuse");
    }
}
