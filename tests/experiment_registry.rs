//! Registry-driven pipeline test: every registered experiment runs through
//! the real CLI with `--json`, and every record parses back with the
//! hand-rolled JSON reader and carries the `xpass-repro/v1` envelope. Also
//! pins the scenario layer: the committed parking-lot scenario reproduces
//! `fig10` byte-for-byte, and the fat-tree fault scenario expresses a
//! configuration no built-in experiment covers.

use std::path::Path;
use std::process::Command;
use xpass::experiments::registry;
use xpass::sim::json::{parse, Json};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
}

fn read_record(dir: &Path, name: &str) -> Json {
    let path = dir.join(format!("{name}.json"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{name}.json does not parse: {e}"))
}

#[test]
fn every_registered_experiment_emits_a_valid_json_record() {
    let dir = std::env::temp_dir().join(format!("xpass-registry-{}", std::process::id()));
    let out = bin()
        .args(["all", "--seed", "5", "--jobs", "8", "--json"])
        .arg(&dir)
        .output()
        .expect("run xpass-repro all");
    assert!(out.status.success(), "xpass-repro all failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);

    let names: Vec<String> = registry::all()
        .iter()
        .map(|e| e.name().to_string())
        .collect();
    assert!(!names.is_empty());
    for name in &names {
        // Banner printed for every experiment, in canonical order.
        assert!(
            stdout.contains(&format!("==== {name} — ")),
            "no banner for {name}"
        );
        let record = read_record(&dir, name);
        assert_eq!(
            record.get("schema").and_then(Json::as_str),
            Some("xpass-repro/v1"),
            "{name}: bad schema"
        );
        assert_eq!(
            record.get("name").and_then(Json::as_str),
            Some(name.as_str()),
            "{name}: bad name field"
        );
        assert_eq!(
            record.get("paper_scale").and_then(Json::as_bool),
            Some(false),
            "{name}: bad paper_scale"
        );
        assert_eq!(
            record.get("seed").and_then(Json::as_u64),
            Some(5),
            "{name}: seed not recorded"
        );
        // Every payload is a structured object with at least one key — the
        // typed rows of the figure, never a text blob.
        match record.get("payload") {
            Some(Json::Obj(pairs)) => {
                assert!(!pairs.is_empty(), "{name}: empty payload");
                assert!(
                    pairs.iter().all(|(k, _)| k != "text"),
                    "{name}: payload fell back to a text blob"
                );
            }
            other => panic!("{name}: payload is not an object: {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parking_lot_scenario_reproduces_fig10_byte_for_byte() {
    let scenario = bin()
        .args(["run", "examples/scenarios/parking_lot.json"])
        .output()
        .expect("run scenario");
    assert!(
        scenario.status.success(),
        "scenario run failed: {scenario:?}"
    );
    let fig10 = bin().arg("fig10").output().expect("run fig10");
    assert!(fig10.status.success());
    assert_eq!(
        scenario.stdout,
        fig10.stdout,
        "scenario table differs from fig10:\n--- scenario ---\n{}\n--- fig10 ---\n{}",
        String::from_utf8_lossy(&scenario.stdout),
        String::from_utf8_lossy(&fig10.stdout)
    );
}

#[test]
fn fat_tree_fault_scenario_runs_end_to_end() {
    let dir = std::env::temp_dir().join(format!("xpass-scenario-{}", std::process::id()));
    let out = bin()
        .args([
            "run",
            "examples/scenarios/fat_tree_shuffle_faults.json",
            "--json",
        ])
        .arg(&dir)
        .output()
        .expect("run scenario");
    assert!(out.status.success(), "scenario run failed: {out:?}");
    let record = read_record(&dir, "fat_tree_shuffle_faults");
    assert_eq!(
        record.get("schema").and_then(Json::as_str),
        Some("xpass-repro/v1")
    );
    let series = record
        .get("payload")
        .and_then(|p| p.get("series"))
        .and_then(Json::as_array)
        .expect("payload.series");
    assert_eq!(series.len(), 2);
    assert_eq!(
        series[1].get("scheme").and_then(Json::as_str),
        Some("DCTCP")
    );
    for s in series {
        // All shuffle flows finish despite the mid-run core cable failure…
        assert_eq!(s.get("unfinished").and_then(Json::as_u64), Some(0));
        let counters = s.get("counters").expect("counters");
        // …and the fault plan demonstrably fired: 2 cable events × 2
        // directed links, with real packet loss attributed to them.
        assert_eq!(
            counters.get("faults_injected").and_then(Json::as_u64),
            Some(4)
        );
        assert!(
            counters
                .get("pkts_lost_to_faults")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_rejects_unknown_experiment_and_bad_scenarios() {
    let out = bin().arg("fig99").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment 'fig99'"), "{err}");
    assert!(
        err.contains("fig10"),
        "usage should list experiments: {err}"
    );

    let out = bin()
        .args(["run", "/nonexistent/scenario.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read scenario file"), "{err}");

    let bad = std::env::temp_dir().join(format!("xpass-bad-{}.json", std::process::id()));
    std::fs::write(&bad, "{\"schema\": \"nope\"}").unwrap();
    let out = bin().arg("run").arg(&bad).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unsupported schema"), "{err}");
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn list_flag_names_every_experiment() {
    let out = bin().arg("--list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for e in registry::all() {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(e.name()))
            .unwrap_or_else(|| panic!("--list missing {}", e.name()));
        assert!(line.contains(e.describe()), "bad --list line: {line}");
    }
}
