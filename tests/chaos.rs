//! Chaos-engineering integration tests: the `chaos_sweep` report is
//! byte-identical across event-scheduler implementations and job counts
//! (through the real CLI), the sweep holds the paper's invariants over all
//! 64 generated schedules, and the simulation watchdog demonstrably aborts
//! a deliberately livelocked network instead of hanging.

use std::any::Any;
use std::path::Path;
use std::process::Command;
use xpass::net::config::NetConfig;
use xpass::net::endpoint::{Ctx, Endpoint, EndpointFactory};
use xpass::net::ids::{HostId, Side};
use xpass::net::network::Network;
use xpass::net::packet::Packet;
use xpass::net::topology::Topology;
use xpass::sim::json::{parse, Json};
use xpass::sim::time::{Dur, SimTime};
use xpass::sim::watchdog::{TripReason, WatchdogSpec};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xpass-repro"))
}

fn read_record(dir: &Path) -> (String, Json) {
    let path = dir.join("chaos_sweep.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let json = parse(&text).unwrap_or_else(|e| panic!("chaos_sweep.json does not parse: {e}"));
    (text, json)
}

/// One CLI sweep run; returns (stdout bytes, record bytes, parsed record).
fn sweep(scheduler: &str, jobs: &str, tag: &str) -> (Vec<u8>, String, Json) {
    let dir = std::env::temp_dir().join(format!("xpass-chaos-{tag}-{}", std::process::id()));
    let out = bin()
        .args([
            "chaos_sweep",
            "--scheduler",
            scheduler,
            "--jobs",
            jobs,
            "--json",
        ])
        .arg(&dir)
        .output()
        .expect("run chaos_sweep");
    assert!(out.status.success(), "chaos_sweep failed: {out:?}");
    let (text, json) = read_record(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    (out.stdout, text, json)
}

#[test]
fn sweep_report_is_scheduler_and_jobs_invariant() {
    // Crossing both dimensions at once: heap/1 worker vs calendar/4
    // workers must agree byte for byte on stdout AND the JSON record.
    let (stdout_a, rec_a, json_a) = sweep("heap", "1", "h1");
    let (stdout_b, rec_b, json_b) = sweep("calendar", "4", "c4");
    assert_eq!(
        stdout_a,
        stdout_b,
        "stdout diverged:\n--- heap/1 ---\n{}\n--- calendar/4 ---\n{}",
        String::from_utf8_lossy(&stdout_a),
        String::from_utf8_lossy(&stdout_b)
    );
    assert_eq!(rec_a, rec_b, "JSON records diverged across scheduler/jobs");

    // The acceptance bar: >= 64 generated schedules, zero conservation or
    // liveness violations, and the faults demonstrably fired.
    let payload = json_a.get("payload").expect("payload");
    assert!(payload.get("n_seeds").unwrap().as_u64().unwrap() >= 64);
    assert_eq!(payload.get("violations").unwrap().as_u64(), Some(0));
    assert_eq!(payload.get("ok").unwrap().as_bool(), Some(true));
    assert!(payload.get("total_faults").unwrap().as_u64().unwrap() > 0);
    let seeds = payload.get("seeds").unwrap().as_array().unwrap();
    assert!(seeds.len() >= 64);
    for s in seeds {
        assert_eq!(s.get("balanced").unwrap().as_bool(), Some(true));
        assert_eq!(s.get("unfinished").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("watchdog").unwrap(), &Json::Null);
    }
    drop(json_b);
}

/// An endpoint that re-arms a zero-delay timer forever: simulation time
/// can never advance past the first firing — a genuine livelock.
struct Spinner;

impl Endpoint for Spinner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.arm_timer(0, Dur::ZERO);
    }
    fn on_packet(&mut self, _pkt: &Packet, _ctx: &mut Ctx<'_>) {}
    fn on_timer(&mut self, _kind: u8, _gen: u64, ctx: &mut Ctx<'_>) {
        ctx.arm_timer(0, Dur::ZERO);
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn snap_state(&self, _w: &mut xpass_sim::SnapWriter) {}
    fn restore_state(
        &mut self,
        _r: &mut xpass_sim::SnapReader,
    ) -> Result<(), xpass_sim::SnapError> {
        Ok(())
    }
}

fn spinner_factory() -> EndpointFactory {
    Box::new(|_side: Side, _info, _h| Box::new(Spinner))
}

#[test]
fn watchdog_aborts_a_livelocked_network() {
    let topo = Topology::dumbbell(1, 10_000_000_000, Dur::us(1));
    let cfg = NetConfig::expresspass().with_seed(1);
    let mut net = Network::new(topo, cfg, spinner_factory());
    net.install_watchdog(WatchdogSpec {
        max_events: None,
        max_wall: None,
        max_events_per_instant: Some(10_000),
    });
    net.add_flow(HostId(0), HostId(1), 1_000_000, SimTime::ZERO);
    net.set_phase("livelock");
    // Without the watchdog this loops forever at t=0; with it the run
    // aborts after the same-instant budget and reports why.
    net.run_until_done(SimTime::ZERO + Dur::secs(1));
    let report = net.watchdog_report().expect("watchdog must trip");
    assert_eq!(report.reason, TripReason::TimeStuck);
    assert_eq!(report.at, SimTime::ZERO, "time advanced during a livelock?");
    assert_eq!(report.phase, "livelock");
    assert_eq!(report.hottest_event, "timer");
    // The diagnostic JSON carries no wall-clock fields (determinism).
    let j = report.to_json().to_string();
    assert!(j.contains("\"reason\":\"time_stuck\""), "{j}");
    assert!(
        !j.contains("wall"),
        "wall-clock leaked into the report: {j}"
    );
}

#[test]
fn watchdog_event_budget_bounds_a_runaway_run() {
    // A healthy network, but with an event budget far below what the run
    // needs: the watchdog must stop it and report the budget trip.
    let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
    let cfg = NetConfig::expresspass().with_seed(3);
    let mut net = Network::new(
        topo,
        cfg,
        xpass::expresspass::xpass_factory(xpass::expresspass::XPassConfig::aggressive()),
    );
    net.install_watchdog(WatchdogSpec {
        max_events: Some(5_000),
        max_wall: None,
        max_events_per_instant: None,
    });
    for i in 0..2u32 {
        net.add_flow(HostId(i), HostId(2 + i), 50_000_000, SimTime::ZERO);
    }
    net.run_until_done(SimTime::ZERO + Dur::secs(10));
    let report = net.watchdog_report().expect("budget must trip");
    assert_eq!(report.reason, TripReason::EventBudget);
    assert!(report.events_observed >= 5_000);
    assert!(report.queue_len > 0, "a stopped run leaves events queued");
}
