//! Fault-injection integration tests: deterministic replay, the
//! zero-data-loss invariant under credit-only disturbance, link down/up
//! recovery, host pauses, SYN-blackhole aborts, the zero-cost guarantee of
//! an empty plan, and routing regressions for `Topology::without_cable`.

use xpass::expresspass::{xpass_factory, XPassConfig};
use xpass::net::config::NetConfig;
use xpass::net::faults::FaultPlan;
use xpass::net::ids::{HostId, NodeId, SwitchId};
use xpass::net::network::{Counters, FlowOutcome, FlowRecord, Network};
use xpass::net::topology::Topology;
use xpass::sim::time::{Dur, SimTime};

const G10: u64 = 10_000_000_000;

fn xpass_dumbbell(n_pairs: usize, seed: u64) -> Network {
    let topo = Topology::dumbbell(n_pairs, G10, Dur::us(2));
    let cfg = NetConfig::expresspass().with_seed(seed);
    Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()))
}

/// Both directions of the dumbbell bottleneck cable.
fn bottleneck(net: &Network) -> (xpass::net::ids::DLinkId, xpass::net::ids::DLinkId) {
    let fwd = net
        .topo()
        .dlink_between(NodeId::Switch(SwitchId(0)), NodeId::Switch(SwitchId(1)))
        .unwrap();
    let rev = net
        .topo()
        .dlink_between(NodeId::Switch(SwitchId(1)), NodeId::Switch(SwitchId(0)))
        .unwrap();
    (fwd, rev)
}

/// A busy scenario exercising every fault kind, returning its evidence.
fn eventful_run(seed: u64) -> (Counters, Vec<FlowRecord>) {
    let mut net = xpass_dumbbell(4, seed);
    let (fwd, rev) = bottleneck(&net);
    for i in 0..4u32 {
        net.add_flow(HostId(i), HostId(4 + i), 3_000_000, SimTime::ZERO);
    }
    let t = |d: Dur| SimTime::ZERO + d;
    net.install_fault_plan(
        FaultPlan::new()
            .set_loss(t(Dur::us(500)), fwd, 0.02, 0.3)
            .set_corrupt(t(Dur::us(500)), rev, 0.01)
            .cable_down(t(Dur::ms(2)), fwd, rev)
            .cable_up(t(Dur::ms(3)), fwd, rev)
            .host_pause(t(Dur::ms(4)), HostId(5))
            .host_resume(t(Dur::us(4500)), HostId(5))
            .set_loss(t(Dur::ms(5)), fwd, 0.0, 0.0)
            .set_corrupt(t(Dur::ms(5)), rev, 0.0),
    );
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    net.drain_until(net.now() + Dur::ms(5));
    (net.counters().clone(), net.flow_records())
}

#[test]
fn fault_plan_replay_is_bit_identical() {
    let (c1, r1) = eventful_run(71);
    let (c2, r2) = eventful_run(71);
    assert_eq!(c1, c2, "counters diverged across replays");
    assert_eq!(r1, r2, "flow records diverged across replays");
    // The scenario actually exercised the fault machinery.
    assert_eq!(c1.faults_injected, 10);
    assert!(c1.pkts_lost_to_faults > 0, "no fault losses observed");
    assert!(c1.pkts_corrupted > 0, "no corruption observed");
    // And a different seed gives a genuinely different run.
    let (c3, _) = eventful_run(72);
    assert_ne!(c1, c3, "seed had no effect");
}

#[test]
fn eventful_run_still_completes_every_flow() {
    let (c, recs) = eventful_run(73);
    assert_eq!(c.flows_aborted, 0);
    for r in &recs {
        assert_eq!(r.outcome, Some(FlowOutcome::Completed), "{:?}", r.id);
        assert!(r.fct.is_some());
    }
}

#[test]
fn credit_only_disturbance_never_drops_data() {
    let mut net = xpass_dumbbell(4, 77);
    let (fwd, rev) = bottleneck(&net);
    for i in 0..4u32 {
        net.add_flow(HostId(i), HostId(4 + i), 2_000_000, SimTime::ZERO);
    }
    net.install_fault_plan(
        FaultPlan::new()
            .set_loss(SimTime::ZERO + Dur::ms(1), fwd, 0.0, 0.7)
            .set_loss(SimTime::ZERO + Dur::ms(1), rev, 0.0, 0.7)
            .set_loss(SimTime::ZERO + Dur::ms(6), fwd, 0.0, 0.0)
            .set_loss(SimTime::ZERO + Dur::ms(6), rev, 0.0, 0.0),
    );
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert_eq!(
        net.completed_count(),
        4,
        "flows must survive a credit storm"
    );
    assert_eq!(
        net.total_data_drops(),
        0,
        "credit-only disturbance must not cost data"
    );
    assert!(
        net.counters().pkts_lost_to_faults > 0,
        "storm had no effect"
    );
}

#[test]
fn link_down_and_up_recovers_all_flows() {
    let mut net = xpass_dumbbell(2, 79);
    let (fwd, rev) = bottleneck(&net);
    for i in 0..2u32 {
        net.add_flow(HostId(i), HostId(2 + i), 4_000_000, SimTime::ZERO);
    }
    net.install_fault_plan(
        FaultPlan::new()
            .cable_down(SimTime::ZERO + Dur::ms(1), fwd, rev)
            .cable_up(SimTime::ZERO + Dur::ms(3), fwd, rev),
    );
    let done = net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert_eq!(net.completed_count(), 2, "flows must survive link flap");
    // The outage must actually be visible: packets in flight on the wire
    // when the cable died were lost, and completion happens after link-up.
    assert!(net.counters().pkts_lost_to_faults > 0);
    assert!(done > SimTime::ZERO + Dur::ms(3), "done at {done}");
}

#[test]
fn host_pause_defers_completion_until_resume() {
    let mut net = xpass_dumbbell(1, 83);
    let f = net.add_flow(HostId(0), HostId(1), 1_000_000, SimTime::ZERO);
    // Pause the receiver host over the window where the flow would finish
    // (1MB at ~9Gbps ≈ 0.9ms): nothing is delivered while frozen.
    net.install_fault_plan(
        FaultPlan::new()
            .host_pause(SimTime::ZERO + Dur::us(300), HostId(1))
            .host_resume(SimTime::ZERO + Dur::ms(4), HostId(1)),
    );
    let done = net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert!(net.flow_done(f), "flow must complete after resume");
    assert!(
        done >= SimTime::ZERO + Dur::ms(4),
        "completed at {done} while the receiver host was paused"
    );
    assert_eq!(net.delivered_bytes(f), 1_000_000);
}

#[test]
fn paused_peer_is_not_misclassified_as_stalled() {
    let mut net = xpass_dumbbell(1, 93);
    let f = net.add_flow(HostId(0), HostId(1), 4_000_000, SimTime::ZERO);
    // Freeze the receiver mid-transfer for 10 ms — twice the 5 ms stall
    // timeout. The missing progress is injected by the fault layer, not a
    // protocol failure, so the flow must never be classified Stalled.
    net.install_fault_plan(
        FaultPlan::new()
            .host_pause(SimTime::ZERO + Dur::us(300), HostId(1))
            .host_resume(SimTime::ZERO + Dur::ms(10), HostId(1)),
    );
    // Probe mid-pause, well past the stall timeout.
    net.run_until(SimTime::ZERO + Dur::ms(8));
    let rec = &net.flow_records()[0];
    assert_eq!(
        rec.outcome, None,
        "paused peer misclassified as {:?}",
        rec.outcome
    );
    // And the run still finishes cleanly once the pause lifts.
    net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert!(net.flow_done(f));
    assert_eq!(net.flow_records()[0].outcome, Some(FlowOutcome::Completed));
}

#[test]
fn syn_to_a_paused_peer_survives_past_the_retry_budget() {
    let mut net = xpass_dumbbell(1, 95);
    // The receiver is frozen before the flow starts and stays down for
    // 100 ms — far beyond the SYN retry budget (8 attempts, backoff
    // capped at 10 ms ≈ 65 ms). The pause must suspend the attempt
    // counter, not burn it: the flow completes after resume.
    net.install_fault_plan(
        FaultPlan::new()
            .host_pause(SimTime::ZERO, HostId(1))
            .host_resume(SimTime::ZERO + Dur::ms(100), HostId(1)),
    );
    let f = net.add_flow(HostId(0), HostId(1), 1_000_000, SimTime::ZERO + Dur::us(10));
    let done = net.run_until_done(SimTime::ZERO + Dur::secs(2));
    assert!(net.flow_done(f), "flow aborted during a host pause");
    assert_eq!(net.counters().flows_aborted, 0);
    assert!(
        done >= SimTime::ZERO + Dur::ms(100),
        "completed at {done} while the receiver was frozen"
    );
}

#[test]
fn syn_blackhole_aborts_after_bounded_retries() {
    let mut net = xpass_dumbbell(1, 89);
    let uplink = net
        .topo()
        .dlink_between(NodeId::Host(HostId(0)), NodeId::Switch(SwitchId(0)))
        .unwrap();
    // The sender's uplink is dead (flushing) from the start: every SYN is
    // swallowed, no credit ever arrives.
    net.install_fault_plan(FaultPlan::new().link_down_flush(SimTime::ZERO, uplink));
    let f = net.add_flow(HostId(0), HostId(1), 1_000_000, SimTime::ZERO);
    let settled = net.run_until_done(SimTime::ZERO + Dur::secs(30));
    // run_until_done terminates because the abort settles the flow — well
    // before the cap (8 attempts with backoff capped at 10ms ≈ 65ms).
    assert!(
        settled < SimTime::ZERO + Dur::secs(1),
        "settled at {settled}"
    );
    assert!(net.flow_aborted(f));
    assert!(!net.flow_done(f));
    assert_eq!(net.aborted_count(), 1);
    assert_eq!(net.counters().flows_aborted, 1);
    let rec = &net.flow_records()[0];
    assert_eq!(rec.outcome, Some(FlowOutcome::Aborted));
    assert!(rec.fct.is_none());
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    // The zero-cost guarantee, tested end to end: installing an *empty*
    // plan allocates fault state and routes arrivals through the fault
    // filter, yet every counter and flow record must match a run that
    // never touched the fault layer.
    let run = |install: bool| -> (Counters, Vec<FlowRecord>) {
        let mut net = xpass_dumbbell(4, 91);
        if install {
            net.install_fault_plan(FaultPlan::new());
        }
        for i in 0..4u32 {
            net.add_flow(HostId(i), HostId(4 + i), 1_500_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        net.drain_until(net.now() + Dur::ms(5));
        (net.counters().clone(), net.flow_records())
    };
    let (c_plain, r_plain) = run(false);
    let (c_empty, r_empty) = run(true);
    assert_eq!(c_plain, c_empty, "empty plan perturbed the counters");
    assert_eq!(r_plain, r_empty, "empty plan perturbed the flow records");
    assert_eq!(c_empty.faults_injected, 0);
}

// -------------------------------------------------------------------------
// Routing regressions: Topology::without_cable
// -------------------------------------------------------------------------

mod without_cable {
    use super::*;

    #[test]
    fn fat_tree_routes_avoid_the_removed_cable() {
        let topo = Topology::fat_tree(4, G10, 4 * G10, Dur::us(1));
        let a = NodeId::Switch(SwitchId(0)); // ToR 0
        let b = NodeId::Switch(SwitchId(8)); // its first agg
        assert!(topo.dlink_between(a, b).is_some());
        let cut = topo.without_cable(a, b);
        // The cable is gone in both directions …
        assert!(cut.dlink_between(a, b).is_none());
        assert!(cut.dlink_between(b, a).is_none());
        // … no recomputed path uses any link touching the removed pair …
        for s in 0..cut.n_switches {
            for h in 0..cut.n_hosts {
                let choices = cut.route_choices(SwitchId(s as u32), HostId(h as u32));
                assert!(
                    !choices.is_empty(),
                    "switch {s} lost all routes to host {h}"
                );
                for dl in choices {
                    let l = &cut.dlinks[dl.0 as usize];
                    assert!(
                        !((l.from == a && l.to == b) || (l.from == b && l.to == a)),
                        "route via removed cable"
                    );
                }
            }
        }
        // … and every host pair still connects (redundant agg survives).
        for x in 0..cut.n_hosts {
            for y in 0..cut.n_hosts {
                if x != y {
                    let _ = cut.hop_count(HostId(x as u32), HostId(y as u32));
                }
            }
        }
    }

    #[test]
    fn dumbbell_keeps_host_cables_removable_only_when_connected() {
        // Removing a parallel-free bottleneck disconnects the two racks.
        let topo = Topology::dumbbell(2, G10, Dur::us(1));
        let caught = std::panic::catch_unwind(|| {
            topo.without_cable(NodeId::Switch(SwitchId(0)), NodeId::Switch(SwitchId(1)))
        });
        assert!(caught.is_err(), "disconnecting removal must panic");
    }

    #[test]
    fn star_host_cable_removal_panics_as_disconnecting() {
        let topo = Topology::star(4, G10, Dur::us(1));
        let caught = std::panic::catch_unwind(|| {
            topo.without_cable(NodeId::Host(HostId(0)), NodeId::Switch(SwitchId(0)))
        });
        assert!(caught.is_err(), "single-homed host removal must panic");
    }

    #[test]
    fn unknown_cable_rejected() {
        let topo = Topology::star(4, G10, Dur::us(1));
        let caught = std::panic::catch_unwind(|| {
            topo.without_cable(NodeId::Host(HostId(0)), NodeId::Host(HostId(1)))
        });
        assert!(caught.is_err(), "hosts are not directly cabled");
    }
}
