//! Structural tests for the datacenter-scale Clos presets: host, switch,
//! link, and ECMP-fanout counts at the 10k- and 65k-host shapes, plus the
//! flat routing table's invariants. No simulation runs — these pin the
//! graph construction (and its preallocation arithmetic) only.

use xpass::net::ids::{HostId, NodeId, SwitchId};
use xpass::net::topology::Topology;
use xpass::sim::time::Dur;

const G10: u64 = 10_000_000_000;
const G40: u64 = 40_000_000_000;

/// Directed-link count of a Clos: every cable contributes two dlinks.
fn expected_dlinks(hosts: usize, tor_agg_cables: usize, agg_core_cables: usize) -> usize {
    2 * (hosts + tor_agg_cables + agg_core_cables)
}

#[test]
fn three_tier_10k_structure() {
    let topo = Topology::three_tier_10k(G10, G10, G40, Dur::us(1));
    // 16 pods × 16 ToRs × 40 hosts.
    assert_eq!(topo.n_hosts, 10_240);
    // 256 ToRs + 128 aggs + 64 cores.
    assert_eq!(topo.n_switches, 448);
    assert_eq!(topo.n_tors(), 256);
    assert_eq!(topo.tor_switches().len(), 256);
    // Cables: one per host, 16×16×8 ToR–agg, 16×8×8 agg–core.
    assert_eq!(
        topo.dlinks.len(),
        expected_dlinks(10_240, 2_048, 1_024),
        "directed link count"
    );
    // Every host hangs off exactly one ToR; attachment arrays agree.
    for h in 0..topo.n_hosts {
        let up = topo.host_uplink[h];
        let down = topo.host_downlink[h];
        assert_eq!(
            topo.dlinks[up.0 as usize].from,
            NodeId::Host(HostId(h as u32))
        );
        assert_eq!(
            topo.dlinks[down.0 as usize].to,
            NodeId::Host(HostId(h as u32))
        );
        assert_eq!(
            NodeId::Switch(topo.host_tor[h]),
            topo.dlinks[up.0 as usize].to
        );
    }
}

#[test]
fn three_tier_10k_ecmp_fanout() {
    let topo = Topology::three_tier_10k(G10, G10, G40, Dur::us(1));
    // Host 0 sits in pod 0; the last host sits in pod 15.
    let src_tor = topo.host_tor[0];
    let remote = HostId(topo.n_hosts as u32 - 1);
    // Host 1 shares host 0's ToR.
    let local = HostId(1);
    // ToR → remote pod: all 8 pod aggs are candidate next hops.
    assert_eq!(topo.route_choices(src_tor, remote).len(), 8);
    // ToR → same-ToR host: the single downlink.
    assert_eq!(topo.route_choices(src_tor, local).len(), 1);
    // Agg → remote pod: its core group of 64/8 = 8 cores.
    let agg = match topo.dlinks[topo.route_choices(src_tor, remote)[0].0 as usize].to {
        NodeId::Switch(s) => s,
        other => panic!("ToR uplink must reach a switch, got {other:?}"),
    };
    assert_eq!(topo.route_choices(agg, remote).len(), 8);
    // Core → destination pod: exactly one agg (its group peer in that pod).
    let core = match topo.dlinks[topo.route_choices(agg, remote)[0].0 as usize].to {
        NodeId::Switch(s) => s,
        other => panic!("agg uplink must reach a core, got {other:?}"),
    };
    assert_eq!(topo.route_choices(core, remote).len(), 1);
}

#[test]
fn three_tier_65k_structure() {
    let topo = Topology::three_tier_65k(G10, G10, G40, Dur::us(1));
    // 32 pods × 32 ToRs × 64 hosts.
    assert_eq!(topo.n_hosts, 65_536);
    // 1024 ToRs + 512 aggs + 128 cores.
    assert_eq!(topo.n_switches, 1_664);
    assert_eq!(topo.n_tors(), 1_024);
    // Cables: one per host, 32×32×16 ToR–agg, 32×16×8 agg–core.
    assert_eq!(
        topo.dlinks.len(),
        expected_dlinks(65_536, 16_384, 4_096),
        "directed link count"
    );
    // ToR uplink fanout toward a remote pod: all 16 pod aggs.
    let src_tor = topo.host_tor[0];
    let remote = HostId(topo.n_hosts as u32 - 1);
    assert_eq!(topo.route_choices(src_tor, remote).len(), 16);
}

#[test]
fn flat_routes_cover_every_switch_host_pair_at_10k() {
    let topo = Topology::three_tier_10k(G10, G10, G40, Dur::us(1));
    // Spot-check coverage across the id range (the full cross product is
    // 4.6M pairs; a strided sample keeps this test fast while touching
    // every switch tier and pod).
    for s in (0..topo.n_switches).step_by(7) {
        for h in (0..topo.n_hosts).step_by(641) {
            assert!(
                !topo
                    .route_choices(SwitchId(s as u32), HostId(h as u32))
                    .is_empty(),
                "sw{s} has no route to h{h}"
            );
        }
    }
}

#[test]
fn eval_fat_tree_matches_paper_shape() {
    let topo = Topology::eval_fat_tree(G10);
    // §6.3: 8 pods × 4 ToRs × 6 hosts = 192 hosts; 32 ToRs + 16 aggs +
    // 8 cores; 3:1 oversubscription at the ToR (6 hosts over 2 uplinks).
    assert_eq!(topo.n_hosts, 192);
    assert_eq!(topo.n_switches, 56);
    assert_eq!(topo.n_tors(), 32);
    // Cables: one per host, 8×4×2 ToR–agg, 8×2×4 agg–core.
    assert_eq!(topo.dlinks.len(), expected_dlinks(192, 64, 64));
    let tor = topo.host_tor[0];
    let remote = HostId(topo.n_hosts as u32 - 1);
    assert_eq!(topo.route_choices(tor, remote).len(), 2);
}
