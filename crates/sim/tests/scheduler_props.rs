//! Property-based scheduler equivalence: randomized insert/cancel/pop
//! sequences driven through the calendar queue and the reference heap must
//! produce identical observable behavior — pop order (including
//! same-timestamp FIFO ties), peeks, lengths, processed counts, and
//! cancelled-timers-never-fire. Seeded with `xpass_sim::rng` only; no
//! external property-testing dependency.

use xpass_sim::event::{EventQueue, SchedulerKind, TimerHandle};
use xpass_sim::rng::Rng;
use xpass_sim::time::SimTime;

/// Time deltas that exercise every band of the calendar: zero (ties and
/// behind-cursor inserts), sub-bucket, multi-bucket, window-crossing, and
/// multi-window far-future jumps.
fn random_delta(rng: &mut Rng) -> u64 {
    match rng.below(10) {
        0 => 0,
        1..=4 => rng.below(1 << 20),           // within one ~1 µs bucket
        5..=7 => rng.below(1 << 27),           // across buckets
        8 => rng.below(1 << 31),               // crosses the ~1 ms window
        _ => (1 << 30) * (1 + rng.below(100)), // far future, many windows
    }
}

struct Pair {
    heap: EventQueue<u64>,
    cal: EventQueue<u64>,
    /// Pending cancellable handles (same order in both queues).
    pending: Vec<(TimerHandle, TimerHandle, u64)>,
    cancelled_payloads: Vec<u64>,
    /// Lower bound for new event times (sim contract: never in the past).
    now: SimTime,
    next_payload: u64,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            heap: EventQueue::with_scheduler(SchedulerKind::Heap),
            cal: EventQueue::with_scheduler(SchedulerKind::Calendar),
            pending: Vec::new(),
            cancelled_payloads: Vec::new(),
            now: SimTime::ZERO,
            next_payload: 0,
        }
    }

    fn push(&mut self, rng: &mut Rng) {
        let at = SimTime(self.now.0 + random_delta(rng));
        let p = self.next_payload;
        self.next_payload += 1;
        self.heap.push(at, p);
        self.cal.push(at, p);
    }

    fn push_cancellable(&mut self, rng: &mut Rng) {
        let at = SimTime(self.now.0 + random_delta(rng));
        let p = self.next_payload;
        self.next_payload += 1;
        let h = self.heap.push_cancellable(at, p);
        let c = self.cal.push_cancellable(at, p);
        self.pending.push((h, c, p));
    }

    fn cancel_random(&mut self, rng: &mut Rng) {
        if self.pending.is_empty() {
            return;
        }
        let i = rng.index(self.pending.len());
        let (h, c, p) = self.pending.swap_remove(i);
        let a = self.heap.cancel(h);
        let b = self.cal.cancel(c);
        assert_eq!(a, b, "cancel outcome diverged for payload {p}");
        if a {
            self.cancelled_payloads.push(p);
        }
    }

    fn pop_and_check(&mut self) {
        let a = self.heap.pop();
        let b = self.cal.pop();
        assert_eq!(a, b, "pop diverged (heap vs calendar)");
        if let Some((t, p)) = a {
            assert!(t >= self.now, "time went backwards");
            self.now = t;
            assert!(
                !self.cancelled_payloads.contains(&p),
                "cancelled timer {p} fired"
            );
            // Retire the pending record if this was an uncancelled timer.
            self.pending.retain(|&(_, _, pp)| pp != p);
        }
    }

    fn check_metadata(&mut self) {
        assert_eq!(self.heap.len(), self.cal.len(), "len diverged");
        assert_eq!(self.heap.is_empty(), self.cal.is_empty());
        assert_eq!(self.heap.peek_time(), self.cal.peek_time(), "peek diverged");
        assert_eq!(self.heap.events_processed(), self.cal.events_processed());
    }
}

#[test]
fn randomized_push_pop_matches_reference_heap() {
    for trial in 0..30u64 {
        let mut rng = Rng::new(0x5EED_0000 + trial);
        let mut pair = Pair::new();
        for _ in 0..2_000 {
            match rng.below(10) {
                0..=4 => pair.push(&mut rng),
                5 => pair.push_cancellable(&mut rng),
                6 => pair.cancel_random(&mut rng),
                7..=8 => pair.pop_and_check(),
                _ => pair.check_metadata(),
            }
        }
        // Full drain must agree to the last event.
        loop {
            pair.check_metadata();
            let before = pair.heap.len();
            pair.pop_and_check();
            if before == 0 {
                break;
            }
        }
        assert!(pair.heap.is_empty() && pair.cal.is_empty());
    }
}

#[test]
fn massive_same_timestamp_ties_stay_fifo() {
    let mut rng = Rng::new(77);
    let mut heap = EventQueue::with_scheduler(SchedulerKind::Heap);
    let mut cal = EventQueue::with_scheduler(SchedulerKind::Calendar);
    // A handful of distinct timestamps, thousands of events: FIFO within
    // each timestamp is the whole ordering story.
    let times: Vec<SimTime> = (0..5).map(|i| SimTime(i * 3_000_000)).collect();
    for p in 0..5_000u64 {
        let t = times[rng.index(times.len())];
        heap.push(t, p);
        cal.push(t, p);
    }
    let mut last: Option<(SimTime, u64)> = None;
    loop {
        let (a, b) = (heap.pop(), cal.pop());
        assert_eq!(a, b);
        let Some((t, p)) = a else { break };
        if let Some((lt, lp)) = last {
            assert!(t > lt || (t == lt && p > lp), "FIFO tie order violated");
        }
        last = Some((t, p));
    }
}

#[test]
fn cancel_then_fire_never() {
    // Directed version of the property: cancel every other timer, across
    // bands, then verify exactly the survivors fire, in order.
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let mut q = EventQueue::with_scheduler(kind);
        let mut handles = Vec::new();
        for p in 0..1_000u64 {
            let at = SimTime(p * 7_000_000_000); // spans many windows
            handles.push((q.push_cancellable(at, p), p));
        }
        for &(h, p) in &handles {
            if p % 2 == 0 {
                assert!(q.cancel(h));
            }
        }
        let mut fired = Vec::new();
        while let Some((_, p)) = q.pop() {
            fired.push(p);
        }
        let expect: Vec<u64> = (0..1_000).filter(|p| p % 2 == 1).collect();
        assert_eq!(fired, expect, "scheduler {:?}", kind);
        assert_eq!(q.events_processed(), 500);
    }
}
