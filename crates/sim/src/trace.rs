//! Structured event tracing: a typed event stream with pluggable sinks.
//!
//! The simulator can narrate everything it does — packet queueing, ECN
//! marks, credit accounting, feedback-loop updates, flow lifecycle,
//! invariant violations — as typed [`TraceEvent`]s delivered to a
//! [`TraceSink`]. Tracing follows the same zero-cost-when-disabled contract
//! as fault injection: the network holds `Option<Box<dyn TraceSink>>`, every
//! emission site is gated on `is_some()`, and tracing never touches the RNG
//! or the event queue, so a run with no sink installed is byte-identical to
//! a build without the feature.
//!
//! Identifier fields are raw integers (`u32` flow/link ids) rather than the
//! network crate's newtypes, because this crate sits below `xpass-net` in
//! the dependency graph. `u32::MAX` marks "no flow" (e.g. a queue-level
//! event not attributable to one flow).

use crate::json::Json;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::io::Write;

/// Flow-id sentinel for events not attributable to a single flow.
pub const NO_FLOW: u32 = u32::MAX;

/// Traffic class of a traced packet (mirrors `xpass-net`'s `PktKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClass {
    /// Data segment.
    Data,
    /// Acknowledgement / control echo.
    Ack,
    /// ExpressPass credit.
    Credit,
    /// Connection-control packet (SYN / CREDIT_STOP / ...).
    Ctrl,
}

impl TraceClass {
    /// Short lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            TraceClass::Data => "data",
            TraceClass::Ack => "ack",
            TraceClass::Credit => "credit",
            TraceClass::Ctrl => "ctrl",
        }
    }
}

/// One structured simulator event.
///
/// `at` is always the simulation time of the event. Sizes are wire bytes;
/// rates are credits/sec or bits/sec as noted per variant.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A packet was accepted into a queue on directed link `dlink`.
    PktEnqueue {
        /// Event time.
        at: SimTime,
        /// Directed link index of the queue.
        dlink: u32,
        /// Packet class.
        class: TraceClass,
        /// Owning flow (or [`NO_FLOW`]).
        flow: u32,
        /// Wire size in bytes.
        bytes: u32,
        /// Queue occupancy after the enqueue: bytes for data-class queues,
        /// resident credit *packets* for the credit class (credit queues are
        /// sized and policed in packets, §3.1).
        qlen_bytes: u64,
    },
    /// A packet left a queue and began transmission.
    PktDequeue {
        /// Event time.
        at: SimTime,
        /// Directed link index of the queue.
        dlink: u32,
        /// Packet class.
        class: TraceClass,
        /// Owning flow (or [`NO_FLOW`]).
        flow: u32,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// A packet was dropped at a queue (drop-tail overflow or credit-queue
    /// policy drop).
    PktDrop {
        /// Event time.
        at: SimTime,
        /// Directed link index of the queue.
        dlink: u32,
        /// Packet class.
        class: TraceClass,
        /// Owning flow (or [`NO_FLOW`]).
        flow: u32,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// A data packet was ECN-marked on enqueue.
    EcnMark {
        /// Event time.
        at: SimTime,
        /// Directed link index of the queue.
        dlink: u32,
        /// Owning flow (or [`NO_FLOW`]).
        flow: u32,
        /// Queue occupancy in bytes that triggered the mark.
        qlen_bytes: u64,
    },
    /// A receiver emitted a credit packet.
    CreditSent {
        /// Event time.
        at: SimTime,
        /// Owning flow.
        flow: u32,
        /// Credit sequence number.
        seq: u64,
    },
    /// A credit reached the sender but triggered no data (paper §6.3).
    CreditWasted {
        /// Event time.
        at: SimTime,
        /// Owning flow.
        flow: u32,
    },
    /// The credit feedback loop updated (Algorithm 1).
    FeedbackUpdate {
        /// Event time.
        at: SimTime,
        /// Owning flow.
        flow: u32,
        /// Observed credit-loss ratio for the period.
        loss: f64,
        /// Aggressiveness factor `w` after the update.
        w: f64,
        /// Credit rate after the update, credits/sec.
        rate_cps: f64,
    },
    /// A flow started.
    FlowStarted {
        /// Event time.
        at: SimTime,
        /// Flow id.
        flow: u32,
        /// Application bytes to transfer.
        size_bytes: u64,
    },
    /// A flow delivered all its bytes.
    FlowCompleted {
        /// Event time.
        at: SimTime,
        /// Flow id.
        flow: u32,
        /// Flow completion time in picoseconds.
        fct_ps: u64,
    },
    /// A flow's forward-progress stall flag changed.
    FlowStalled {
        /// Event time.
        at: SimTime,
        /// Flow id.
        flow: u32,
        /// New stall state.
        stalled: bool,
    },
    /// A flow gave up (e.g. connection retries exhausted).
    FlowAborted {
        /// Event time.
        at: SimTime,
        /// Flow id.
        flow: u32,
    },
    /// An injected fault fired.
    FaultApplied {
        /// Event time.
        at: SimTime,
        /// Debug rendering of the fault kind.
        desc: String,
    },
    /// A runtime invariant monitor detected a violation.
    InvariantViolation {
        /// Event time.
        at: SimTime,
        /// Name of the violated invariant (`"data_queue_bound"` /
        /// `"zero_data_loss"`).
        invariant: &'static str,
        /// Directed link index where the violation was observed.
        dlink: u32,
        /// Observed value (queue bytes, or dropped-packet size).
        observed: u64,
        /// The bound that was exceeded (0 for zero-loss).
        bound: u64,
    },
}

impl TraceEvent {
    /// Stable machine-readable event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::PktEnqueue { .. } => "pkt_enqueue",
            TraceEvent::PktDequeue { .. } => "pkt_dequeue",
            TraceEvent::PktDrop { .. } => "pkt_drop",
            TraceEvent::EcnMark { .. } => "ecn_mark",
            TraceEvent::CreditSent { .. } => "credit_sent",
            TraceEvent::CreditWasted { .. } => "credit_wasted",
            TraceEvent::FeedbackUpdate { .. } => "feedback_update",
            TraceEvent::FlowStarted { .. } => "flow_started",
            TraceEvent::FlowCompleted { .. } => "flow_completed",
            TraceEvent::FlowStalled { .. } => "flow_stalled",
            TraceEvent::FlowAborted { .. } => "flow_aborted",
            TraceEvent::FaultApplied { .. } => "fault_applied",
            TraceEvent::InvariantViolation { .. } => "invariant_violation",
        }
    }

    /// Simulation time of the event.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::PktEnqueue { at, .. }
            | TraceEvent::PktDequeue { at, .. }
            | TraceEvent::PktDrop { at, .. }
            | TraceEvent::EcnMark { at, .. }
            | TraceEvent::CreditSent { at, .. }
            | TraceEvent::CreditWasted { at, .. }
            | TraceEvent::FeedbackUpdate { at, .. }
            | TraceEvent::FlowStarted { at, .. }
            | TraceEvent::FlowCompleted { at, .. }
            | TraceEvent::FlowStalled { at, .. }
            | TraceEvent::FlowAborted { at, .. }
            | TraceEvent::FaultApplied { at, .. }
            | TraceEvent::InvariantViolation { at, .. } => *at,
        }
    }

    /// Render as a flat JSON object (`ev` = [`name`](TraceEvent::name),
    /// `t_ps` = time, plus the variant's fields).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("ev", Json::str(self.name()))
            .with("t_ps", Json::num_u64(self.at().as_ps()));
        match self {
            TraceEvent::PktEnqueue {
                dlink,
                class,
                flow,
                bytes,
                qlen_bytes,
                ..
            } => {
                j.set("dlink", Json::num_u64(*dlink as u64));
                j.set("class", Json::str(class.name()));
                j.set("flow", flow_json(*flow));
                j.set("bytes", Json::num_u64(*bytes as u64));
                j.set("qlen_bytes", Json::num_u64(*qlen_bytes));
            }
            TraceEvent::PktDequeue {
                dlink,
                class,
                flow,
                bytes,
                ..
            }
            | TraceEvent::PktDrop {
                dlink,
                class,
                flow,
                bytes,
                ..
            } => {
                j.set("dlink", Json::num_u64(*dlink as u64));
                j.set("class", Json::str(class.name()));
                j.set("flow", flow_json(*flow));
                j.set("bytes", Json::num_u64(*bytes as u64));
            }
            TraceEvent::EcnMark {
                dlink,
                flow,
                qlen_bytes,
                ..
            } => {
                j.set("dlink", Json::num_u64(*dlink as u64));
                j.set("flow", flow_json(*flow));
                j.set("qlen_bytes", Json::num_u64(*qlen_bytes));
            }
            TraceEvent::CreditSent { flow, seq, .. } => {
                j.set("flow", flow_json(*flow));
                j.set("seq", Json::num_u64(*seq));
            }
            TraceEvent::CreditWasted { flow, .. } | TraceEvent::FlowAborted { flow, .. } => {
                j.set("flow", flow_json(*flow));
            }
            TraceEvent::FeedbackUpdate {
                flow,
                loss,
                w,
                rate_cps,
                ..
            } => {
                j.set("flow", flow_json(*flow));
                j.set("loss", Json::Num(*loss));
                j.set("w", Json::Num(*w));
                j.set("rate_cps", Json::Num(*rate_cps));
            }
            TraceEvent::FlowStarted {
                flow, size_bytes, ..
            } => {
                j.set("flow", flow_json(*flow));
                j.set("size_bytes", Json::num_u64(*size_bytes));
            }
            TraceEvent::FlowCompleted { flow, fct_ps, .. } => {
                j.set("flow", flow_json(*flow));
                j.set("fct_ps", Json::num_u64(*fct_ps));
            }
            TraceEvent::FlowStalled { flow, stalled, .. } => {
                j.set("flow", flow_json(*flow));
                j.set("stalled", Json::Bool(*stalled));
            }
            TraceEvent::FaultApplied { desc, .. } => {
                j.set("desc", Json::str(desc.clone()));
            }
            TraceEvent::InvariantViolation {
                invariant,
                dlink,
                observed,
                bound,
                ..
            } => {
                j.set("invariant", Json::str(*invariant));
                j.set("dlink", Json::num_u64(*dlink as u64));
                j.set("observed", Json::num_u64(*observed));
                j.set("bound", Json::num_u64(*bound));
            }
        }
        j
    }
}

fn flow_json(flow: u32) -> Json {
    if flow == NO_FLOW {
        Json::Null
    } else {
        Json::num_u64(flow as u64)
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Sinks must not influence the simulation: they observe events and may
/// buffer or write them out, nothing more.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}

    /// Downcasting hook, so a concrete sink (and its buffered events) can
    /// be recovered after the simulator hands back a boxed sink.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// A bounded in-memory sink keeping the most recent events.
///
/// When the buffer is full the oldest event is discarded, so after a long
/// run the ring holds the tail of the event stream — usually the part you
/// want when diagnosing how a run ended.
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    total: u64,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            total: 0,
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events recorded over the sink's lifetime (including discarded).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Drain the buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(ev.clone());
        self.total += 1;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A sink writing one JSON object per line (JSONL) to any `io::Write`.
///
/// Output is buffered; call [`TraceSink::flush`] (the network does this at
/// the end of a run) or drop the sink to push bytes out. Write errors are
/// counted, not propagated — tracing must never abort a simulation.
pub struct JsonlSink {
    out: std::io::BufWriter<Box<dyn Write>>,
    errors: u64,
}

impl JsonlSink {
    /// Wrap an arbitrary writer.
    pub fn new(out: Box<dyn Write>) -> JsonlSink {
        JsonlSink {
            out: std::io::BufWriter::new(out),
            errors: 0,
        }
    }

    /// Create (truncate) `path` and write JSONL to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(f)))
    }

    /// Number of write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.errors
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        let line = ev.to_json().to_string();
        if writeln!(self.out, "{line}").is_err() {
            self.errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.errors += 1;
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::FlowStarted {
                at: SimTime(10),
                flow: 0,
                size_bytes: 1_000_000,
            },
            TraceEvent::CreditSent {
                at: SimTime(20),
                flow: 0,
                seq: 1,
            },
            TraceEvent::PktEnqueue {
                at: SimTime(30),
                dlink: 4,
                class: TraceClass::Data,
                flow: 0,
                bytes: 1538,
                qlen_bytes: 1538,
            },
            TraceEvent::EcnMark {
                at: SimTime(31),
                dlink: 4,
                flow: NO_FLOW,
                qlen_bytes: 99_000,
            },
            TraceEvent::InvariantViolation {
                at: SimTime(40),
                invariant: "data_queue_bound",
                dlink: 4,
                observed: 700_000,
                bound: 577_000,
            },
        ]
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for ev in sample_events() {
            ring.record(&ev);
        }
        assert_eq!(ring.total_recorded(), 5);
        assert_eq!(ring.len(), 3);
        let names: Vec<_> = ring.events().map(|e| e.name()).collect();
        assert_eq!(names, ["pkt_enqueue", "ecn_mark", "invariant_violation"]);
    }

    #[test]
    fn events_render_as_parseable_json() {
        for ev in sample_events() {
            let text = ev.to_json().to_string();
            let back = json::parse(&text).expect("event JSON must parse");
            assert_eq!(back.get("ev").unwrap().as_str(), Some(ev.name()));
            assert_eq!(
                back.get("t_ps").unwrap().as_u64(),
                Some(ev.at().as_ps()),
                "t_ps round-trips"
            );
        }
    }

    #[test]
    fn no_flow_renders_as_null() {
        let ev = TraceEvent::EcnMark {
            at: SimTime(1),
            dlink: 2,
            flow: NO_FLOW,
            qlen_bytes: 10,
        };
        let j = ev.to_json();
        assert_eq!(j.get("flow"), Some(&Json::Null));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        struct Shared(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        {
            let mut sink = JsonlSink::new(Box::new(Shared(shared.clone())));
            for ev in sample_events() {
                sink.record(&ev);
            }
            sink.flush();
            assert_eq!(sink.write_errors(), 0);
        }
        let text = String::from_utf8(shared.borrow().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in lines {
            json::parse(line).expect("each line parses");
        }
    }
}
