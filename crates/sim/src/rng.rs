//! Deterministic pseudo-random number generation and the distributions the
//! workloads need.
//!
//! The engine uses its own xoshiro256++ implementation (seeded through
//! SplitMix64) rather than a thread-local RNG so that a run is a pure function
//! of its seed: every experiment in the paper reproduction can be re-run
//! bit-for-bit.

use crate::time::Dur;

/// xoshiro256++ PRNG, seeded via SplitMix64.
///
/// Fast (sub-ns per draw), passes BigCrush, and trivially portable. This is
/// the only source of randomness anywhere in the simulator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator (for per-flow or per-host
    /// streams that must not perturb each other).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Snapshot support: the raw xoshiro256++ state words.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Snapshot support: rebuild a generator from raw state words
    /// (inverse of [`state`](Self::state); continues the exact stream).
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant at simulation scales.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform duration in `[lo, hi]` inclusive.
    #[inline]
    pub fn range_dur(&mut self, lo: Dur, hi: Dur) -> Dur {
        Dur(self.range_u64(lo.as_ps(), hi.as_ps()))
    }

    /// Exponentially distributed float with the given mean (> 0).
    #[inline]
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Exponentially distributed duration with the given mean.
    #[inline]
    pub fn exp_dur(&mut self, mean: Dur) -> Dur {
        Dur::from_secs_f64(self.exp_f64(mean.as_secs_f64()))
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Symmetric jitter: uniform duration in `[-spread/2, +spread/2]` applied
    /// to `base`, clamped at zero. Used by the credit pacer (§3.1, Fig 6a).
    pub fn jitter(&mut self, base: Dur, spread: Dur) -> Dur {
        if spread.is_zero() {
            return base;
        }
        let half = spread.as_ps() / 2;
        let off = self.range_u64(0, spread.as_ps());
        Dur(base.as_ps().saturating_add(off).saturating_sub(half))
    }
}

impl crate::snap::Snapshot for Rng {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        for word in self.s {
            w.u64(word);
        }
    }
}

impl crate::snap::Restore for Rng {
    fn restore(&mut self, r: &mut crate::snap::SnapReader) -> Result<(), crate::snap::SnapError> {
        for word in &mut self.s {
            *word = r.u64()?;
        }
        Ok(())
    }
}

/// An empirical distribution defined by CDF control points
/// `(value, cumulative_probability)`, sampled by inversion with log-linear
/// interpolation between points.
///
/// This is how the realistic workloads (Table 2) express their flow-size
/// distributions.
#[derive(Clone, Debug)]
pub struct EmpiricalCdf {
    /// (value, cum_prob) points; cum_prob strictly increasing to 1.0.
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Build from control points. Panics unless probabilities are strictly
    /// increasing, end at 1.0, and values are non-decreasing and positive.
    pub fn new(points: Vec<(f64, f64)>) -> EmpiricalCdf {
        assert!(points.len() >= 2, "need at least two CDF points");
        let mut prev_p = 0.0;
        let mut prev_v = 0.0;
        for &(v, p) in &points {
            assert!(v > 0.0, "values must be positive (log interpolation)");
            assert!(v >= prev_v, "values must be non-decreasing");
            assert!(p > prev_p, "probabilities must be strictly increasing");
            assert!(p <= 1.0 + 1e-12);
            prev_p = p;
            prev_v = v;
        }
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "last probability must be 1.0"
        );
        EmpiricalCdf { points }
    }

    /// Sample a value by inverse-transform.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.quantile(rng.f64())
    }

    /// The value at cumulative probability `q ∈ [0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        let pts = &self.points;
        if q <= pts[0].1 {
            // Below the first control point: interpolate from the first value
            // (treat the first point as mass at its value).
            return pts[0].0;
        }
        for w in pts.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if q <= p1 {
                if v1 <= v0 {
                    return v1;
                }
                // Log-linear interpolation in value-space: heavy-tailed flow
                // sizes span six orders of magnitude, so linear-in-log is the
                // natural interpolant.
                let f = (q - p0) / (p1 - p0);
                return (v0.ln() + f * (v1.ln() - v0.ln())).exp();
            }
        }
        pts.last().unwrap().0
    }

    /// Mean of the distribution, estimated by numerical integration of the
    /// quantile function (used for load calibration in the workload crate).
    pub fn mean(&self) -> f64 {
        // 10k-point midpoint rule over q; plenty for load targeting.
        let n = 10_000;
        let mut acc = 0.0;
        for i in 0..n {
            let q = (i as f64 + 0.5) / n as f64;
            acc += self.quantile(q);
        }
        acc / n as f64
    }

    /// Largest value in the support.
    pub fn max_value(&self) -> f64 {
        self.points.last().unwrap().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
        // All residues reachable.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.range_u64(10, 12);
            assert!((10..=12).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 12;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp_f64(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = Rng::new(17);
        let base = Dur::us(10);
        let spread = Dur::us(2);
        for _ in 0..10_000 {
            let j = r.jitter(base, spread);
            assert!(j >= Dur::us(9) && j <= Dur::us(11), "{j}");
        }
        // Zero spread is a no-op.
        assert_eq!(r.jitter(base, Dur::ZERO), base);
    }

    #[test]
    fn jitter_clamps_at_zero() {
        let mut r = Rng::new(19);
        for _ in 0..1000 {
            let j = r.jitter(Dur::ps(1), Dur::us(1));
            let _ = j; // must not panic/underflow
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_independent() {
        let mut parent = Rng::new(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn empirical_cdf_quantiles() {
        let cdf = EmpiricalCdf::new(vec![(100.0, 0.5), (10_000.0, 1.0)]);
        assert_eq!(cdf.quantile(0.25), 100.0);
        assert_eq!(cdf.quantile(0.5), 100.0);
        // Log-linear midpoint of [100, 10000] is 1000.
        assert!((cdf.quantile(0.75) - 1000.0).abs() < 1.0);
        assert!((cdf.quantile(1.0) - 10_000.0).abs() < 1e-6);
        assert_eq!(cdf.max_value(), 10_000.0);
    }

    #[test]
    fn empirical_cdf_sampling_matches_masses() {
        // 30% mass at 10, 70% log-linear between 10 and 1000.
        let cdf = EmpiricalCdf::new(vec![(10.0, 0.3), (1000.0, 1.0)]);
        let mut r = Rng::new(29);
        let n = 100_000;
        let at_ten = (0..n).filter(|_| cdf.sample(&mut r) <= 10.0).count();
        let frac = at_ten as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn empirical_cdf_mean_of_point_mass_pair() {
        // 50% at 100, 50% spread log-linearly 100..10000.
        let cdf = EmpiricalCdf::new(vec![(100.0, 0.5), (10_000.0, 1.0)]);
        let mut r = Rng::new(31);
        let n = 100_000;
        let sample_mean: f64 = (0..n).map(|_| cdf.sample(&mut r)).sum::<f64>() / n as f64;
        let analytic = cdf.mean();
        assert!(
            (sample_mean - analytic).abs() / analytic < 0.02,
            "sample {sample_mean} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn empirical_cdf_rejects_non_increasing_probs() {
        EmpiricalCdf::new(vec![(1.0, 0.5), (2.0, 0.5)]);
    }
}
