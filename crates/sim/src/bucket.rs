//! Token (leaky) bucket used to rate-limit the credit class.
//!
//! The paper configures "maximum bandwidth metering" on Broadcom chipsets
//! with a burst of 2 credit packets (§3.1): at peak credit rate credits are
//! spaced exactly one MTU-time apart, and the 2-credit burst capacity keeps
//! fractional token remainders from being discarded so the average credit
//! rate reaches the configured maximum.
//!
//! Tokens are accounted in **byte-picoseconds** style: we track byte-fractions
//! exactly using integer math — tokens accrue at `rate_bps / 8` bytes per
//! second, i.e. `rate_bps` bits per second, stored as bit-picoseconds to stay
//! integral.

use crate::time::{Dur, SimTime};

/// A token bucket that accrues credit at a fixed bit rate up to a byte cap.
///
/// Internally tracks *bit-picoseconds* (bits × 1e12) so every arithmetic step
/// is exact for integer bit rates.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Fill rate in bits per second.
    rate_bps: u64,
    /// Capacity in bit-ps (bits × 1e12).
    cap_bitps: u128,
    /// Current level in bit-ps.
    level_bitps: u128,
    /// Last accrual timestamp.
    last: SimTime,
}

const BITPS_PER_BIT: u128 = 1_000_000_000_000;

impl TokenBucket {
    /// Create a bucket filling at `rate_bps` with capacity `cap_bytes`,
    /// starting full (a fresh port can send a burst immediately).
    pub fn new(rate_bps: u64, cap_bytes: u64) -> TokenBucket {
        assert!(rate_bps > 0, "token bucket rate must be positive");
        let cap = cap_bytes as u128 * 8 * BITPS_PER_BIT;
        TokenBucket {
            rate_bps,
            cap_bitps: cap,
            level_bitps: cap,
            last: SimTime::ZERO,
        }
    }

    /// Fill rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Accrue tokens up to `now`.
    #[inline]
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt_ps = now.since(self.last).as_ps() as u128;
        self.level_bitps = (self.level_bitps + dt_ps * self.rate_bps as u128).min(self.cap_bitps);
        self.last = now;
    }

    /// Whether `bytes` can be sent right now (after accruing to `now`).
    #[inline]
    pub fn conforms(&mut self, now: SimTime, bytes: u64) -> bool {
        self.advance(now);
        self.level_bitps >= bytes as u128 * 8 * BITPS_PER_BIT
    }

    /// Consume tokens for `bytes`. The level may go slightly negative-free:
    /// callers must check [`conforms`](Self::conforms) first; consuming more
    /// than available saturates at zero (and debug-asserts).
    #[inline]
    pub fn consume(&mut self, now: SimTime, bytes: u64) {
        self.advance(now);
        let need = bytes as u128 * 8 * BITPS_PER_BIT;
        debug_assert!(self.level_bitps >= need, "token bucket overdraw");
        self.level_bitps = self.level_bitps.saturating_sub(need);
    }

    /// Earliest time at which `bytes` worth of tokens will be available.
    /// Returns `now` if already conforming.
    pub fn time_until_conforming(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.advance(now);
        let need = bytes as u128 * 8 * BITPS_PER_BIT;
        if self.level_bitps >= need {
            return now;
        }
        let deficit = need - self.level_bitps;
        let wait_ps = deficit.div_ceil(self.rate_bps as u128) as u64;
        now + Dur::ps(wait_ps)
    }

    /// Current level in whole bytes (for inspection/tests).
    pub fn level_bytes(&self) -> u64 {
        (self.level_bitps / (8 * BITPS_PER_BIT)) as u64
    }

    /// Drain the bucket to empty (used when (re)configuring).
    pub fn drain(&mut self) {
        self.level_bitps = 0;
    }
}

impl crate::snap::Snapshot for TokenBucket {
    // Rate and capacity are configuration (rebuilt by setup); only the
    // fill level and accrual timestamp are dynamic.
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u128(self.level_bitps);
        w.u64(self.last.0);
    }
}

impl crate::snap::Restore for TokenBucket {
    fn restore(&mut self, r: &mut crate::snap::SnapReader) -> Result<(), crate::snap::SnapError> {
        self.level_bitps = r.u128()?;
        self.last = SimTime(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CREDIT: u64 = 84;

    fn bucket_10g() -> TokenBucket {
        // Credit rate on a 10G link: 10G * 84/1622.
        let rate = 10_000_000_000u64 * 84 / 1622;
        TokenBucket::new(rate, 2 * CREDIT)
    }

    #[test]
    fn starts_full() {
        let mut b = bucket_10g();
        assert!(b.conforms(SimTime::ZERO, 2 * CREDIT));
        assert!(!b.conforms(SimTime::ZERO, 2 * CREDIT + 1));
    }

    #[test]
    fn consume_then_refill() {
        let mut b = bucket_10g();
        b.consume(SimTime::ZERO, 2 * CREDIT);
        assert!(!b.conforms(SimTime::ZERO, CREDIT));
        // After one credit-interval the bucket holds one credit again.
        // interval = 84B / rate = 84*8 / (10e9*84/1622) s = 1622*8/10e9 s ≈ 1.2976us
        let t = b.time_until_conforming(SimTime::ZERO, CREDIT);
        let expect_ps = 1_297_600; // 1622 bytes at 10 Gbps
        let got = t.as_ps();
        assert!(
            (got as i64 - expect_ps as i64).abs() <= 1,
            "got {got}, expected ~{expect_ps}"
        );
        assert!(b.conforms(t, CREDIT));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = bucket_10g();
        b.consume(SimTime::ZERO, CREDIT);
        b.advance(SimTime::ZERO + Dur::secs(1));
        assert_eq!(b.level_bytes(), 2 * CREDIT);
    }

    #[test]
    fn time_until_conforming_is_now_when_full() {
        let mut b = bucket_10g();
        assert_eq!(b.time_until_conforming(SimTime(123), CREDIT), SimTime(123));
    }

    #[test]
    fn average_rate_converges_to_configured() {
        // Send credits greedily for a while; average spacing must equal the
        // credit rate (the 2-credit cap must not leak extra bandwidth).
        let mut b = bucket_10g();
        b.drain();
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        let horizon = SimTime::ZERO + Dur::ms(10);
        loop {
            now = b.time_until_conforming(now, CREDIT);
            if now >= horizon {
                break;
            }
            b.consume(now, CREDIT);
            sent += 1;
        }
        let rate_bits = sent as f64 * 84.0 * 8.0 / 0.01;
        let expect = 10e9 * 84.0 / 1622.0;
        assert!(
            (rate_bits - expect).abs() / expect < 0.001,
            "rate {rate_bits} vs {expect}"
        );
    }

    #[test]
    fn advance_is_monotone() {
        let mut b = bucket_10g();
        b.consume(SimTime::ZERO, CREDIT);
        let lvl = b.level_bytes();
        b.advance(SimTime::ZERO); // same time: no change
        assert_eq!(b.level_bytes(), lvl);
    }

    #[test]
    fn drain_empties() {
        let mut b = bucket_10g();
        b.drain();
        assert_eq!(b.level_bytes(), 0);
        assert!(!b.conforms(SimTime::ZERO, 1));
    }
}
