//! Checkpoint runtime: thread-scoped plumbing that connects the engine's
//! snapshot machinery ([`crate::snap`]) to experiment runs.
//!
//! A *run* in this repo is a pure function of its configuration and seed:
//! an experiment's `run()` builds one or more `Network`s deterministically
//! and drives each through one or more `run_until`/`run_until_done` calls.
//! A checkpoint therefore only needs to record **where** in that structure
//! it was taken — (scope path, network index, run-call index, sim time) —
//! plus the network's serialized state. Resuming re-executes the
//! experiment's deterministic setup, replays any run calls *before* the
//! recorded one (byte-identical by determinism), and overlays the saved
//! state at the recorded call, then continues. Output is byte-identical to
//! an uninterrupted run; `tests/snapshot_determinism.rs` is the fence.
//!
//! The *scope path* addresses a run inside nested fan-out: the parallel
//! harness assigns index `i` to each job, so a top-level experiment is
//! scope `[i]` and a chaos-sweep seed run inside it is `[i, k]`. Scope is
//! thread-scoped state (like [`crate::event::set_thread_scheduler`]); the
//! harness captures the parent context before spawning workers and
//! installs the child scope around every job, so snapshot identity never
//! depends on which OS thread ran what.
//!
//! Everything here is **zero-cost when off**: with no context installed
//! (the default), `register_network()` returns `None` and the engine's
//! hot loops skip the checkpoint check entirely.

use crate::snap::{self, SnapError, SnapReader, SnapWriter};
use crate::time::{Dur, SimTime};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Periodic checkpointing configuration (`--checkpoint-every`).
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Sim-time interval between snapshots.
    pub every: Dur,
    /// Directory snapshots are written under (one subdir per scope).
    pub dir: PathBuf,
    /// How many snapshots to keep per network (older ones are pruned).
    pub keep: usize,
}

/// Identifies the run being checkpointed, for the snapshot header and for
/// `--resume` validation. Set per job via [`set_label`].
#[derive(Clone, Debug, Default)]
pub struct RunLabel {
    /// Experiment name (registry name or scenario file).
    pub name: String,
    /// Seed override in effect, if any.
    pub seed: Option<u64>,
    /// Whether `--paper-scale` was in effect.
    pub paper_scale: bool,
}

/// A parsed snapshot file: header metadata plus the opaque network state.
#[derive(Clone, Debug)]
pub struct ResumeImage {
    /// Scope path of the run the snapshot was taken in.
    pub scope: Vec<u64>,
    /// Index of the network within that scope (creation order, 0-based).
    pub net_index: u64,
    /// 1-based index of the `run_until`/`run_until_done` call the snapshot
    /// was taken during.
    pub run_call: u64,
    /// Sim time at the snapshot point.
    pub time: SimTime,
    /// Label of the run (experiment name, seed, paper-scale).
    pub label: RunLabel,
    /// Serialized network state (consumed by `Network::restore_from`).
    pub net_state: Vec<u8>,
}

struct Shared {
    cfg: Option<CheckpointConfig>,
    /// Pending resume image; taken (consumed) by the network it targets.
    resume: Mutex<Option<ResumeImage>>,
    /// Every snapshot written this run: (scope, write order, path).
    registry: Mutex<Vec<(Vec<u64>, u64, PathBuf)>>,
    write_ctr: AtomicU64,
}

/// The thread-scoped checkpoint context: shared runtime plus this job's
/// scope path and label. Cloned into workers by the parallel harness.
#[derive(Clone)]
pub struct Ctx {
    shared: Arc<Shared>,
    scope: Vec<u64>,
    label: RunLabel,
}

struct ThreadState {
    ctx: Ctx,
    /// Networks created so far in this scope (assigns `net_index`).
    nets: u64,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Install the checkpoint runtime on this thread with an empty scope.
/// `cfg` enables periodic snapshot writing; `resume` arms a one-shot
/// restore. Passing both `None` still installs a context (useful only for
/// tests); call [`clear`] to tear down.
pub fn install(cfg: Option<CheckpointConfig>, resume: Option<ResumeImage>) {
    let shared = Arc::new(Shared {
        cfg,
        resume: Mutex::new(resume),
        registry: Mutex::new(Vec::new()),
        write_ctr: AtomicU64::new(0),
    });
    STATE.with(|s| {
        *s.borrow_mut() = Some(ThreadState {
            ctx: Ctx {
                shared,
                scope: Vec::new(),
                label: RunLabel::default(),
            },
            nets: 0,
        });
    });
}

/// Remove this thread's checkpoint context (tests; the CLI just exits).
pub fn clear() {
    STATE.with(|s| *s.borrow_mut() = None);
}

/// True when a checkpoint context is installed on this thread.
pub fn active() -> bool {
    STATE.with(|s| s.borrow().is_some())
}

/// Clone this thread's context (for propagation into workers).
pub fn current() -> Option<Ctx> {
    STATE.with(|s| s.borrow().as_ref().map(|st| st.ctx.clone()))
}

/// Install (or clear, with `None`) a context on this thread, returning the
/// previous one. The parallel harness brackets every job with this.
pub fn swap(ctx: Option<Ctx>) -> Option<Ctx> {
    STATE.with(|s| {
        let prev = s.borrow_mut().take().map(|st| st.ctx);
        *s.borrow_mut() = ctx.map(|c| ThreadState { ctx: c, nets: 0 });
        prev
    })
}

/// Derive the context for job `i` of a fan-out under `parent`.
pub fn child_of(parent: &Ctx, i: u64) -> Ctx {
    let mut c = parent.clone();
    c.scope.push(i);
    c
}

/// Set the run label for the current scope (called at job start, before
/// any network is created).
pub fn set_label(label: RunLabel) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.ctx.label = label;
        }
    });
}

/// Newest snapshot written for the current scope (or any scope nested
/// under it). This is the path the failure summary reports and the one
/// auto-resume loads.
pub fn latest_checkpoint() -> Option<PathBuf> {
    STATE.with(|s| {
        let b = s.borrow();
        let st = b.as_ref()?;
        let reg = st.ctx.shared.registry.lock().unwrap();
        reg.iter()
            .filter(|(scope, _, _)| scope.starts_with(&st.ctx.scope))
            .max_by_key(|(_, order, _)| *order)
            .map(|(_, _, p)| p.clone())
    })
}

/// Arm the shared runtime with a resume image (used by auto-resume after
/// a crash: load the latest checkpoint, arm it, re-run the job).
pub fn arm_resume(image: ResumeImage) {
    STATE.with(|s| {
        if let Some(st) = s.borrow().as_ref() {
            *st.ctx.shared.resume.lock().unwrap() = Some(image);
        }
    });
}

/// Directory name for a scope path (`scope-3`, `scope-3-17`, …).
fn scope_dirname(scope: &[u64]) -> String {
    let mut s = String::from("scope");
    for seg in scope {
        s.push('-');
        s.push_str(&seg.to_string());
    }
    s
}

/// Hook handed to every `Network` created while a context is installed.
/// Carries this network's identity, the write schedule, and (for at most
/// one network per resume) the pending restore payload.
pub struct NetHook {
    every: Option<Dur>,
    next: SimTime,
    /// Writes allowed? False while a pending resume image exists (replay
    /// must not clobber the snapshots it is replaying from).
    enabled: bool,
    pending_resume: Option<ResumeImage>,
    run_calls: u64,
    dir: PathBuf,
    keep: usize,
    file_seq: u64,
    scope: Vec<u64>,
    net_index: u64,
    label: RunLabel,
    shared: Arc<Shared>,
}

/// Called by `Network::new`: assigns the network its index within the
/// current scope and returns its checkpoint hook, or `None` when no
/// context is installed (the common, zero-cost case).
pub fn register_network() -> Option<NetHook> {
    STATE.with(|s| {
        let mut b = s.borrow_mut();
        let st = b.as_mut()?;
        let net_index = st.nets;
        st.nets += 1;
        let ctx = &st.ctx;
        let shared = Arc::clone(&ctx.shared);
        // Take the resume image if it targets exactly this network; its
        // presence (targeting anyone) suppresses writes during replay.
        let mut resume_slot = shared.resume.lock().unwrap();
        let targets_me = resume_slot
            .as_ref()
            .is_some_and(|img| img.scope == ctx.scope && img.net_index == net_index);
        let pending_resume = if targets_me { resume_slot.take() } else { None };
        let replaying = resume_slot.is_some() || pending_resume.is_some();
        drop(resume_slot);

        let every = shared.cfg.as_ref().map(|c| c.every);
        if every.is_none() && pending_resume.is_none() {
            // Nothing to do for this network: not writing, not restoring.
            return None;
        }
        let (dir, keep) = match &shared.cfg {
            Some(c) => (
                c.dir
                    .join(scope_dirname(&ctx.scope))
                    .join(format!("net{net_index}")),
                c.keep.max(1),
            ),
            None => (PathBuf::new(), 1),
        };
        Some(NetHook {
            every,
            next: every.map_or(SimTime::MAX, |e| SimTime::ZERO + e),
            enabled: every.is_some() && !replaying,
            pending_resume,
            run_calls: 0,
            dir,
            keep,
            file_seq: 0,
            scope: ctx.scope.clone(),
            net_index,
            label: ctx.label.clone(),
            shared,
        })
    })
}

impl NetHook {
    /// Called at the start of every `run_until`/`run_until_done` call.
    /// Returns the serialized network state to overlay when this call is
    /// the one the armed resume image recorded.
    pub fn on_run_call(&mut self) -> Option<Vec<u8>> {
        self.run_calls += 1;
        if self
            .pending_resume
            .as_ref()
            .is_some_and(|img| img.run_call == self.run_calls)
        {
            let img = self.pending_resume.take().unwrap();
            self.enabled = self.every.is_some();
            return Some(img.net_state);
        }
        None
    }

    /// Called after a successful restore: schedule the next snapshot one
    /// interval past the restored time.
    pub fn after_restore(&mut self, now: SimTime) {
        if let Some(e) = self.every {
            self.next = now + e;
        }
    }

    /// Cheap per-event check: is a snapshot due at `now`?
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        self.enabled && now >= self.next
    }

    /// Write a snapshot of `net_state` taken at `now`, atomically; prune
    /// old files past `keep`; register the path for the failure summary.
    /// I/O failures are reported to stderr but never abort the run.
    pub fn write(&mut self, now: SimTime, net_state: &[u8]) {
        if let Some(e) = self.every {
            self.next = now + e;
        }
        let mut w = SnapWriter::new();
        w.seq(&self.scope, |w, s| w.u64(*s));
        w.u64(self.net_index);
        w.u64(self.run_calls);
        w.u64(now.0);
        w.str(&self.label.name);
        w.opt(self.label.seed.as_ref(), |w, s| w.u64(*s));
        w.bool(self.label.paper_scale);
        w.bytes(net_state);
        let path = self.dir.join(format!("ck-{:06}.snap", self.file_seq));
        self.file_seq += 1;
        if let Err(e) = snap::write_atomic(&path, &w.into_body()) {
            eprintln!("xpass: checkpoint write failed at {}: {e}", path.display());
            return;
        }
        if self.file_seq > self.keep as u64 {
            let old = self.dir.join(format!(
                "ck-{:06}.snap",
                self.file_seq - 1 - self.keep as u64
            ));
            let _ = std::fs::remove_file(old);
        }
        let order = self.shared.write_ctr.fetch_add(1, Ordering::Relaxed);
        self.shared
            .registry
            .lock()
            .unwrap()
            .push((self.scope.clone(), order, path));
    }
}

/// Parse a snapshot body (already envelope-validated) into a
/// [`ResumeImage`].
pub fn parse_image(body: &[u8]) -> Result<ResumeImage, SnapError> {
    let mut r = SnapReader::new(body, snap::HEADER_LEN);
    r.enter("meta");
    let n = r.seq_len(8)?;
    let scope = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
    let net_index = r.u64()?;
    let run_call = r.u64()?;
    if run_call == 0 {
        return Err(r.err("invalid run-call index: expected ≥ 1, found 0"));
    }
    let time = SimTime(r.u64()?);
    let name = r.str()?;
    let seed = r.opt(|r| r.u64())?;
    let paper_scale = r.bool()?;
    let net_state = r.bytes()?;
    r.leave();
    r.expect_end()?;
    Ok(ResumeImage {
        scope,
        net_index,
        run_call,
        time,
        label: RunLabel {
            name,
            seed,
            paper_scale,
        },
        net_state,
    })
}

/// Load and parse a snapshot file into a [`ResumeImage`].
pub fn load_image(path: &Path) -> Result<ResumeImage, SnapError> {
    let body = snap::load(path)?;
    parse_image(&body)
}

/// Rebase an image's top-level scope segment (the experiment's job index)
/// to `i`. `--resume` runs exactly one experiment, so the image taken at
/// job index 3 of a batch must map onto job 0 of the resume run.
pub fn rebase_scope(image: &mut ResumeImage, i: u64) {
    if let Some(first) = image.scope.first_mut() {
        *first = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(scope: Vec<u64>, net_index: u64, run_call: u64) -> ResumeImage {
        ResumeImage {
            scope,
            net_index,
            run_call,
            time: SimTime(123),
            label: RunLabel {
                name: "t".into(),
                seed: Some(7),
                paper_scale: false,
            },
            net_state: vec![1, 2, 3],
        }
    }

    #[test]
    fn inactive_thread_registers_nothing() {
        clear();
        assert!(!active());
        assert!(register_network().is_none());
    }

    #[test]
    fn image_round_trips_through_file() {
        let dir = std::env::temp_dir().join(format!("xpass-ckpt-test-{}", std::process::id()));
        let path = dir.join("img.snap");
        // Write via a hook so the production writer is what we parse.
        install(
            Some(CheckpointConfig {
                every: Dur::ms(1),
                dir: dir.clone(),
                keep: 2,
            }),
            None,
        );
        set_label(RunLabel {
            name: "fig10".into(),
            seed: Some(9),
            paper_scale: true,
        });
        let mut hook = register_network().expect("hook");
        assert!(hook.on_run_call().is_none());
        hook.write(SimTime(5_000_000), b"netstate");
        let written = latest_checkpoint().expect("registered path");
        let img = load_image(&written).expect("parse back");
        assert_eq!(img.scope, Vec::<u64>::new());
        assert_eq!(img.net_index, 0);
        assert_eq!(img.run_call, 1);
        assert_eq!(img.time, SimTime(5_000_000));
        assert_eq!(img.label.name, "fig10");
        assert_eq!(img.label.seed, Some(9));
        assert!(img.label.paper_scale);
        assert_eq!(img.net_state, b"netstate");
        let _ = path;
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_image_is_consumed_by_matching_network_and_call() {
        install(None, Some(image(vec![], 1, 2)));
        // Network 0: not the target and nothing to write → no hook at all
        // (it replays normally).
        assert!(register_network().is_none());
        // Network 1: the target; restores on its second run call.
        let mut h1 = register_network().expect("target hook");
        assert!(h1.on_run_call().is_none(), "call 1 replays");
        assert_eq!(h1.on_run_call().as_deref(), Some(&[1u8, 2, 3][..]));
        // Network 2, created after consumption: plain (no cfg → None).
        assert!(register_network().is_none());
        clear();
    }

    #[test]
    fn keep_prunes_old_snapshots() {
        let dir = std::env::temp_dir().join(format!("xpass-ckpt-prune-{}", std::process::id()));
        install(
            Some(CheckpointConfig {
                every: Dur::ms(1),
                dir: dir.clone(),
                keep: 2,
            }),
            None,
        );
        let mut hook = register_network().expect("hook");
        hook.on_run_call();
        for i in 0..5u64 {
            hook.write(SimTime(i * 1_000_000), b"s");
        }
        let net_dir = dir.join("scope").join("net0");
        let mut files: Vec<_> = std::fs::read_dir(&net_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        files.sort();
        assert_eq!(files, vec!["ck-000003.snap", "ck-000004.snap"]);
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scope_propagation_and_latest() {
        let dir = std::env::temp_dir().join(format!("xpass-ckpt-scope-{}", std::process::id()));
        install(
            Some(CheckpointConfig {
                every: Dur::ms(1),
                dir: dir.clone(),
                keep: 4,
            }),
            None,
        );
        let root = current().expect("ctx");
        // Simulate job 2, then a nested job 5 inside it.
        let prev = swap(Some(child_of(&root, 2)));
        let inner_parent = current().unwrap();
        let mut outer_hook = register_network().expect("hook");
        outer_hook.on_run_call();
        outer_hook.write(SimTime(1), b"outer");
        swap(Some(child_of(&inner_parent, 5)));
        let mut inner_hook = register_network().expect("hook");
        inner_hook.on_run_call();
        inner_hook.write(SimTime(2), b"inner");
        // Latest under scope [2,5] is the inner write; under [2] too
        // (it was written later).
        let inner_latest = latest_checkpoint().expect("inner latest");
        assert!(inner_latest.to_string_lossy().contains("scope-2-5"));
        swap(Some(child_of(&root, 2)));
        let job_latest = latest_checkpoint().expect("job latest");
        assert_eq!(job_latest, inner_latest);
        let img = load_image(&job_latest).unwrap();
        assert_eq!(img.scope, vec![2, 5]);
        swap(prev);
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_image_is_rejected_with_context() {
        let body = {
            let mut w = SnapWriter::new();
            w.seq(&[0u64], |w, s| w.u64(*s));
            w.into_body() // truncated: missing everything after scope
        };
        let e = parse_image(&body).unwrap_err();
        assert_eq!(e.path, "meta");
        assert!(e.msg.contains("truncated"), "{e}");
    }
}
