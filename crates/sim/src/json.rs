//! A minimal hand-rolled JSON value type with a serializer and parser.
//!
//! The workspace builds offline with zero external crates, so the telemetry
//! layer carries its own JSON support. [`Json`] models objects as ordered
//! key/value vectors — serialization is deterministic (keys appear in
//! insertion order), which keeps machine-readable experiment records stable
//! across identical runs.
//!
//! Numbers are stored as `f64`. Every counter in the simulator fits in the
//! 2^53 exactly-representable integer range, and [`Json::num_u64`] asserts
//! that in debug builds.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from a `u64` counter (exact up to 2^53).
    pub fn num_u64(v: u64) -> Json {
        debug_assert!(v <= (1u64 << 53), "u64 {v} exceeds exact f64 range");
        Json::Num(v as f64)
    }

    /// Append a key/value pair; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::set on non-object"),
        }
    }

    /// Builder-style [`set`](Json::set).
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Look up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) if v.is_finite() => Some(*v),
            _ => None,
        }
    }

    /// The number value as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialize compactly (no whitespace). `to_string()` is the canonical
    /// wire form used by the JSONL sink and the experiment records.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document. Rejects trailing non-whitespace input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // A high surrogate must be followed by an escaped
                            // low surrogate; combine into one scalar.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("expected low surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the byte
                    // stream is valid UTF-8; copy the whole scalar through).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the four hex digits of a `\u` escape (`self.pos` is at the
    /// first digit) and return the code unit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_basics() {
        let j = Json::obj()
            .with("name", Json::str("fig19"))
            .with("n", Json::num_u64(42))
            .with("ok", Json::Bool(true))
            .with("none", Json::Null)
            .with("xs", Json::Arr(vec![Json::Num(1.5), Json::Num(2.0)]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig19","n":42,"ok":true,"none":null,"xs":[1.5,2]}"#
        );
    }

    #[test]
    fn round_trip() {
        let j = Json::obj()
            .with("s", Json::str("a \"quoted\"\n\ttab\\slash"))
            .with("neg", Json::Num(-3.25))
            .with("big", Json::num_u64(9_007_199_254_740_992))
            .with("arr", Json::Arr(vec![Json::obj().with("k", Json::Null)]));
        let text = j.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.get("big").unwrap().as_u64(), Some(1u64 << 53));
        assert_eq!(
            back.get("s").unwrap().as_str(),
            Some("a \"quoted\"\n\ttab\\slash")
        );
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let j = parse(" { \"a\" : [ 1 , 2.5e1 , { \"b\" : false } ] } ").unwrap();
        let arr = j.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parse_unicode_escapes() {
        let j = parse(r#""é😀""#).unwrap();
        assert_eq!(j.as_str(), Some("é😀"));
        let escaped = "\"\\u00e9 \\ud83d\\ude00\"";
        let j = parse(escaped).unwrap();
        assert_eq!(j.as_str(), Some("é 😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::obj());
        assert_eq!(Json::obj().to_string(), "{}");
    }
}
