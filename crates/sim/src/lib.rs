//! # xpass-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the ExpressPass reproduction: a small,
//! fast, fully deterministic discrete-event kernel in the role ns-2 played
//! for the original paper.
//!
//! Components:
//!
//! * [`time`] — simulation clock. Time is an integer number of **picoseconds**
//!   ([`SimTime`], [`Dur`]); at 100 Gbps one byte serializes in exactly 80 ps,
//!   so every transmission time used by the paper (10/25/40/100 Gbps) is exact
//!   with no floating-point drift.
//! * [`event`] — a binary-heap event queue with a stable tie-break sequence
//!   number, so same-timestamp events fire in insertion order and runs are
//!   reproducible bit-for-bit.
//! * [`rng`] — a seedable xoshiro256++ PRNG plus the distributions the
//!   workloads need (uniform, exponential, empirical CDF).
//! * [`stats`] — online statistics, percentiles, time-weighted averages
//!   (queue occupancy), histograms, CDFs, and Jain's fairness index.
//! * [`bucket`] — token/leaky bucket used by credit rate-limiters.


#![warn(missing_docs)]
pub mod bucket;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use bucket::TokenBucket;
pub use event::EventQueue;
pub use rng::Rng;
pub use stats::{Cdf, Histogram, OnlineStats, Percentiles, TimeWeighted};
pub use time::{Dur, SimTime};
