//! # xpass-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the ExpressPass reproduction: a small,
//! fast, fully deterministic discrete-event kernel in the role ns-2 played
//! for the original paper.
//!
//! Components:
//!
//! * [`time`] — simulation clock. Time is an integer number of **picoseconds**
//!   ([`SimTime`], [`Dur`]); at 100 Gbps one byte serializes in exactly 80 ps,
//!   so every transmission time used by the paper (10/25/40/100 Gbps) is exact
//!   with no floating-point drift.
//! * [`event`] — the event queue: two interchangeable schedulers (the
//!   reference binary heap and the fast-path hierarchical [`calendar`]
//!   queue) with a stable tie-break sequence number, so same-timestamp
//!   events fire in insertion order and runs are reproducible bit-for-bit
//!   under either scheduler; cancellable timers ride on the same order.
//! * [`calendar`] — the calendar-queue / timing-wheel implementation
//!   behind [`event::SchedulerKind::Calendar`]: O(1) amortized insert/pop
//!   for the near-future band (~1 ms window of ~1 µs buckets) plus a
//!   binary-heap overflow band for far-future timers.
//! * [`rng`] — a seedable xoshiro256++ PRNG plus the distributions the
//!   workloads need (uniform, exponential, empirical CDF).
//! * [`stats`] — online statistics, percentiles, time-weighted averages
//!   (queue occupancy), histograms, CDFs, and Jain's fairness index.
//! * [`bucket`] — token/leaky bucket used by credit rate-limiters.
//! * [`json`] — a hand-rolled JSON value type (serializer + parser) for
//!   machine-readable output; the workspace builds offline with no crates.
//! * [`trace`] — typed [`trace::TraceEvent`] stream with pluggable
//!   [`trace::TraceSink`]s (ring buffer, JSONL file); zero-cost when no
//!   sink is installed.
//! * [`profile`] — [`profile::EngineReport`] summarizing engine activity
//!   (events per kind, peak heap depth, wall-clock events/sec), plus a
//!   thread-scoped nested span profiler with wall + sim-time attribution.
//! * [`metrics`] — live metrics plane: counter/gauge/histogram registry
//!   with interned labels, a sim-time sampler ring, the
//!   `xpass-metrics/v1` JSONL series format, Prometheus-style text
//!   exposition, and the cross-thread [`metrics::Plane`]; zero-cost when
//!   no context is installed.
//! * [`http`] — minimal hand-rolled HTTP/1.1 server (std `TcpListener`,
//!   no deps) serving the plane at `/metrics`, `/health`, `/engine`,
//!   `/progress`.
//! * [`watchdog`] — hang/livelock detection: event-count, wall-clock, and
//!   sim-time-not-advancing budgets that abort a stuck run with a
//!   diagnostic [`watchdog::WatchdogReport`].

#![warn(missing_docs)]
pub mod bucket;
pub mod calendar;
pub mod checkpoint;
pub mod event;
pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod trace;
pub mod watchdog;

pub use bucket::TokenBucket;
pub use event::{EventQueue, SchedulerKind};
pub use json::Json;
pub use profile::EngineReport;
pub use rng::Rng;
pub use snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
pub use stats::{Cdf, Histogram, OnlineStats, Percentiles, TimeWeighted};
pub use time::{Dur, SimTime};
pub use trace::{JsonlSink, RingSink, TraceEvent, TraceSink};
