//! A hierarchical calendar queue (adaptive timing wheel + overflow band) —
//! the engine's fast path.
//!
//! The near future is a fixed wheel of `N_BUCKETS` buckets, each
//! `2^bucket_bits` picoseconds wide. Inserting into the wheel is an O(1)
//! append of a 24-byte `(key, slot)` entry — payloads live out-of-line in
//! a slab, so scheduler data movement is independent of the event type's
//! size. Popping stages one bucket at a time by sorting it (O(k log k))
//! on the global `(time, seq)` pair and walking it with a cursor — each
//! pop is one indexed read, no sift — so the pop order is *identical* to
//! the reference binary heap, including FIFO tie-breaking of
//! same-timestamp events by insertion sequence number. Events that land
//! at or behind the staged bucket (the common "reschedule a few hundred
//! ns ahead" case in packet simulations) are a binary-search insert into
//! the staged slice — k is one bucket's occupancy (held to a handful by
//! the adaptive width below), and the moved entries are 24 bytes each.
//!
//! The bucket width **adapts** to the workload (Brown's classic calendar
//! queue resize rule, driven here by average staged-bucket occupancy):
//! dense credit/packet traffic narrows buckets so each stage handles a
//! handful of events; sparse timer workloads widen them so events don't
//! pay a whole stage cycle each. Resizes are rare (checked every
//! [`RESIZE_CHECK`] staged buckets), rebuild only the wheel band, and are
//! driven purely by push/pop counts — never wall-clock — so they preserve
//! determinism.
//!
//! Events beyond the wheel's current window (`N_BUCKETS` buckets wide) go
//! to an overflow binary heap — the far band of the hierarchy. Whenever
//! the wheel drains, the day is fast-forwarded to the overflow's earliest
//! event and every overflow event inside the new window is pulled into
//! buckets. Each event therefore pays at most one heap push + pop (far
//! band) or one bucket append + one share of a small heapify (near band).
//!
//! Determinism contract: the pop sequence is a pure function of the
//! push/pop call sequence — wall clock, thread identity, and allocator
//! state never influence it. `(time, seq)` keys are unique (the wrapper's
//! seq counter is strictly increasing), so heap order is total and the
//! differential tests in the workspace root can pin byte-identical
//! experiment output against the heap scheduler.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Initial log2 of the bucket width in picoseconds (2^18 ps ≈ 0.26 µs —
/// a fit for 10–100 G packet event spacing; adaptation takes it from
/// there).
pub const INITIAL_BUCKET_BITS: u32 = 18;
/// Smallest allowed bucket width (2^16 ps ≈ 66 ns).
pub const MIN_BUCKET_BITS: u32 = 12;
/// Largest allowed bucket width (2^26 ps ≈ 67 µs).
pub const MAX_BUCKET_BITS: u32 = 26;
/// Number of wheel buckets (must be a power of two).
pub const N_BUCKETS: usize = 4096;
/// Re-evaluate the bucket width after this many staged buckets.
pub const RESIZE_CHECK: u64 = 1024;
const WORDS: usize = N_BUCKETS / 64;

/// A queue entry ordered by `Reverse((time ps, insertion seq))` so both
/// the staging heap and the overflow heap are min-heaps on `(time, seq)`.
/// The event payload lives out-of-line in the slab — entries are 24 bytes,
/// so heapify/sift traffic stays small no matter how big `E` is.
#[derive(Clone, Copy)]
struct Entry {
    key: Reverse<(u64, u64)>,
    slot: u32,
}

impl Entry {
    #[inline]
    fn new(t: u64, seq: u64, slot: u32) -> Entry {
        Entry {
            key: Reverse((t, seq)),
            slot,
        }
    }

    #[inline]
    fn time(&self) -> u64 {
        self.key.0 .0
    }

    #[inline]
    fn seq(&self) -> u64 {
        self.key.0 .1
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The two-band calendar scheduler. Total order over `(time, seq)` — the
/// caller supplies a strictly increasing `seq` per push (the [`EventQueue`]
/// wrapper does), which makes every tie deterministic.
///
/// [`EventQueue`]: crate::event::EventQueue
pub struct CalendarQueue<E> {
    /// Near band: unsorted per-bucket appends.
    buckets: Vec<Vec<Entry>>,
    /// Occupancy bitmap over `buckets` (bit set ⇔ bucket non-empty).
    occupied: [u64; WORDS],
    /// The staged current bucket, sorted ascending on `(time, seq)` and
    /// consumed from `scursor`; also receives pushes at or behind the
    /// wheel cursor (binary-search insert into the unpopped tail).
    staging: Vec<Entry>,
    /// Next staging index to pop (everything before it is already out).
    scursor: usize,
    /// Far band: everything at or beyond `day_start + WINDOW_PS`.
    overflow: BinaryHeap<Entry>,
    /// Out-of-line event payloads, indexed by `Entry::slot`.
    slab: Vec<Option<E>>,
    /// Free slots in `slab`, reused LIFO (deterministic).
    free: Vec<u32>,
    /// Start of the wheel's current window (multiple of the bucket width).
    day_start: u64,
    /// Bucket index the wheel has drained up to within this window.
    cursor: usize,
    /// Whether `buckets[cursor]` has already been merged into `staging`.
    staged: bool,
    /// Items currently in `buckets` (excludes `staging` and `overflow`).
    wheel_len: usize,
    /// Total items across all three structures.
    len: usize,
    /// Current log2 bucket width (adaptive; see module docs).
    bucket_bits: u32,
    /// `N_BUCKETS << bucket_bits` — one wheel rotation in ps.
    window_ps: u64,
    /// Buckets staged since the last resize check.
    stage_count: u64,
    /// Items those staged buckets held (occupancy numerator).
    staged_items: u64,
}

impl<E> CalendarQueue<E> {
    /// Create an empty calendar; `cap` sizes the overflow heap and staging
    /// area (the wheel itself is lazily allocated per bucket).
    pub fn with_capacity(cap: usize) -> CalendarQueue<E> {
        let mut buckets = Vec::with_capacity(N_BUCKETS);
        buckets.resize_with(N_BUCKETS, Vec::new);
        CalendarQueue {
            buckets,
            occupied: [0; WORDS],
            staging: Vec::with_capacity(cap.min(4096)),
            scursor: 0,
            overflow: BinaryHeap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            day_start: 0,
            cursor: 0,
            staged: false,
            wheel_len: 0,
            len: 0,
            bucket_bits: INITIAL_BUCKET_BITS,
            window_ps: (N_BUCKETS as u64) << INITIAL_BUCKET_BITS,
            stage_count: 0,
            staged_items: 0,
        }
    }

    /// Current bucket width as a power-of-two exponent (for tests/stats).
    pub fn bucket_bits(&self) -> u32 {
        self.bucket_bits
    }

    /// Park `event` in the slab and return its slot index.
    #[inline]
    fn store(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// Take the payload for `slot` back out of the slab.
    #[inline]
    fn take(&mut self, slot: u32) -> E {
        self.free.push(slot);
        self.slab[slot as usize].take().expect("empty slab slot")
    }

    /// Insert into the unpopped tail of the staged slice, keeping it
    /// sorted ascending on `(time, seq)`. Keys at or below the last
    /// popped key land at `scursor` and pop next — exactly the reference
    /// heap's behaviour for late pushes.
    #[inline]
    fn staging_insert(&mut self, e: Entry) {
        let k = e.key.0;
        let tail = &self.staging[self.scursor..];
        let pos = self.scursor + tail.partition_point(|x| x.key.0 < k);
        if pos == self.staging.len() {
            self.staging.push(e);
        } else {
            self.staging.insert(pos, e);
        }
    }

    /// Number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `(at, seq, event)`. `seq` must be strictly greater than every
    /// previously pushed seq (the wrapper's global counter guarantees it).
    pub fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let t = at.0;
        self.len += 1;
        let slot = self.store(event);
        match t.checked_sub(self.day_start) {
            // Far band: at or beyond the current window.
            Some(rel) if rel >= self.window_ps => self.overflow.push(Entry::new(t, seq, slot)),
            Some(rel) => {
                let idx = (rel >> self.bucket_bits) as usize;
                if idx < self.cursor || (idx == self.cursor && self.staged) {
                    // The wheel already drained past this bucket: insert
                    // into the staged slice (typically a near-`now`
                    // reschedule — a binary search plus a few 24-byte
                    // entry moves).
                    self.staging_insert(Entry::new(t, seq, slot));
                } else {
                    self.buckets[idx].push(Entry::new(t, seq, slot));
                    self.occupied[idx / 64] |= 1 << (idx % 64);
                    self.wheel_len += 1;
                }
            }
            // Before the window start (only after an aggressive
            // fast-forward): earlier than everything else, so staging —
            // which always pops first — keeps the order correct.
            None => self.staging_insert(Entry::new(t, seq, slot)),
        }
    }

    /// First occupied bucket index at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let (mut w, bit) = (from / 64, from % 64);
        let mut word = self.occupied[w] & (!0u64 << bit);
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }

    /// Move bucket `j` into (drained) staging by sorting it in place; the
    /// drained staging allocation is recycled as the new empty bucket.
    fn stage(&mut self, j: usize) {
        debug_assert!(self.scursor == self.staging.len());
        self.staging.clear();
        self.scursor = 0;
        std::mem::swap(&mut self.staging, &mut self.buckets[j]);
        self.wheel_len -= self.staging.len();
        self.occupied[j / 64] &= !(1 << (j % 64));
        self.cursor = j;
        self.staged = true;
        self.stage_count += 1;
        self.staged_items += self.staging.len() as u64;
        self.staging.sort_unstable_by_key(|e| e.key.0);
    }

    /// Ensure staging holds the wheel's minimum (or the wheel is empty).
    fn settle_wheel(&mut self) {
        if self.scursor < self.staging.len() || self.wheel_len == 0 {
            return;
        }
        if self.stage_count >= RESIZE_CHECK {
            self.maybe_resize();
        }
        let from = if self.staged {
            self.cursor + 1
        } else {
            self.cursor
        };
        // wheel_len > 0 and nothing is behind the cursor (those inserts go
        // to staging), so an occupied bucket must exist at or after it.
        let j = self.next_occupied(from).expect("wheel accounting broken");
        self.stage(j);
    }

    /// Adapt the bucket width to the observed staged-bucket occupancy:
    /// narrow when buckets are crowded (each stage heapifies too much),
    /// widen when they are nearly empty (each event pays a whole stage
    /// cycle). Only called from `settle_wheel` while staging is empty, so
    /// the rebuild has a clean wheel to work on. Deterministic: driven by
    /// push/pop counts only.
    fn maybe_resize(&mut self) {
        let (stages, items) = (self.stage_count, self.staged_items);
        self.stage_count = 0;
        self.staged_items = 0;
        let new_bits = if items > 16 * stages {
            self.bucket_bits.saturating_sub(1).max(MIN_BUCKET_BITS)
        } else if 2 * items < 3 * stages {
            (self.bucket_bits + 1).min(MAX_BUCKET_BITS)
        } else {
            return;
        };
        if new_bits == self.bucket_bits {
            return;
        }
        self.rebuild(new_bits);
    }

    /// Re-bucket every wheel entry under a new bucket width. Staging is
    /// empty (caller guarantees it) and the overflow band needs no work:
    /// events that now fit the (possibly larger) window are pulled in by
    /// the next `fast_forward` as usual.
    fn rebuild(&mut self, new_bits: u32) {
        let mut scratch: Vec<Entry> = Vec::with_capacity(self.wheel_len);
        if self.wheel_len > 0 {
            let mut from = 0;
            while let Some(j) = self.next_occupied(from) {
                scratch.append(&mut self.buckets[j]);
                self.occupied[j / 64] &= !(1 << (j % 64));
                if j + 1 == N_BUCKETS {
                    break;
                }
                from = j + 1;
            }
        }
        debug_assert_eq!(scratch.len(), self.wheel_len);
        self.bucket_bits = new_bits;
        self.window_ps = (N_BUCKETS as u64) << new_bits;
        self.cursor = 0;
        self.staged = false;
        // Align the window to the earliest remaining wheel entry (or keep
        // the old origin when the wheel is empty). Entries are never
        // behind the new day_start by construction.
        let min_t = scratch.iter().map(|e| e.time()).min();
        self.day_start = (min_t.unwrap_or(self.day_start) >> new_bits) << new_bits;
        let mut to_overflow = 0;
        for e in scratch {
            let rel = e.time() - self.day_start;
            if rel >= self.window_ps {
                self.overflow.push(e);
                to_overflow += 1;
            } else {
                let idx = (rel >> new_bits) as usize;
                self.buckets[idx].push(e);
                self.occupied[idx / 64] |= 1 << (idx % 64);
            }
        }
        self.wheel_len -= to_overflow;
        // The window may now end later than before (wider buckets, or
        // day_start advanced): overflow events that fall inside it must
        // move into the wheel, or later wheel events would pop first.
        let day_end = self.day_start + self.window_ps;
        while let Some(e) = self.overflow.peek() {
            let t = e.time();
            if t >= day_end {
                break;
            }
            let e = self.overflow.pop().unwrap();
            let idx = ((t - self.day_start) >> new_bits) as usize;
            self.buckets[idx].push(e);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        }
    }

    /// Rotate the wheel to the window containing the overflow minimum and
    /// pull every overflow event inside the new window into buckets.
    fn fast_forward(&mut self) {
        debug_assert!(self.scursor == self.staging.len() && self.wheel_len == 0);
        let min_t = self.overflow.peek().expect("fast_forward on empty").time();
        self.day_start = (min_t >> self.bucket_bits) << self.bucket_bits;
        self.cursor = 0;
        self.staged = false;
        let day_end = self.day_start + self.window_ps;
        while let Some(e) = self.overflow.peek() {
            let t = e.time();
            if t >= day_end {
                break;
            }
            let e = self.overflow.pop().unwrap();
            let idx = ((t - self.day_start) >> self.bucket_bits) as usize;
            self.buckets[idx].push(e);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_len += 1;
        }
    }

    /// Key of the earliest entry without removing it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        self.settle_wheel();
        if let Some(e) = self.staging.get(self.scursor) {
            return Some((SimTime(e.time()), e.seq()));
        }
        // Wheel empty: the minimum lives in overflow; no need to rotate yet.
        self.overflow.peek().map(|e| (SimTime(e.time()), e.seq()))
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        self.settle_wheel();
        if self.scursor == self.staging.len() {
            self.fast_forward();
            self.settle_wheel();
        }
        let e = self.staging[self.scursor];
        self.scursor += 1;
        self.len -= 1;
        let event = self.take(e.slot);
        Some((SimTime(e.time()), e.seq(), event))
    }

    /// Remove and return the earliest entry **if** it fires at or before
    /// `t` — the engine's fused peek-then-pop: one settle and one ordering
    /// check per event instead of two of each.
    #[inline]
    pub fn pop_if_le(&mut self, t: SimTime) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        self.settle_wheel();
        if self.scursor == self.staging.len() {
            // Wheel drained: the minimum lives in overflow — check it
            // before paying for a rotation.
            if self.overflow.peek()?.time() > t.0 {
                return None;
            }
            self.fast_forward();
            self.settle_wheel();
        }
        let e = self.staging[self.scursor];
        if e.time() > t.0 {
            return None;
        }
        self.scursor += 1;
        self.len -= 1;
        let event = self.take(e.slot);
        Some((SimTime(e.time()), e.seq(), event))
    }

    /// Allocated entry slots across the slab, staging, and the overflow
    /// heap (the dominant growable allocations; wheel buckets too).
    pub fn capacity(&self) -> usize {
        self.slab.capacity()
            + self.staging.capacity()
            + self.overflow.capacity()
            + self.buckets.iter().map(|b| b.capacity()).sum::<usize>()
    }

    /// Release excess memory down to roughly `cap` retained slots. Called
    /// by the wrapper after a full drain; a no-op on simulation state.
    pub fn shrink_to(&mut self, cap: usize) {
        self.staging.shrink_to(cap.min(4096));
        self.overflow.shrink_to(cap);
        if self.len == 0 {
            // Safe only when empty: live `Entry::slot` indices would dangle
            // otherwise.
            self.slab.clear();
            self.slab.shrink_to(cap);
            self.free.clear();
            self.free.shrink_to(cap);
        }
        for b in &mut self.buckets {
            if b.capacity() > 16 && b.is_empty() {
                *b = Vec::new();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    /// The wheel window before any adaptation kicks in.
    const WINDOW_PS: u64 = (N_BUCKETS as u64) << INITIAL_BUCKET_BITS;

    fn drain<E>(q: &mut CalendarQueue<E>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, s, _)) = q.pop() {
            out.push((t.0, s));
        }
        out
    }

    #[test]
    fn orders_within_one_bucket() {
        let mut q = CalendarQueue::with_capacity(8);
        q.push(SimTime(500), 0, "a");
        q.push(SimTime(100), 1, "b");
        q.push(SimTime(100), 2, "c");
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.pop().unwrap().2, "c");
        assert_eq!(q.pop().unwrap().2, "a");
        assert!(q.pop().is_none());
    }

    #[test]
    fn orders_across_buckets_and_overflow() {
        let mut q = CalendarQueue::with_capacity(8);
        let far = WINDOW_PS * 3 + 17; // overflow band
        let mid = WINDOW_PS / 2; // later bucket
        q.push(SimTime(far), 0, ());
        q.push(SimTime(mid), 1, ());
        q.push(SimTime(3), 2, ());
        assert_eq!(drain(&mut q), vec![(3, 2), (mid, 1), (far, 0)]);
    }

    #[test]
    fn push_behind_cursor_goes_to_staging() {
        let mut q = CalendarQueue::with_capacity(8);
        q.push(SimTime::ZERO + Dur::us(50), 0, "later");
        // Drain cursor forward to the 50 µs bucket.
        assert_eq!(q.peek_key().unwrap().0, SimTime::ZERO + Dur::us(50));
        // Now push an earlier event (same instant as "now" would be).
        q.push(SimTime::ZERO + Dur::us(49), 1, "earlier-bucket");
        q.push(SimTime::ZERO + Dur::us(50), 2, "tie-later-seq");
        assert_eq!(q.pop().unwrap().2, "earlier-bucket");
        assert_eq!(q.pop().unwrap().2, "later");
        assert_eq!(q.pop().unwrap().2, "tie-later-seq");
    }

    #[test]
    fn fast_forward_many_windows() {
        let mut q = CalendarQueue::with_capacity(8);
        for i in 0..5u64 {
            q.push(SimTime(i * 40 * WINDOW_PS), i, i);
        }
        let got = drain(&mut q);
        assert_eq!(got.len(), 5);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn interleaves_push_pop_deterministically() {
        let mut q = CalendarQueue::with_capacity(8);
        let mut last = (0u64, 0u64);
        let mut popped = 0usize;
        for (seq, round) in (0..2000u64).enumerate() {
            let t = (round * 7919) % (WINDOW_PS * 2);
            // Keep time monotone relative to pops by offsetting with last.
            q.push(SimTime(last.0 + t), seq as u64, ());
            if round % 3 == 0 {
                if let Some((t, s, _)) = q.pop() {
                    assert!((t.0, s) > last || popped == 0, "regressed order");
                    last = (t.0, s);
                    popped += 1;
                }
            }
        }
        let rest = drain(&mut q);
        assert_eq!(popped + rest.len(), 2000);
        assert!(rest.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn shrink_releases_memory() {
        let mut q = CalendarQueue::with_capacity(16);
        for i in 0..100_000u64 {
            q.push(SimTime(i * (WINDOW_PS / 64)), i, i);
        }
        while q.pop().is_some() {}
        let before = q.capacity();
        q.shrink_to(16);
        assert!(q.capacity() < before);
        assert!(q.is_empty());
    }

    #[test]
    fn adapts_width_to_sparse_workload_and_stays_ordered() {
        // Hold pattern with one event every ~8 buckets: occupancy « 1.5,
        // so the queue should widen its buckets, and the pop stream must
        // stay ordered through every rebuild.
        let mut q = CalendarQueue::with_capacity(64);
        let gap = 8u64 << INITIAL_BUCKET_BITS;
        let mut seq = 0u64;
        let mut t = 0u64;
        for _ in 0..64 {
            q.push(SimTime(t), seq, ());
            seq += 1;
            t += gap;
        }
        let mut last = (0u64, 0u64);
        for i in 0..20_000u64 {
            let (pt, ps, _) = q.pop().expect("steady-state hold never empties");
            assert!((pt.0, ps) > last || i == 0, "order regressed at {i}");
            last = (pt.0, ps);
            q.push(SimTime(pt.0 + 64 * gap), seq, ());
            seq += 1;
        }
        assert!(
            q.bucket_bits() > INITIAL_BUCKET_BITS,
            "sparse hold workload should widen buckets (still {})",
            q.bucket_bits()
        );
    }

    #[test]
    fn adapts_width_to_dense_workload_and_stays_ordered() {
        // ~64 events per initial bucket: occupancy » 16, so the queue
        // should narrow its buckets; order must hold through rebuilds.
        let mut q = CalendarQueue::with_capacity(4096);
        let step = (1u64 << INITIAL_BUCKET_BITS) / 64;
        let mut seq = 0u64;
        let mut t = 1u64;
        for _ in 0..4096 {
            q.push(SimTime(t), seq, ());
            seq += 1;
            t += step;
        }
        let mut last = (0u64, 0u64);
        for i in 0..300_000u64 {
            let (pt, ps, _) = q.pop().expect("steady-state hold never empties");
            assert!((pt.0, ps) > last || i == 0, "order regressed at {i}");
            last = (pt.0, ps);
            q.push(SimTime(pt.0 + 4096 * step), seq, ());
            seq += 1;
        }
        assert!(
            q.bucket_bits() < INITIAL_BUCKET_BITS,
            "dense workload should narrow buckets (still {})",
            q.bucket_bits()
        );
    }
}
