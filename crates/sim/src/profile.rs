//! Engine profiling: what the discrete-event kernel did and how fast.
//!
//! The network layer fills in an [`EngineReport`] at the end of a run:
//! events processed broken down by kind, the deepest the event heap got,
//! and wall-clock throughput. The wall-clock figures are measured outside
//! the simulation (they never feed back into it), so profiling does not
//! perturb determinism.

use crate::json::Json;

/// A summary of one simulation run's engine activity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineReport {
    /// Total events popped from the queue.
    pub events_processed: u64,
    /// Events broken down by kind name (stable order).
    pub events_by_kind: Vec<(&'static str, u64)>,
    /// Deepest the event heap got during the run.
    pub peak_queue_len: usize,
    /// Wall-clock seconds spent inside the run loop.
    pub wall_secs: f64,
    /// Simulated seconds covered by the run.
    pub sim_secs: f64,
    /// Which scheduler ran the queue (`"heap"` / `"calendar"`).
    pub scheduler: &'static str,
    /// The calendar's adaptive bucket width (log2 ps) at report time;
    /// `None` under the heap scheduler.
    pub bucket_bits: Option<u32>,
}

impl EngineReport {
    /// Events processed per wall-clock second (0 if no time elapsed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut by_kind = Json::obj();
        for (name, n) in &self.events_by_kind {
            by_kind.set(name, Json::num_u64(*n));
        }
        let mut j = Json::obj()
            .with("events_processed", Json::num_u64(self.events_processed))
            .with("events_by_kind", by_kind)
            .with("peak_queue_len", Json::num_u64(self.peak_queue_len as u64))
            .with("wall_secs", Json::Num(self.wall_secs))
            .with("sim_secs", Json::Num(self.sim_secs))
            .with("events_per_sec", Json::Num(self.events_per_sec()))
            .with("scheduler", Json::str(self.scheduler));
        if let Some(bits) = self.bucket_bits {
            j.set("bucket_bits", Json::num_u64(bits as u64));
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn events_per_sec_guards_zero_wall_time() {
        let r = EngineReport {
            events_processed: 100,
            ..Default::default()
        };
        assert_eq!(r.events_per_sec(), 0.0);
    }

    #[test]
    fn json_round_trips_counts() {
        let r = EngineReport {
            events_processed: 12,
            events_by_kind: vec![("arrive", 7), ("timer", 5)],
            peak_queue_len: 4,
            wall_secs: 0.5,
            sim_secs: 2.0,
            scheduler: "calendar",
            bucket_bits: Some(18),
        };
        let j = json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(j.get("events_processed").unwrap().as_u64(), Some(12));
        assert_eq!(
            j.get("events_by_kind")
                .unwrap()
                .get("arrive")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(j.get("events_per_sec").unwrap().as_f64(), Some(24.0));
    }
}
