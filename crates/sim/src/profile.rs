//! Engine profiling: what the discrete-event kernel did and how fast,
//! plus a nested span profiler for harness phases.
//!
//! The network layer fills in an [`EngineReport`] at the end of a run:
//! events processed broken down by kind, the deepest the event heap got,
//! and wall-clock throughput. The wall-clock figures are measured outside
//! the simulation (they never feed back into it), so profiling does not
//! perturb determinism.
//!
//! The **span profiler** is thread-scoped like tracing and metrics: when
//! installed ([`install_profiler`]), [`span`] opens a named nested span
//! whose guard accumulates wall time on drop, and the engine attributes
//! simulated time to the innermost open span via [`add_sim`]. When no
//! profiler is installed every call is a no-op, so instrumented code paths
//! cost one thread-local check. Collected [`SpanRecord`]s feed
//! [`EngineReport::spans`] and the `/metrics` exposition.

use crate::json::Json;
use crate::time::Dur;
use std::cell::RefCell;
use std::time::Instant;

/// A summary of one simulation run's engine activity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineReport {
    /// Total events popped from the queue.
    pub events_processed: u64,
    /// Events broken down by kind name (stable order).
    pub events_by_kind: Vec<(&'static str, u64)>,
    /// Deepest the event heap got during the run.
    pub peak_queue_len: usize,
    /// Wall-clock seconds spent inside the run loop.
    pub wall_secs: f64,
    /// Simulated seconds covered by the run.
    pub sim_secs: f64,
    /// Which scheduler ran the queue (`"heap"` / `"calendar"`).
    pub scheduler: &'static str,
    /// The calendar's adaptive bucket width (log2 ps) at report time;
    /// `None` under the heap scheduler.
    pub bucket_bits: Option<u32>,
    /// Profiler spans closed so far on this thread (empty unless a span
    /// profiler is installed; omitted from JSON when empty so default
    /// reports are unchanged).
    pub spans: Vec<SpanRecord>,
}

impl EngineReport {
    /// Events processed per wall-clock second (0 if no time elapsed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events_processed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut by_kind = Json::obj();
        for (name, n) in &self.events_by_kind {
            by_kind.set(name, Json::num_u64(*n));
        }
        let mut j = Json::obj()
            .with("events_processed", Json::num_u64(self.events_processed))
            .with("events_by_kind", by_kind)
            .with("peak_queue_len", Json::num_u64(self.peak_queue_len as u64))
            .with("wall_secs", Json::Num(self.wall_secs))
            .with("sim_secs", Json::Num(self.sim_secs))
            .with("events_per_sec", Json::Num(self.events_per_sec()))
            .with("scheduler", Json::str(self.scheduler));
        if let Some(bits) = self.bucket_bits {
            j.set("bucket_bits", Json::num_u64(bits as u64));
        }
        if !self.spans.is_empty() {
            j.set(
                "spans",
                Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
            );
        }
        j
    }
}

// ---------------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------------

/// One closed profiler span, aggregated over all its invocations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanRecord {
    /// `/`-joined nesting path, e.g. `fig10/run/net`.
    pub path: String,
    /// Times a span with this path opened.
    pub calls: u64,
    /// Wall-clock seconds spent inside (including nested spans).
    pub wall_secs: f64,
    /// Simulated seconds attributed while this span was innermost.
    pub sim_secs: f64,
}

impl SpanRecord {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("path", Json::str(&*self.path))
            .with("calls", Json::num_u64(self.calls))
            .with("wall_secs", Json::Num(self.wall_secs))
            .with("sim_secs", Json::Num(self.sim_secs))
    }
}

struct Profiler {
    /// Open span stack: (name, start, sim attributed to this frame).
    open: Vec<(String, Instant, f64)>,
    /// Closed records keyed by path, in first-open order.
    closed: Vec<SpanRecord>,
}

impl Profiler {
    fn record(&mut self, path: String, wall_secs: f64, sim_secs: f64) {
        if let Some(r) = self.closed.iter_mut().find(|r| r.path == path) {
            r.calls += 1;
            r.wall_secs += wall_secs;
            r.sim_secs += sim_secs;
        } else {
            self.closed.push(SpanRecord {
                path,
                calls: 1,
                wall_secs,
                sim_secs,
            });
        }
    }
}

thread_local! {
    static PROFILER: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Install a fresh span profiler on this thread (each worker installs its
/// own; spans never cross threads).
pub fn install_profiler() {
    PROFILER.with(|p| {
        *p.borrow_mut() = Some(Profiler {
            open: Vec::new(),
            closed: Vec::new(),
        });
    });
}

/// Remove this thread's profiler, discarding its records.
pub fn clear_profiler() {
    PROFILER.with(|p| *p.borrow_mut() = None);
}

/// True when a span profiler is installed on this thread.
pub fn profiler_active() -> bool {
    PROFILER.with(|p| p.borrow().is_some())
}

/// Guard for one open span; closing (dropping) it accumulates wall time
/// into the span's record.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    armed: bool,
}

/// Open a named span nested under the currently open spans. A no-op guard
/// when no profiler is installed.
pub fn span(name: &str) -> SpanGuard {
    let armed = PROFILER.with(|p| {
        if let Some(prof) = p.borrow_mut().as_mut() {
            prof.open.push((name.to_string(), Instant::now(), 0.0));
            true
        } else {
            false
        }
    });
    SpanGuard { armed }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        PROFILER.with(|p| {
            if let Some(prof) = p.borrow_mut().as_mut() {
                if let Some((_, start, sim)) = prof.open.last() {
                    let wall = start.elapsed().as_secs_f64();
                    let sim = *sim;
                    let path = prof
                        .open
                        .iter()
                        .map(|(n, _, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join("/");
                    prof.open.pop();
                    prof.record(path, wall, sim);
                }
            }
        });
    }
}

/// Attribute simulated time to the innermost open span. Called by the
/// engine's run loops once per call; a no-op without a profiler.
#[inline]
pub fn add_sim(d: Dur) {
    PROFILER.with(|p| {
        if let Some(prof) = p.borrow_mut().as_mut() {
            if let Some((_, _, sim)) = prof.open.last_mut() {
                *sim += d.as_secs_f64();
            }
        }
    });
}

/// Snapshot the closed spans collected so far (non-draining).
pub fn snapshot_spans() -> Vec<SpanRecord> {
    PROFILER.with(|p| {
        p.borrow()
            .as_ref()
            .map(|prof| prof.closed.clone())
            .unwrap_or_default()
    })
}

/// Drain and return the closed spans, leaving the profiler installed.
pub fn take_spans() -> Vec<SpanRecord> {
    PROFILER.with(|p| {
        p.borrow_mut()
            .as_mut()
            .map(|prof| std::mem::take(&mut prof.closed))
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn events_per_sec_guards_zero_wall_time() {
        let r = EngineReport {
            events_processed: 100,
            ..Default::default()
        };
        assert_eq!(r.events_per_sec(), 0.0);
    }

    #[test]
    fn json_round_trips_counts() {
        let r = EngineReport {
            events_processed: 12,
            events_by_kind: vec![("arrive", 7), ("timer", 5)],
            peak_queue_len: 4,
            wall_secs: 0.5,
            sim_secs: 2.0,
            scheduler: "calendar",
            bucket_bits: Some(18),
            spans: Vec::new(),
        };
        let j = json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(j.get("events_processed").unwrap().as_u64(), Some(12));
        assert_eq!(
            j.get("events_by_kind")
                .unwrap()
                .get("arrive")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(j.get("events_per_sec").unwrap().as_f64(), Some(24.0));
        // Empty spans stay out of the JSON so default reports are stable.
        assert!(j.get("spans").is_none());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        clear_profiler();
        {
            let _off = span("ignored"); // no profiler installed: no-op
        }
        install_profiler();
        for _ in 0..2 {
            let _outer = span("exp");
            add_sim(Dur::ms(1));
            {
                let _inner = span("run");
                add_sim(Dur::ms(2));
            }
        }
        let spans = snapshot_spans();
        assert_eq!(spans.len(), 2);
        let run = spans
            .iter()
            .find(|s| s.path == "exp/run")
            .expect("run span");
        assert_eq!(run.calls, 2);
        assert!((run.sim_secs - 0.004).abs() < 1e-12);
        let exp = spans.iter().find(|s| s.path == "exp").expect("exp span");
        assert_eq!(exp.calls, 2);
        assert!((exp.sim_secs - 0.002).abs() < 1e-12);
        assert!(exp.wall_secs >= run.wall_secs);
        let drained = take_spans();
        assert_eq!(drained.len(), 2);
        assert!(snapshot_spans().is_empty());
        clear_profiler();
    }
}
