//! Simulation time in integer picoseconds.
//!
//! Datacenter link speeds divide evenly into picoseconds-per-byte
//! (10 Gbps → 800 ps/B, 25 Gbps → 320, 40 Gbps → 200, 100 Gbps → 80), so an
//! integer picosecond clock represents every serialization, propagation, and
//! pacing interval in the paper exactly. A `u64` of picoseconds covers
//! ~213 days of simulated time — far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Picoseconds since simulation start.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Microseconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Dur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn ps(v: u64) -> Dur {
        Dur(v)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn ns(v: u64) -> Dur {
        Dur(v * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn us(v: u64) -> Dur {
        Dur(v * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn ms(v: u64) -> Dur {
        Dur(v * 1_000_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn secs(v: u64) -> Dur {
        Dur(v * 1_000_000_000_000)
    }

    /// Construct from a float number of seconds (rounds to nearest ps).
    ///
    /// Only used at configuration time (e.g. Poisson inter-arrival samples);
    /// the hot path stays in integers.
    #[inline]
    pub fn from_secs_f64(v: f64) -> Dur {
        assert!(
            v >= 0.0 && v.is_finite(),
            "duration must be finite and non-negative"
        );
        Dur((v * 1e12).round() as u64)
    }

    /// Picoseconds in this duration.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Microseconds as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// True if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division rounding up; how many whole `step`s cover `self`.
    #[inline]
    pub fn div_ceil(self, step: Dur) -> u64 {
        assert!(step.0 > 0, "division by zero duration");
        self.0.div_ceil(step.0)
    }

    /// Multiply by a float factor (configuration-time use).
    #[inline]
    pub fn mul_f64(self, f: f64) -> Dur {
        assert!(f >= 0.0 && f.is_finite());
        Dur((self.0 as f64 * f).round() as u64)
    }
}

/// Serialization time of `bytes` on a link of `bits_per_sec`, exact via
/// 128-bit intermediate math: `bytes * 8e12 / bps` picoseconds.
#[inline]
pub fn tx_time(bytes: u64, bits_per_sec: u64) -> Dur {
    debug_assert!(bits_per_sec > 0);
    let ps = (bytes as u128 * 8_000_000_000_000u128).div_ceil(bits_per_sec as u128);
    Dur(ps as u64)
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

/// Human-friendly rendering of a picosecond count (e.g. `12.3us`, `4ms`).
fn fmt_ps(ps: u64) -> String {
    if ps == u64::MAX {
        return "inf".into();
    }
    let (val, unit) = if ps >= 1_000_000_000_000 {
        (ps as f64 / 1e12, "s")
    } else if ps >= 1_000_000_000 {
        (ps as f64 / 1e9, "ms")
    } else if ps >= 1_000_000 {
        (ps as f64 / 1e6, "us")
    } else if ps >= 1_000 {
        (ps as f64 / 1e3, "ns")
    } else {
        (ps as f64, "ps")
    };
    if (val - val.round()).abs() < 1e-9 {
        format!("{}{}", val.round() as u64, unit)
    } else {
        format!("{:.3}{}", val, unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_exact_for_standard_speeds() {
        // 1538-byte frame: 10G = 1230.4ns, 40G = 307.6ns, 100G = 123.04ns.
        assert_eq!(tx_time(1538, 10_000_000_000).as_ps(), 1_230_400);
        assert_eq!(tx_time(1538, 40_000_000_000).as_ps(), 307_600);
        assert_eq!(tx_time(1538, 100_000_000_000).as_ps(), 123_040);
        // 84-byte credit on 10G = 67.2ns.
        assert_eq!(tx_time(84, 10_000_000_000).as_ps(), 67_200);
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps = 8e12/3 ps, not integral; must round up.
        let t = tx_time(1, 3);
        assert_eq!(t.as_ps(), 2_666_666_666_667);
    }

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(Dur::ns(5).as_ps(), 5_000);
        assert_eq!(Dur::us(5).as_ps(), 5_000_000);
        assert_eq!(Dur::ms(5).as_ps(), 5_000_000_000);
        assert_eq!(Dur::secs(2).as_ps(), 2_000_000_000_000);
        assert!((Dur::us(52).as_secs_f64() - 52e-6).abs() < 1e-18);
        assert_eq!(Dur::from_secs_f64(1.5e-6), Dur::ns(1500));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Dur::us(10);
        assert_eq!(t.as_ps(), 10_000_000);
        assert_eq!((t + Dur::us(5)).since(t), Dur::us(5));
        // since() saturates.
        assert_eq!(SimTime::ZERO.since(t), Dur::ZERO);
        assert_eq!(Dur::us(10) * 3, Dur::us(30));
        assert_eq!(Dur::us(10) / 4, Dur::ns(2500));
        assert_eq!(Dur::us(9).div_ceil(Dur::us(2)), 5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Dur::ns(999) < Dur::us(1));
        assert_eq!(SimTime::MAX, SimTime(u64::MAX));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::us(12)), "12us");
        assert_eq!(format!("{}", Dur::ps(1_230_400)), "1.230us");
        assert_eq!(format!("{}", Dur::ms(4)), "4ms");
        assert_eq!(format!("{}", SimTime::MAX), "inf");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Dur::us(10).mul_f64(0.5), Dur::us(5));
        assert_eq!(Dur::ps(3).mul_f64(1.0 / 3.0), Dur::ps(1));
    }

    #[test]
    fn sum_iterates() {
        let total: Dur = [Dur::us(1), Dur::us(2), Dur::us(3)].into_iter().sum();
        assert_eq!(total, Dur::us(6));
    }
}
