//! The event queue at the heart of the discrete-event engine.
//!
//! A binary heap keyed on `(time, seq)` where `seq` is a monotonically
//! increasing insertion counter: events scheduled for the same instant fire
//! in the order they were scheduled, which makes runs deterministic and
//! debugging sane.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events of type `E`.
///
/// `E` needs no trait bounds; ordering is entirely on `(time, seq)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
    peak: usize,
}

struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::with_capacity(1024),
            seq: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Pop the earliest event, returning `(time, event)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.key.0 .0, e.event)
        })
    }

    /// Timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of events currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far (for perf reporting).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Deepest the queue has been since creation (for perf reporting).
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO + Dur::us(3), "c");
        q.push(SimTime::ZERO + Dur::us(1), "a");
        q.push(SimTime::ZERO + Dur::us(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + Dur::us(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            let (at, v) = q.pop().unwrap();
            assert_eq!(at, t);
            assert_eq!(v, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 10);
    }

    #[test]
    fn tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        q.push(SimTime(3), ());
        q.pop();
        q.pop();
        q.push(SimTime(4), ());
        assert_eq!(q.peak_len(), 3, "peak survives drains");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 5u64);
        q.push(SimTime(1), 1);
        assert_eq!(q.pop().unwrap().0, SimTime(1));
        q.push(SimTime(3), 3);
        q.push(SimTime(2), 2);
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
