//! The event queue at the heart of the discrete-event engine.
//!
//! Two interchangeable schedulers live behind one API, both totally
//! ordered on `(time, seq)` where `seq` is a monotonically increasing
//! insertion counter — events scheduled for the same instant fire in the
//! order they were scheduled, which makes runs deterministic and debugging
//! sane:
//!
//! * [`SchedulerKind::Heap`] — the reference `BinaryHeap` (the seed
//!   implementation, kept as the differential-testing oracle).
//! * [`SchedulerKind::Calendar`] — the fast path: a hierarchical calendar
//!   queue ([`crate::calendar`]) with O(1) amortized insert/pop for the
//!   near-future band.
//!
//! The two produce *identical* pop sequences for any push/pop sequence;
//! `tests/scheduler_diff.rs` (workspace root) and the property suite in
//! `crates/sim/tests` pin that equivalence, so the calendar queue is
//! unobservable except in wall-clock time.
//!
//! Timers pushed via [`EventQueue::push_cancellable`] can be revoked with
//! [`EventQueue::cancel`]; cancelled entries never fire and are skipped
//! (and reclaimed) on pop. Queues start at a caller-controlled capacity
//! ([`EventQueue::with_capacity`]) and release excess memory whenever they
//! drain completely, so a burst does not pin its peak allocation forever.

use crate::calendar::CalendarQueue;
use crate::time::SimTime;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Which scheduler implementation an [`EventQueue`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Reference binary heap keyed on `(time, seq)`.
    Heap,
    /// Calendar queue / timing wheel with an overflow band (the default).
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// Parse a command-line name (`"heap"` / `"calendar"`).
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "heap" => Some(SchedulerKind::Heap),
            "calendar" => Some(SchedulerKind::Calendar),
            _ => None,
        }
    }

    /// Stable lowercase name (inverse of [`parse`](Self::parse)).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
        }
    }
}

thread_local! {
    static THREAD_SCHEDULER: Cell<SchedulerKind> = const { Cell::new(SchedulerKind::Calendar) };
}

/// Set the scheduler that [`EventQueue::new`] uses **on this thread**.
///
/// Scheduler choice is thread-scoped so concurrent experiment runs (the
/// parallel harness) and concurrent tests cannot race on a process global;
/// the parallel runner propagates the requested kind into each worker.
pub fn set_thread_scheduler(kind: SchedulerKind) {
    THREAD_SCHEDULER.with(|c| c.set(kind));
}

/// The scheduler [`EventQueue::new`] will use on this thread.
pub fn thread_scheduler() -> SchedulerKind {
    THREAD_SCHEDULER.with(|c| c.get())
}

/// Handle to a cancellable timer returned by
/// [`EventQueue::push_cancellable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerHandle(u64);

/// Default initial capacity (the seed's former hard-coded value).
pub const DEFAULT_CAPACITY: usize = 1024;

/// A time-ordered queue of events of type `E`.
///
/// `E` needs no trait bounds; ordering is entirely on `(time, seq)`.
pub struct EventQueue<E> {
    imp: Impl<E>,
    seq: u64,
    popped: u64,
    peak: usize,
    /// Entries currently queued (including cancelled tombstones), cached
    /// so the hot push/pop paths never re-derive it through the scheduler.
    raw: usize,
    initial_cap: usize,
    /// True once the queue outgrew its initial capacity; armed by `push`,
    /// consumed by the post-drain shrink so the empty-queue check is O(1).
    needs_shrink: bool,
    /// Seqs of live cancellable timers (empty unless the feature is used,
    /// so plain `push`/`pop` traffic never touches a hash set).
    cancellable: HashSet<u64>,
    /// Seqs cancelled while still queued; skipped and reclaimed on pop.
    cancelled: HashSet<u64>,
}

// The calendar's inline header (bitmap + cursors) is ~700 bytes, but there
// is exactly one `EventQueue` per engine and every push/pop goes through
// it — boxing the variant would trade a few hundred one-off bytes for a
// pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
enum Impl<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(CalendarQueue<E>),
}

struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue using this thread's default scheduler
    /// ([`set_thread_scheduler`]).
    pub fn new() -> EventQueue<E> {
        Self::with_scheduler(thread_scheduler())
    }

    /// Create an empty queue with an explicit scheduler.
    pub fn with_scheduler(kind: SchedulerKind) -> EventQueue<E> {
        Self::with_capacity(kind, DEFAULT_CAPACITY)
    }

    /// Create an empty queue with an explicit scheduler and initial
    /// capacity (also the floor the queue shrinks back to after a drain).
    pub fn with_capacity(kind: SchedulerKind, cap: usize) -> EventQueue<E> {
        let imp = match kind {
            SchedulerKind::Heap => Impl::Heap(BinaryHeap::with_capacity(cap)),
            SchedulerKind::Calendar => Impl::Calendar(CalendarQueue::with_capacity(cap)),
        };
        EventQueue {
            imp,
            seq: 0,
            popped: 0,
            peak: 0,
            raw: 0,
            initial_cap: cap,
            needs_shrink: false,
            cancellable: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Which scheduler this queue runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.imp {
            Impl::Heap(_) => SchedulerKind::Heap,
            Impl::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    #[inline]
    fn push_inner(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.imp {
            Impl::Heap(h) => h.push(Entry {
                key: Reverse((at, seq)),
                event,
            }),
            Impl::Calendar(c) => c.push(at, seq, event),
        }
        self.raw += 1;
        let live = self.raw - self.cancelled.len();
        if live > self.peak {
            self.peak = live;
        }
        if live > self.initial_cap {
            self.needs_shrink = true;
        }
        seq
    }

    /// Schedule `event` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) {
        self.push_inner(at, event);
    }

    /// Schedule a cancellable timer; the handle revokes it via
    /// [`cancel`](Self::cancel) any time before it fires.
    pub fn push_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        let seq = self.push_inner(at, event);
        self.cancellable.insert(seq);
        TimerHandle(seq)
    }

    /// Cancel a pending timer. Returns `true` if it was still queued (it
    /// will never fire); `false` if it already fired or was cancelled.
    pub fn cancel(&mut self, h: TimerHandle) -> bool {
        if self.cancellable.remove(&h.0) {
            self.cancelled.insert(h.0);
            true
        } else {
            false
        }
    }

    #[inline]
    fn pop_raw(&mut self) -> Option<(SimTime, u64, E)> {
        let out = match &mut self.imp {
            Impl::Heap(h) => h.pop().map(|e| (e.key.0 .0, e.key.0 .1, e.event)),
            Impl::Calendar(c) => c.pop(),
        };
        if out.is_some() {
            self.raw -= 1;
        }
        out
    }

    /// Pop the earliest live event, returning `(time, event)`. Cancelled
    /// timers are skipped (and never counted as processed).
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let (at, seq, event) = self.pop_raw()?;
            if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                continue;
            }
            if !self.cancellable.is_empty() {
                self.cancellable.remove(&seq);
            }
            self.popped += 1;
            if self.needs_shrink && self.raw == 0 {
                self.shrink_after_drain();
                self.needs_shrink = false;
            }
            return Some((at, event));
        }
    }

    /// Pop the earliest live event if it fires at or before `t` — the
    /// engine's fused peek-then-pop fast path: one scheduler settle and
    /// one tombstone pass per event instead of two of each.
    #[inline]
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.cancelled.is_empty() && self.cancellable.is_empty() {
            // No timer tombstones in play (the common engine state): one
            // fused scheduler call, no hash-set traffic at all.
            let (at, _seq, event) = match &mut self.imp {
                Impl::Heap(h) => {
                    if h.peek()?.key.0 .0 > t {
                        return None;
                    }
                    let e = h.pop().expect("peeked entry vanished");
                    (e.key.0 .0, e.key.0 .1, e.event)
                }
                Impl::Calendar(c) => c.pop_if_le(t)?,
            };
            self.raw -= 1;
            self.popped += 1;
            if self.needs_shrink && self.raw == 0 {
                self.shrink_after_drain();
                self.needs_shrink = false;
            }
            return Some((at, event));
        }
        loop {
            let key = match &mut self.imp {
                Impl::Heap(h) => h.peek().map(|e| e.key.0),
                Impl::Calendar(c) => c.peek_key(),
            };
            let (at, seq) = key?;
            if !self.cancelled.is_empty() && self.cancelled.contains(&seq) {
                self.cancelled.remove(&seq);
                self.pop_raw();
                continue;
            }
            if at > t {
                return None;
            }
            let (at, seq, event) = self.pop_raw().expect("peeked entry vanished");
            if !self.cancellable.is_empty() {
                self.cancellable.remove(&seq);
            }
            self.popped += 1;
            if self.needs_shrink && self.raw == 0 {
                self.shrink_after_drain();
                self.needs_shrink = false;
            }
            return Some((at, event));
        }
    }

    /// Timestamp of the next live event without removing it.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Skim off cancelled entries so the reported time is a live event's.
        loop {
            let key = match &mut self.imp {
                Impl::Heap(h) => h.peek().map(|e| e.key.0),
                Impl::Calendar(c) => c.peek_key(),
            };
            let (at, seq) = key?;
            if !self.cancelled.is_empty() && self.cancelled.contains(&seq) {
                self.cancelled.remove(&seq);
                self.pop_raw();
                continue;
            }
            return Some(at);
        }
    }

    /// Number of live (non-cancelled) events currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.raw - self.cancelled.len()
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed so far (for perf reporting).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Deepest the queue has been since creation (for perf reporting).
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// The calendar scheduler's current adaptive bucket width (log2 ps);
    /// `None` on the heap scheduler. A perf-diagnostic stat.
    pub fn bucket_bits(&self) -> Option<u32> {
        match &self.imp {
            Impl::Heap(_) => None,
            Impl::Calendar(c) => Some(c.bucket_bits()),
        }
    }

    /// Allocated entry slots (heap capacity, or the calendar's staging +
    /// overflow + bucket slots).
    pub fn capacity(&self) -> usize {
        match &self.imp {
            Impl::Heap(h) => h.capacity(),
            Impl::Calendar(c) => c.capacity(),
        }
    }

    /// Snapshot support: remove **every** queued entry — live and
    /// cancelled tombstones alike — in `(time, seq)` order. Both schedulers
    /// yield the identical sequence, so bytes serialized from the result
    /// are scheduler-independent. The `popped`/`peak` counters are not
    /// touched; pair with [`reinsert_for_snapshot`](Self::reinsert_for_snapshot)
    /// to put the entries back (or to load a restored set).
    pub fn drain_for_snapshot(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut v = Vec::with_capacity(self.raw);
        while let Some(e) = self.pop_raw() {
            v.push(e);
        }
        v
    }

    /// Snapshot support: insert an entry with an **explicit** sequence
    /// number (the inverse of [`drain_for_snapshot`](Self::drain_for_snapshot)).
    /// Bypasses the sequence counter and the peak/shrink bookkeeping so a
    /// drain-serialize-reinsert cycle leaves the queue's observable
    /// behaviour — pop order and reported statistics — unchanged.
    pub fn reinsert_for_snapshot(&mut self, at: SimTime, seq: u64, event: E) {
        match &mut self.imp {
            Impl::Heap(h) => h.push(Entry {
                key: Reverse((at, seq)),
                event,
            }),
            Impl::Calendar(c) => c.push(at, seq, event),
        }
        self.raw += 1;
    }

    /// Snapshot support: the queue's counters `(seq, popped, peak)`.
    pub fn snapshot_counters(&self) -> (u64, u64, u64) {
        (self.seq, self.popped, self.peak as u64)
    }

    /// Snapshot support: overwrite the counters captured by
    /// [`snapshot_counters`](Self::snapshot_counters).
    pub fn restore_counters(&mut self, seq: u64, popped: u64, peak: u64) {
        self.seq = seq;
        self.popped = popped;
        self.peak = peak as usize;
        self.needs_shrink = self.raw.saturating_sub(self.cancelled.len()) > self.initial_cap;
    }

    /// Snapshot support: the live-cancellable and cancelled-tombstone seq
    /// sets, each sorted so serialization is deterministic.
    pub fn snapshot_cancel_sets(&self) -> (Vec<u64>, Vec<u64>) {
        let mut a: Vec<u64> = self.cancellable.iter().copied().collect();
        let mut b: Vec<u64> = self.cancelled.iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        (a, b)
    }

    /// Snapshot support: overwrite the cancel sets captured by
    /// [`snapshot_cancel_sets`](Self::snapshot_cancel_sets).
    pub fn restore_cancel_sets(&mut self, cancellable: Vec<u64>, cancelled: Vec<u64>) {
        self.cancellable = cancellable.into_iter().collect();
        self.cancelled = cancelled.into_iter().collect();
    }

    /// Release memory accumulated during a burst, back down to the initial
    /// capacity. Called automatically whenever the queue drains; safe (and
    /// cheap) to call at any time — it never affects event order.
    pub fn shrink_after_drain(&mut self) {
        match &mut self.imp {
            Impl::Heap(h) => h.shrink_to(self.initial_cap),
            Impl::Calendar(c) => c.shrink_to(self.initial_cap),
        }
        self.cancelled.shrink_to_fit();
        self.cancellable.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn both() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_scheduler(SchedulerKind::Heap),
            EventQueue::with_scheduler(SchedulerKind::Calendar),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(SimTime::ZERO + Dur::us(3), 3);
            q.push(SimTime::ZERO + Dur::us(1), 1);
            q.push(SimTime::ZERO + Dur::us(2), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn fifo_within_same_timestamp() {
        for mut q in both() {
            let t = SimTime::ZERO + Dur::us(5);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                let (at, v) = q.pop().unwrap();
                assert_eq!(at, t);
                assert_eq!(v, i);
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in both() {
            q.push(SimTime(10), 0);
            assert_eq!(q.peek_time(), Some(SimTime(10)));
            assert_eq!(q.len(), 1);
            q.pop();
            assert_eq!(q.peek_time(), None);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn counts_processed() {
        for mut q in both() {
            for i in 0..10u64 {
                q.push(SimTime(i), i);
            }
            while q.pop().is_some() {}
            assert_eq!(q.events_processed(), 10);
        }
    }

    #[test]
    fn tracks_peak_depth() {
        for mut q in both() {
            assert_eq!(q.peak_len(), 0);
            q.push(SimTime(1), 0);
            q.push(SimTime(2), 0);
            q.push(SimTime(3), 0);
            q.pop();
            q.pop();
            q.push(SimTime(4), 0);
            assert_eq!(q.peak_len(), 3, "peak survives drains");
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for mut q in both() {
            q.push(SimTime(5), 5u64);
            q.push(SimTime(1), 1);
            assert_eq!(q.pop().unwrap().0, SimTime(1));
            q.push(SimTime(3), 3);
            q.push(SimTime(2), 2);
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        }
    }

    #[test]
    fn thread_scheduler_is_scoped() {
        assert_eq!(thread_scheduler(), SchedulerKind::Calendar);
        set_thread_scheduler(SchedulerKind::Heap);
        assert_eq!(EventQueue::<()>::new().scheduler(), SchedulerKind::Heap);
        let other = std::thread::spawn(|| EventQueue::<()>::new().scheduler())
            .join()
            .unwrap();
        assert_eq!(other, SchedulerKind::Calendar, "override is per-thread");
        set_thread_scheduler(SchedulerKind::Calendar);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        for mut q in both() {
            q.push(SimTime(1), 1);
            let h = q.push_cancellable(SimTime(2), 2);
            q.push(SimTime(3), 3);
            assert_eq!(q.len(), 3);
            assert!(q.cancel(h));
            assert!(!q.cancel(h), "double cancel is a no-op");
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.peek_time(), Some(SimTime(3)), "peek skips cancelled");
            assert_eq!(q.pop().unwrap().1, 3);
            assert!(q.pop().is_none());
            assert_eq!(q.events_processed(), 2, "cancelled events don't count");
        }
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        for mut q in both() {
            let h = q.push_cancellable(SimTime(1), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            assert!(!q.cancel(h));
        }
    }

    #[test]
    fn with_capacity_and_shrink_after_drain() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(SchedulerKind::Heap, 16);
        assert!(q.capacity() >= 16);
        for i in 0..100_000u64 {
            q.push(SimTime(i), i);
        }
        assert!(q.capacity() >= 100_000, "burst grows the heap");
        while q.pop().is_some() {}
        assert!(
            q.capacity() <= 64,
            "drain shrinks back to near the initial capacity (got {})",
            q.capacity()
        );
        assert_eq!(q.peak_len(), 100_000, "peak still reflects the burst");
    }

    #[test]
    fn default_capacity_no_longer_hardcoded() {
        let q: EventQueue<u64> = EventQueue::with_capacity(SchedulerKind::Heap, 4);
        assert!(q.capacity() < DEFAULT_CAPACITY);
    }
}
