//! Hang and livelock detection for simulation runs.
//!
//! A discrete-event simulation can get stuck in three distinct ways: the
//! event population explodes (runaway feedback loop), wall-clock time blows
//! past any reasonable budget (pathological slowdown), or simulation time
//! stops advancing because events keep scheduling more events at the same
//! instant (a zero-delay livelock). A [`Watchdog`] armed with a
//! [`WatchdogSpec`] observes every handled event and trips on the first
//! exceeded budget, letting the driver abort the run with a diagnostic
//! [`WatchdogReport`] instead of spinning forever.
//!
//! The watchdog follows the workspace's zero-cost-when-disabled contract:
//! drivers hold an `Option<Watchdog>` and only call
//! [`observe`](Watchdog::observe) when one is installed. `observe` itself is
//! a handful of integer compares; the wall clock is sampled only once every
//! [`WALL_CHECK_MASK`]`+1` events so the hot loop never syscalls.
//!
//! Determinism: the event-count and same-instant budgets are functions of
//! the simulated event stream alone, so a trip (and the resulting report)
//! replays bit-identically from a seed. The wall-clock budget is inherently
//! nondeterministic — use it as a last-resort backstop and keep it out of
//! byte-compared output (reports expose the reason, not elapsed wall time).

use crate::time::SimTime;
use std::time::{Duration, Instant};

/// The wall clock is consulted once every `WALL_CHECK_MASK + 1` observed
/// events (must be a power of two minus one).
pub const WALL_CHECK_MASK: u64 = 0xFFF;

/// Budgets for one run. Unset budgets are not checked.
#[derive(Clone, Copy, Debug, Default)]
pub struct WatchdogSpec {
    /// Trip after this many observed events.
    pub max_events: Option<u64>,
    /// Trip once the run has consumed this much wall-clock time (checked
    /// every [`WALL_CHECK_MASK`]`+1` events).
    pub max_wall: Option<Duration>,
    /// Trip after this many consecutive events at one simulation instant
    /// (zero-delay livelock detection).
    pub max_events_per_instant: Option<u64>,
}

/// Which budget tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The event-count budget was exhausted.
    EventBudget,
    /// The wall-clock budget was exhausted.
    WallClock,
    /// Simulation time stopped advancing (same-instant event streak).
    TimeStuck,
}

impl TripReason {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            TripReason::EventBudget => "event_budget",
            TripReason::WallClock => "wall_clock",
            TripReason::TimeStuck => "time_stuck",
        }
    }
}

/// Diagnostic snapshot built by the driver when its watchdog trips.
#[derive(Clone, Debug)]
pub struct WatchdogReport {
    /// Which budget tripped.
    pub reason: TripReason,
    /// Simulation time at the trip.
    pub at: SimTime,
    /// Events the watchdog observed before tripping.
    pub events_observed: u64,
    /// Pending events in the scheduler queue at the trip.
    pub queue_len: usize,
    /// The driver's current phase label (e.g. `"run"`, `"drain"`).
    pub phase: &'static str,
    /// The most frequently handled event kind so far (the likely culprit).
    pub hottest_event: &'static str,
    /// How many times the hottest kind was handled.
    pub hottest_count: u64,
}

impl WatchdogReport {
    /// Render as JSON. Contains only deterministic fields (no wall-clock
    /// measurements), so reports from event-budget and same-instant trips
    /// byte-compare across schedulers and job counts.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj()
            .with("reason", Json::Str(self.reason.name().to_string()))
            .with("at_ps", Json::num_u64(self.at.as_ps()))
            .with("events_observed", Json::num_u64(self.events_observed))
            .with("queue_len", Json::num_u64(self.queue_len as u64))
            .with("phase", Json::Str(self.phase.to_string()))
            .with("hottest_event", Json::Str(self.hottest_event.to_string()))
            .with("hottest_count", Json::num_u64(self.hottest_count))
    }
}

/// Live watchdog state: call [`observe`](Watchdog::observe) after every
/// handled event; a `Some(reason)` return means the run must abort.
#[derive(Debug)]
pub struct Watchdog {
    spec: WatchdogSpec,
    events: u64,
    last_now: SimTime,
    instant_streak: u64,
    /// Set on the first observation so installation cost is nil.
    wall_start: Option<Instant>,
}

impl Watchdog {
    /// Arm a watchdog with the given budgets.
    pub fn new(spec: WatchdogSpec) -> Watchdog {
        Watchdog {
            spec,
            events: 0,
            last_now: SimTime::ZERO,
            instant_streak: 0,
            wall_start: None,
        }
    }

    /// The armed budgets.
    pub fn spec(&self) -> &WatchdogSpec {
        &self.spec
    }

    /// Events observed so far.
    pub fn events_observed(&self) -> u64 {
        self.events
    }

    /// Record one handled event at simulation time `now`. Returns the trip
    /// reason when a budget is exhausted; the caller should abort the run
    /// and surface a [`WatchdogReport`].
    #[inline]
    pub fn observe(&mut self, now: SimTime) -> Option<TripReason> {
        self.events += 1;
        if now != self.last_now {
            self.last_now = now;
            self.instant_streak = 1;
        } else {
            self.instant_streak += 1;
            if let Some(cap) = self.spec.max_events_per_instant {
                if self.instant_streak > cap {
                    return Some(TripReason::TimeStuck);
                }
            }
        }
        if let Some(cap) = self.spec.max_events {
            if self.events > cap {
                return Some(TripReason::EventBudget);
            }
        }
        if let Some(budget) = self.spec.max_wall {
            if self.events & WALL_CHECK_MASK == 0 {
                let start = *self.wall_start.get_or_insert_with(Instant::now);
                if start.elapsed() > budget {
                    return Some(TripReason::WallClock);
                }
            }
        }
        None
    }
}

impl crate::snap::Snapshot for Watchdog {
    // The spec is configuration. `wall_start` is deliberately excluded: wall
    // time must never enter a snapshot, so a restored run's wall budget
    // restarts from the restore point.
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.events);
        w.u64(self.last_now.0);
        w.u64(self.instant_streak);
    }
}

impl crate::snap::Restore for Watchdog {
    fn restore(&mut self, r: &mut crate::snap::SnapReader) -> Result<(), crate::snap::SnapError> {
        self.events = r.u64()?;
        self.last_now = SimTime(r.u64()?);
        self.instant_streak = r.u64()?;
        self.wall_start = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn unbounded_spec_never_trips() {
        let mut w = Watchdog::new(WatchdogSpec::default());
        for i in 0..100_000u64 {
            assert_eq!(w.observe(SimTime(i % 3)), None);
        }
        assert_eq!(w.events_observed(), 100_000);
    }

    #[test]
    fn event_budget_trips_exactly_once_exceeded() {
        let mut w = Watchdog::new(WatchdogSpec {
            max_events: Some(10),
            ..WatchdogSpec::default()
        });
        for i in 0..10u64 {
            assert_eq!(w.observe(SimTime(i)), None, "event {i}");
        }
        assert_eq!(w.observe(SimTime(11)), Some(TripReason::EventBudget));
    }

    #[test]
    fn same_instant_streak_trips_time_stuck() {
        let mut w = Watchdog::new(WatchdogSpec {
            max_events_per_instant: Some(5),
            ..WatchdogSpec::default()
        });
        let t = SimTime::ZERO + Dur::us(3);
        for _ in 0..5 {
            assert_eq!(w.observe(t), None);
        }
        assert_eq!(w.observe(t), Some(TripReason::TimeStuck));
    }

    #[test]
    fn advancing_time_resets_the_streak() {
        let mut w = Watchdog::new(WatchdogSpec {
            max_events_per_instant: Some(3),
            ..WatchdogSpec::default()
        });
        for step in 1..50u64 {
            let t = SimTime(step * 1000);
            for _ in 0..3 {
                assert_eq!(w.observe(t), None);
            }
        }
    }

    #[test]
    fn wall_budget_trips_on_elapsed_time() {
        let mut w = Watchdog::new(WatchdogSpec {
            max_wall: Some(Duration::from_millis(1)),
            ..WatchdogSpec::default()
        });
        // First wall check (event 4096) starts the clock; busy-wait past the
        // budget and keep observing until the next check fires.
        let mut tripped = None;
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut i = 0u64;
        while tripped.is_none() && Instant::now() < deadline {
            i += 1;
            tripped = w.observe(SimTime(i));
            if i.is_multiple_of(4096) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert_eq!(tripped, Some(TripReason::WallClock));
    }

    #[test]
    fn report_json_is_deterministic_shape() {
        let r = WatchdogReport {
            reason: TripReason::TimeStuck,
            at: SimTime(42),
            events_observed: 7,
            queue_len: 3,
            phase: "run",
            hottest_event: "timer",
            hottest_count: 6,
        };
        let j = crate::json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(j.get("reason").unwrap().as_str(), Some("time_stuck"));
        assert_eq!(j.get("at_ps").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("hottest_event").unwrap().as_str(), Some("timer"));
        assert_eq!(j.get("phase").unwrap().as_str(), Some("run"));
    }
}
