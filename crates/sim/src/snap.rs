//! `xpass-snap/v1` — a versioned, zero-dependency binary snapshot format.
//!
//! Snapshots make long runs durable: the engine can serialize its complete
//! state mid-run, and a later process can restore it and continue with
//! **byte-identical** results (`tests/snapshot_determinism.rs` is the
//! fence). The format is hand-rolled in the same spirit as
//! [`crate::json`]: no external crates, fully deterministic output, and
//! errors that carry enough context to debug a bad file.
//!
//! ## File layout
//!
//! ```text
//! offset  size  field
//! 0       10    magic  b"xpass-snap"
//! 10      4     version (u32 LE, currently 1)
//! 14      4     CRC-32 (IEEE) of the body
//! 18      8     body length (u64 LE)
//! 26      ..    body
//! ```
//!
//! The body is a flat stream of little-endian primitives written by
//! [`SnapWriter`] and read back by [`SnapReader`]. There is no per-field
//! tagging — layout is defined by the [`Snapshot`]/[`Restore`]
//! implementations, which must mirror each other exactly — but every read
//! is bounds-checked and every sequence length is validated against the
//! remaining bytes, so a truncated or bit-flipped file produces a
//! [`SnapError`] (with the byte offset and a dotted context path), never a
//! panic, hang, or huge allocation.
//!
//! ## Contract
//!
//! * [`Snapshot::snap`] writes the *dynamic* state of a value; static
//!   configuration is rebuilt by re-running deterministic setup and is
//!   **not** serialized.
//! * [`Restore::restore`] overlays that state onto a freshly-built value
//!   (`&mut self`), consuming exactly the bytes `snap` wrote.
//! * **No wall-clock state** ever goes into a snapshot (`Instant`,
//!   `Duration`-since-start, events/sec): restores happen at a different
//!   wall time by definition, and byte-identity of results must not depend
//!   on when a run executed.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes at offset 0 of every snapshot file.
pub const MAGIC: [u8; 10] = *b"xpass-snap";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes of header before the body starts.
pub const HEADER_LEN: usize = 10 + 4 + 4 + 8;

/// A value that can serialize its dynamic state into a snapshot body.
pub trait Snapshot {
    /// Append this value's state to the writer.
    fn snap(&self, w: &mut SnapWriter);
}

/// A value that can overlay previously-snapshotted state onto itself.
///
/// The value is first rebuilt by deterministic setup (constructors,
/// topology, config); `restore` then replaces its dynamic state with the
/// snapshot's. Implementations must consume exactly the bytes the matching
/// [`Snapshot::snap`] wrote.
pub trait Restore {
    /// Overlay state from the reader; errors carry offset and context.
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError>;
}

/// A structured snapshot decoding error: absolute byte offset, dotted
/// context path (e.g. `network.ports[3].bucket`), and a message that spells
/// out expected vs found where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Absolute byte offset in the snapshot file where decoding failed.
    pub at: usize,
    /// Dotted path of the value being decoded when the error hit.
    pub path: String,
    /// Human-readable description (includes expected vs found values).
    pub msg: String,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "snapshot error at byte {}: {}", self.at, self.msg)
        } else {
            write!(
                f,
                "snapshot error at byte {} in {}: {}",
                self.at, self.path, self.msg
            )
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends little-endian primitives to a growing body buffer.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Fresh empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the body bytes.
    pub fn into_body(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a u32, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a u64, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a u128, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a usize as u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an f64 as its IEEE-754 bit pattern (exact round-trip,
    /// including NaN payloads and signed zero).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write `Some`/`None` plus the payload via a closure.
    pub fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut SnapWriter, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Write a sequence: length prefix, then each element via the closure.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut SnapWriter, &T)) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }
}

/// Reads the primitives [`SnapWriter`] writes, with bounds checking and a
/// context-path stack for error reporting.
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Added to `pos` in reported offsets, so errors point at absolute
    /// file offsets even though the reader only sees the body.
    base: usize,
    ctx: Vec<String>,
}

impl<'a> SnapReader<'a> {
    /// Reader over a body slice; `base` is the body's offset within the
    /// file (use [`HEADER_LEN`] for a full snapshot file, 0 for raw data).
    pub fn new(data: &'a [u8], base: usize) -> SnapReader<'a> {
        SnapReader {
            data,
            pos: 0,
            base,
            ctx: Vec::new(),
        }
    }

    /// Absolute offset of the next byte to be read.
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Push a context segment (shows up in error paths as `a.b.c`).
    pub fn enter(&mut self, name: impl Into<String>) {
        self.ctx.push(name.into());
    }

    /// Pop the innermost context segment.
    pub fn leave(&mut self) {
        self.ctx.pop();
    }

    /// Build an error at the current offset with the current context path.
    pub fn err(&self, msg: impl Into<String>) -> SnapError {
        SnapError {
            at: self.offset(),
            path: self.ctx.join("."),
            msg: msg.into(),
        }
    }

    /// Fail unless the stream is fully consumed (trailing garbage check).
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.pos != self.data.len() {
            return Err(self.err(format!(
                "expected end of snapshot, found {} trailing byte(s)",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated: {what} needs {n} byte(s), {} remain",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a bool; anything but 0/1 is a format error.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError {
                at: self.base + self.pos - 1,
                path: self.ctx.join("."),
                msg: format!("invalid bool: expected 0 or 1, found {b}"),
            }),
        }
    }

    /// Read a u32, little-endian.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a u64, little-endian.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a u128, little-endian.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        let b = self.take(16, "u128")?;
        Ok(u128::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a usize (stored as u64); fails if it overflows the platform.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("usize out of range: {v}")))
    }

    /// Read an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a sequence length written by [`SnapWriter::seq`], validated
    /// against the bytes remaining: each element needs at least
    /// `min_elem_bytes`, so a corrupted length cannot trigger a huge
    /// allocation or an unbounded loop.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.usize()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if n > cap {
            return Err(self.err(format!(
                "sequence length {n} impossible: only {} byte(s) remain \
                 (≥ {} needed per element)",
                self.remaining(),
                min_elem_bytes.max(1)
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.seq_len(1)?;
        Ok(self.take(n, "byte string")?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let at = self.offset();
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|e| SnapError {
            at,
            path: self.ctx.join("."),
            msg: format!("invalid UTF-8 in string: {e}"),
        })
    }

    /// Read an `Option` written by [`SnapWriter::opt`].
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut SnapReader<'a>) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table generated at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte slice — the body checksum in the file header.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// File envelope.
// ---------------------------------------------------------------------------

/// Wrap a body in the `xpass-snap/v1` envelope (magic, version, checksum,
/// length).
pub fn encode_file(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validate a snapshot file's envelope and return the body slice.
///
/// Errors name the offset and spell out expected vs found magic/version,
/// so a CLI can print an actionable diagnostic.
pub fn decode_file(file: &[u8]) -> Result<&[u8], SnapError> {
    let fail = |at: usize, msg: String| SnapError {
        at,
        path: "header".to_string(),
        msg,
    };
    if file.len() < HEADER_LEN {
        return Err(fail(
            0,
            format!(
                "file truncated: {} byte(s), the header alone needs {HEADER_LEN}",
                file.len()
            ),
        ));
    }
    if file[..10] != MAGIC {
        return Err(fail(
            0,
            format!(
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(&MAGIC),
                String::from_utf8_lossy(&file[..10])
            ),
        ));
    }
    let version = u32::from_le_bytes(file[10..14].try_into().unwrap());
    if version != VERSION {
        return Err(fail(
            10,
            format!("unsupported version: expected {VERSION}, found {version}"),
        ));
    }
    let want_crc = u32::from_le_bytes(file[14..18].try_into().unwrap());
    let body_len = u64::from_le_bytes(file[18..26].try_into().unwrap());
    let avail = (file.len() - HEADER_LEN) as u64;
    if body_len != avail {
        return Err(fail(
            18,
            format!("body length mismatch: header says {body_len} byte(s), file has {avail}"),
        ));
    }
    let body = &file[HEADER_LEN..];
    let got_crc = crc32(body);
    if got_crc != want_crc {
        return Err(fail(
            14,
            format!("checksum mismatch: expected {want_crc:#010x}, computed {got_crc:#010x}"),
        ));
    }
    Ok(body)
}

/// Read a snapshot file from disk, validate the envelope, and return the
/// body. I/O errors are reported as a [`SnapError`] at offset 0.
pub fn load(path: &Path) -> Result<Vec<u8>, SnapError> {
    let file = std::fs::read(path).map_err(|e| SnapError {
        at: 0,
        path: "io".to_string(),
        msg: format!("cannot read {}: {e}", path.display()),
    })?;
    let body = decode_file(&file)?;
    Ok(body.to_vec())
}

/// Atomically write `body` (wrapped in the envelope) to `path`: write to a
/// temporary sibling, fsync, then rename over the target. A crash mid-write
/// leaves either the old file or the new one, never a torn snapshot.
pub fn write_atomic(path: &Path, body: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&encode_file(body))?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Best effort: persist the rename itself.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.u128(u128::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::INFINITY);
        w.str("hello κόσμε");
        w.bytes(&[1, 2, 3]);
        w.opt(Some(&42u64), |w, v| w.u64(*v));
        w.opt::<u64>(None, |w, v| w.u64(*v));
        w.seq(&[10u64, 20, 30], |w, v| w.u64(*v));
        let body = w.into_body();

        let mut r = SnapReader::new(&body, 0);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert_eq!(r.str().unwrap(), "hello κόσμε");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(42));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        let n = r.seq_len(8).unwrap();
        let v: Vec<u64> = (0..n).map(|_| r.u64().unwrap()).collect();
        assert_eq!(v, vec![10, 20, 30]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let body = w.into_body();
        let mut r = SnapReader::new(&body[..4], 0);
        let e = r.u64().unwrap_err();
        assert!(e.msg.contains("truncated"), "{e}");
    }

    #[test]
    fn sequence_length_is_sanity_checked() {
        let mut w = SnapWriter::new();
        w.usize(1 << 40); // absurd length
        let body = w.into_body();
        let mut r = SnapReader::new(&body, 0);
        let e = r.seq_len(8).unwrap_err();
        assert!(e.msg.contains("impossible"), "{e}");
    }

    #[test]
    fn error_paths_carry_context() {
        let mut r = SnapReader::new(&[], 26);
        r.enter("network");
        r.enter("ports[3]");
        let e = r.u64().unwrap_err();
        assert_eq!(e.path, "network.ports[3]");
        assert_eq!(e.at, 26);
        assert!(e.to_string().contains("network.ports[3]"), "{e}");
    }

    #[test]
    fn envelope_round_trips() {
        let body = b"some snapshot body".to_vec();
        let file = encode_file(&body);
        assert_eq!(decode_file(&file).unwrap(), &body[..]);
    }

    #[test]
    fn envelope_rejects_bad_magic() {
        let mut file = encode_file(b"x");
        file[0] = b'X';
        let e = decode_file(&file).unwrap_err();
        assert_eq!(e.at, 0);
        assert!(e.msg.contains("expected") && e.msg.contains("found"), "{e}");
    }

    #[test]
    fn envelope_rejects_bad_version() {
        let mut file = encode_file(b"x");
        file[10] = 99;
        let e = decode_file(&file).unwrap_err();
        assert_eq!(e.at, 10);
        assert!(
            e.msg.contains("expected 1") && e.msg.contains("found 99"),
            "{e}"
        );
    }

    #[test]
    fn envelope_rejects_flipped_body_bit() {
        let mut file = encode_file(b"checksummed body");
        let last = file.len() - 1;
        file[last] ^= 0x10;
        let e = decode_file(&file).unwrap_err();
        assert!(e.msg.contains("checksum"), "{e}");
    }

    #[test]
    fn envelope_rejects_truncation_everywhere() {
        let file = encode_file(b"a longer snapshot body for truncation");
        for cut in 0..file.len() {
            let e = decode_file(&file[..cut]).unwrap_err();
            assert!(!e.msg.is_empty(), "cut at {cut} must error");
        }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join(format!("xpass-snap-test-{}", std::process::id()));
        let path = dir.join("a/b/ck.snap");
        write_atomic(&path, b"body bytes").unwrap();
        assert_eq!(load(&path).unwrap(), b"body bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let e = load(Path::new("/nonexistent/xpass.snap")).unwrap_err();
        assert!(e.msg.contains("cannot read"), "{e}");
    }
}
