//! Live metrics plane: a zero-dependency time-series registry with three
//! expositions.
//!
//! * [`Registry`] — counters, gauges, and fixed-bucket histograms with
//!   interned label sets. Hot-path updates go through pre-registered
//!   [`MetricId`]s (a plain index — no hashing per increment).
//! * [`Ring`] — an in-memory ring of time-series: one row of scalar
//!   samples per sampler tick, capped at a fixed number of ticks.
//! * `xpass-metrics/v1` — a JSONL series format ([`encode_jsonl`] /
//!   [`decode_jsonl`]) written by `xpass-repro --metrics <file>`.
//! * Prometheus-style text exposition ([`Registry::render_prometheus`],
//!   parsed back by [`parse_exposition`]) served live over HTTP (see
//!   [`crate::http`]).
//! * [`Plane`] — the cross-thread publishing surface: each simulation
//!   thread publishes pre-rendered views ([`JobView`]) under its job key;
//!   the HTTP server only ever reads the plane.
//!
//! Like tracing and checkpointing, the plane is **thread-scoped and
//! zero-cost when off**: with no context installed (the default),
//! [`register`] returns `None`, the engine's hot loops skip every metrics
//! check, and runs are byte-identical to a build without this module.
//! Sampling itself is observation-only — it never touches the RNG or the
//! event queue — so even a metrics-on run produces the same simulation
//! results as a metrics-off run.

use crate::json::{self, Json};
use crate::profile::SpanRecord;
use crate::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use crate::time::Dur;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Schema identifier of the JSONL series format.
pub const SCHEMA: &str = "xpass-metrics/v1";

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing `u64`.
    Counter,
    /// Instantaneous `f64`.
    Gauge,
    /// Fixed-bucket histogram (`le` upper bounds + sum + count).
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Handle to one registered series (family + label set). A plain index:
/// updates through it are O(1) with no hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(u32);

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    /// Histogram bucket upper bounds (ascending); empty otherwise.
    bounds: Vec<f64>,
}

/// One series: unified storage for all three kinds. A counter lives in
/// `count`, a gauge in `sum`, a histogram in all three fields.
struct Series {
    family: u32,
    labels: u32,
    count: u64,
    sum: f64,
    buckets: Vec<u64>,
}

/// The metric registry: families, interned label sets, and series values.
#[derive(Default)]
pub struct Registry {
    families: Vec<Family>,
    fam_idx: HashMap<String, u32>,
    label_sets: Vec<Vec<(String, String)>>,
    label_idx: HashMap<String, u32>,
    series: Vec<Series>,
    series_idx: HashMap<(u32, u32), u32>,
}

/// Canonical text form of a label set: `k="v",k="v"` in given order.
fn label_key(labels: &[(String, String)]) -> String {
    let mut s = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                '\n' => s.push_str("\\n"),
                c => s.push(c),
            }
        }
        s.push('"');
    }
    s
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind, bounds: &[f64]) -> u32 {
        if let Some(&i) = self.fam_idx.get(name) {
            let f = &self.families[i as usize];
            assert!(
                f.kind == kind,
                "metric {name} re-registered as {:?}, was {:?}",
                kind,
                f.kind
            );
            return i;
        }
        let i = self.families.len() as u32;
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            bounds: bounds.to_vec(),
        });
        self.fam_idx.insert(name.to_string(), i);
        i
    }

    fn intern_labels(&mut self, labels: &[(&str, &str)]) -> u32 {
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let key = label_key(&owned);
        if let Some(&i) = self.label_idx.get(&key) {
            return i;
        }
        let i = self.label_sets.len() as u32;
        self.label_sets.push(owned);
        self.label_idx.insert(key, i);
        i
    }

    fn register(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> MetricId {
        let fam = self.family(name, help, kind, bounds);
        let lab = self.intern_labels(labels);
        if let Some(&i) = self.series_idx.get(&(fam, lab)) {
            return MetricId(i);
        }
        let i = self.series.len() as u32;
        let n_buckets = self.families[fam as usize].bounds.len();
        self.series.push(Series {
            family: fam,
            labels: lab,
            count: 0,
            sum: 0.0,
            buckets: vec![0; n_buckets],
        });
        self.series_idx.insert((fam, lab), i);
        MetricId(i)
    }

    /// Register (or look up) a counter series.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, MetricKind::Counter, labels, &[])
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, help, MetricKind::Gauge, labels, &[])
    }

    /// Register (or look up) a histogram series with these ascending
    /// bucket upper bounds (an implicit `+Inf` bucket is always rendered).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> MetricId {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        self.register(name, help, MetricKind::Histogram, labels, bounds)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: MetricId) {
        self.series[id.0 as usize].count += 1;
    }

    /// Add to a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, n: u64) {
        self.series[id.0 as usize].count += n;
    }

    /// Overwrite a counter with a running total maintained elsewhere.
    #[inline]
    pub fn set_counter(&mut self, id: MetricId, total: u64) {
        self.series[id.0 as usize].count = total;
    }

    /// Set a gauge (non-finite values are recorded as 0).
    #[inline]
    pub fn set(&mut self, id: MetricId, v: f64) {
        self.series[id.0 as usize].sum = if v.is_finite() { v } else { 0.0 };
    }

    /// Record one histogram observation.
    pub fn observe(&mut self, id: MetricId, v: f64) {
        let s = &mut self.series[id.0 as usize];
        let bounds = &self.families[s.family as usize].bounds;
        for (i, b) in bounds.iter().enumerate() {
            if v <= *b {
                s.buckets[i] += 1;
                break;
            }
        }
        s.count += 1;
        s.sum += v;
    }

    /// Current value of a counter series.
    pub fn counter_value(&self, id: MetricId) -> u64 {
        self.series[id.0 as usize].count
    }

    /// Current value of a gauge series.
    pub fn gauge_value(&self, id: MetricId) -> f64 {
        self.series[id.0 as usize].sum
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Keys (`name{labels}` / bare `name`) of every **scalar** series
    /// (counters and gauges) in registration order — the ring's column
    /// order and the JSONL header's `series` array.
    pub fn scalar_keys(&self) -> Vec<String> {
        self.scalar_series()
            .map(|s| {
                let f = &self.families[s.family as usize];
                let labels = &self.label_sets[s.labels as usize];
                if labels.is_empty() {
                    f.name.clone()
                } else {
                    format!("{}{{{}}}", f.name, label_key(labels))
                }
            })
            .collect()
    }

    fn scalar_series(&self) -> impl Iterator<Item = &Series> {
        self.series
            .iter()
            .filter(|s| self.families[s.family as usize].kind != MetricKind::Histogram)
    }

    /// Current values of every scalar series, aligned with
    /// [`scalar_keys`](Self::scalar_keys) (counters widen to `f64`).
    pub fn scalar_values(&self) -> Vec<f64> {
        self.scalar_series()
            .map(|s| match self.families[s.family as usize].kind {
                MetricKind::Counter => s.count as f64,
                _ => s.sum,
            })
            .collect()
    }

    /// Render the registry as Prometheus-style text exposition. `extra`
    /// labels (e.g. `job`, `net`) are prepended to every sample's label
    /// set.
    pub fn render_prometheus(&self, extra: &[(&str, &str)]) -> String {
        let extra: Vec<(String, String)> = extra
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut out = String::new();
        for (fi, f) in self.families.iter().enumerate() {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.name()));
            for s in self.series.iter().filter(|s| s.family as usize == fi) {
                let mut labels = extra.clone();
                labels.extend(self.label_sets[s.labels as usize].iter().cloned());
                match f.kind {
                    MetricKind::Counter => {
                        write_sample(&mut out, &f.name, &labels, s.count as f64);
                    }
                    MetricKind::Gauge => {
                        write_sample(&mut out, &f.name, &labels, s.sum);
                    }
                    MetricKind::Histogram => {
                        let mut cum = 0u64;
                        for (b, n) in f.bounds.iter().zip(&s.buckets) {
                            cum += n;
                            let mut ls = labels.clone();
                            ls.push(("le".to_string(), fmt_f64(*b)));
                            write_sample(&mut out, &format!("{}_bucket", f.name), &ls, cum as f64);
                        }
                        let mut ls = labels.clone();
                        ls.push(("le".to_string(), "+Inf".to_string()));
                        write_sample(&mut out, &format!("{}_bucket", f.name), &ls, s.count as f64);
                        write_sample(&mut out, &format!("{}_sum", f.name), &labels, s.sum);
                        write_sample(
                            &mut out,
                            &format!("{}_count", f.name),
                            &labels,
                            s.count as f64,
                        );
                    }
                }
            }
        }
        out
    }
}

/// `f64` in the plain decimal form both the exposition and its parser use.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_sample(out: &mut String, name: &str, labels: &[(String, String)], v: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(&label_key(labels));
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_f64(v));
    out.push('\n');
}

impl Snapshot for Registry {
    /// Values only: the family/label structure is deterministic setup
    /// state, re-created before a restore overlays onto it.
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.series.len());
        for s in &self.series {
            w.u64(s.count);
            w.f64(s.sum);
            w.seq(&s.buckets, |w, b| w.u64(*b));
        }
    }
}

impl Restore for Registry {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.seq_len(17)?;
        if n != self.series.len() {
            return Err(r.err(format!(
                "series count mismatch: configuration has {}, snapshot has {n}",
                self.series.len()
            )));
        }
        for s in &mut self.series {
            s.count = r.u64()?;
            s.sum = r.f64()?;
            let nb = r.seq_len(8)?;
            if nb != s.buckets.len() {
                return Err(r.err(format!(
                    "bucket count mismatch: configuration has {}, snapshot has {nb}",
                    s.buckets.len()
                )));
            }
            for b in &mut s.buckets {
                *b = r.u64()?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sampler ring
// ---------------------------------------------------------------------------

/// In-memory ring of time-series: one row of scalar samples per sampler
/// tick, all series sharing the tick timestamps. Oldest ticks are evicted
/// past `cap`.
pub struct Ring {
    cap: usize,
    ticks: VecDeque<u64>,
    rows: VecDeque<Vec<f64>>,
}

impl Ring {
    /// An empty ring holding at most `cap` ticks.
    pub fn new(cap: usize) -> Ring {
        Ring {
            cap: cap.max(1),
            ticks: VecDeque::new(),
            rows: VecDeque::new(),
        }
    }

    /// Record one tick at sim time `t_ps` with this row of scalar values.
    pub fn record(&mut self, t_ps: u64, row: Vec<f64>) {
        if let Some(first) = self.rows.front() {
            assert_eq!(first.len(), row.len(), "ring row width changed mid-run");
        }
        self.ticks.push_back(t_ps);
        self.rows.push_back(row);
        while self.ticks.len() > self.cap {
            self.ticks.pop_front();
            self.rows.pop_front();
        }
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True before the first recorded tick.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The recorded ticks in order: `(t_ps, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f64])> {
        self.ticks
            .iter()
            .zip(self.rows.iter())
            .map(|(t, r)| (*t, r.as_slice()))
    }
}

impl Snapshot for Ring {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.ticks.len());
        for (t, row) in self.ticks.iter().zip(self.rows.iter()) {
            w.u64(*t);
            w.seq(row, |w, v| w.f64(*v));
        }
    }
}

impl Restore for Ring {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.seq_len(9)?;
        self.ticks.clear();
        self.rows.clear();
        for _ in 0..n {
            let t = r.u64()?;
            let nv = r.seq_len(8)?;
            let row = (0..nv).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
            self.ticks.push_back(t);
            self.rows.push_back(row);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// xpass-metrics/v1 JSONL series format
// ---------------------------------------------------------------------------

/// One decoded (or to-be-encoded) series block: a header naming the job
/// and its series, followed by one row per sampler tick.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesDump {
    /// Job key (experiment name, with `/i` segments for nested fan-out).
    pub job: String,
    /// Network index within the job (creation order, 0-based).
    pub net: u64,
    /// Sampler interval in picoseconds.
    pub interval_ps: u64,
    /// Scalar series keys, in column order.
    pub keys: Vec<String>,
    /// `(t_ps, values)` per tick; `values.len() == keys.len()`.
    pub ticks: Vec<(u64, Vec<f64>)>,
}

/// Encode one series block as `xpass-metrics/v1` JSON Lines: a header
/// line, then one line per tick.
pub fn encode_jsonl(d: &SeriesDump) -> String {
    let header = Json::obj()
        .with("schema", Json::str(SCHEMA))
        .with("job", Json::str(&*d.job))
        .with("net", Json::num_u64(d.net))
        .with("interval_ps", Json::num_u64(d.interval_ps))
        .with("series", Json::Arr(d.keys.iter().map(Json::str).collect()));
    let mut out = format!("{header}\n");
    for (t, row) in &d.ticks {
        let line = Json::obj()
            .with("t_ps", Json::num_u64(*t))
            .with("v", Json::Arr(row.iter().map(|v| Json::Num(*v)).collect()));
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Decode an `xpass-metrics/v1` JSONL stream (one or more concatenated
/// series blocks). Total: every malformed input is an `Err`, never a
/// panic.
pub fn decode_jsonl(input: &str) -> Result<Vec<SeriesDump>, String> {
    let mut dumps: Vec<SeriesDump> = Vec::new();
    for (ln, line) in input.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        let j = json::parse(line).map_err(|e| format!("line {ln}: {e}"))?;
        if let Some(schema) = j.get("schema") {
            // Header line: starts a new block.
            if schema.as_str() != Some(SCHEMA) {
                return Err(format!(
                    "line {ln}: unsupported schema {:?} (expected {SCHEMA})",
                    schema.as_str().unwrap_or("<non-string>")
                ));
            }
            let job = j
                .get("job")
                .and_then(|v| v.as_str())
                .ok_or(format!("line {ln}: header missing string 'job'"))?
                .to_string();
            let net = j
                .get("net")
                .and_then(|v| v.as_u64())
                .ok_or(format!("line {ln}: header missing integer 'net'"))?;
            let interval_ps = j
                .get("interval_ps")
                .and_then(|v| v.as_u64())
                .ok_or(format!("line {ln}: header missing integer 'interval_ps'"))?;
            let keys = j
                .get("series")
                .and_then(|v| v.as_array())
                .ok_or(format!("line {ln}: header missing array 'series'"))?
                .iter()
                .map(|k| {
                    k.as_str()
                        .map(str::to_string)
                        .ok_or(format!("line {ln}: non-string series key"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            dumps.push(SeriesDump {
                job,
                net,
                interval_ps,
                keys,
                ticks: Vec::new(),
            });
        } else {
            let d = dumps
                .last_mut()
                .ok_or(format!("line {ln}: tick before any header"))?;
            let t = j
                .get("t_ps")
                .and_then(|v| v.as_u64())
                .ok_or(format!("line {ln}: tick missing integer 't_ps'"))?;
            let row = j
                .get("v")
                .and_then(|v| v.as_array())
                .ok_or(format!("line {ln}: tick missing array 'v'"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or(format!("line {ln}: non-numeric sample value"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if row.len() != d.keys.len() {
                return Err(format!(
                    "line {ln}: {} values for {} series",
                    row.len(),
                    d.keys.len()
                ));
            }
            d.ticks.push((t, row));
        }
    }
    Ok(dumps)
}

// ---------------------------------------------------------------------------
// Prometheus exposition parse-back
// ---------------------------------------------------------------------------

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpoSample {
    /// Metric name (for histograms, the `_bucket`/`_sum`/`_count` form).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse a Prometheus-style text exposition back into samples. Comments
/// (`# …`) and blank lines are skipped. Total: malformed input is an
/// `Err`, never a panic.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpoSample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {ln}: sample has no value")),
        };
        let name_ok = name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !name_ok {
            return Err(format!("line {ln}: invalid metric name"));
        }
        let (labels, value_str) = if let Some(body) = rest.strip_prefix('{') {
            let close = find_label_end(body).ok_or(format!("line {ln}: unterminated labels"))?;
            let labels = parse_labels(&body[..close]).map_err(|e| format!("line {ln}: {e}"))?;
            (labels, body[close + 1..].trim())
        } else {
            (Vec::new(), rest.trim())
        };
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {ln}: invalid value {v:?}"))?,
        };
        out.push(ExpoSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

/// Index of the `}` closing a label body, honouring quoted strings.
fn find_label_end(body: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in body.char_indices() {
        if escape {
            escape = false;
        } else if in_str {
            match c {
                '\\' => escape = true,
                '"' => in_str = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_str = true,
                '}' => return Some(i),
                _ => {}
            }
        }
    }
    None
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("invalid label name {key:?}"));
        }
        let after = rest[eq + 1..].trim_start();
        let inner = after.strip_prefix('"').ok_or("label value not quoted")?;
        let (value, used) = unescape_label_value(inner)?;
        out.push((key.to_string(), value));
        rest = inner[used..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

/// Unescape up to the closing quote; returns the value and the byte count
/// consumed **including** the closing quote.
fn unescape_label_value(s: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, other)) => return Err(format!("invalid escape \\{other}")),
                None => return Err("dangling escape".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated label value".to_string())
}

// ---------------------------------------------------------------------------
// Cross-thread publishing plane
// ---------------------------------------------------------------------------

/// Live per-flow/run progress, published alongside the exposition and
/// rendered by `/progress`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Progress {
    /// Simulation time reached.
    pub sim_secs: f64,
    /// Events processed so far.
    pub events: u64,
    /// Wall-clock event throughput so far.
    pub events_per_sec: f64,
    /// Flows added.
    pub flows_total: u64,
    /// Flows started but not yet settled.
    pub flows_active: u64,
    /// Flows completed.
    pub flows_completed: u64,
    /// Flows aborted by their endpoints.
    pub flows_aborted: u64,
}

impl Progress {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("sim_secs", Json::Num(self.sim_secs))
            .with("events", Json::num_u64(self.events))
            .with("events_per_sec", Json::Num(self.events_per_sec))
            .with("flows_total", Json::num_u64(self.flows_total))
            .with("flows_active", Json::num_u64(self.flows_active))
            .with("flows_completed", Json::num_u64(self.flows_completed))
            .with("flows_aborted", Json::num_u64(self.flows_aborted))
    }
}

/// Everything one simulated network publishes to the plane: pre-rendered
/// views, so the HTTP thread never touches live simulation state.
#[derive(Clone, Debug, Default)]
pub struct JobView {
    /// Prometheus text exposition (job/net labels baked in).
    pub exposition: String,
    /// Health report as JSON text, when monitors are installed.
    pub health: Option<String>,
    /// Engine report as JSON text.
    pub engine: String,
    /// Live progress.
    pub progress: Progress,
    /// The network's series ring encoded as `xpass-metrics/v1` JSONL.
    pub series_jsonl: String,
}

/// The shared publishing surface: simulation threads write [`JobView`]s
/// under their job key; the HTTP server (and the `--metrics` file writer)
/// only read. Keys are `job#netN` with `/i` segments for nested fan-out.
#[derive(Clone, Default)]
pub struct Plane {
    inner: Arc<Mutex<BTreeMap<String, JobView>>>,
}

impl Plane {
    /// A fresh, empty plane.
    pub fn new() -> Plane {
        Plane::default()
    }

    /// Publish (replace) the view under `key`.
    pub fn publish(&self, key: &str, view: JobView) {
        self.inner.lock().unwrap().insert(key.to_string(), view);
    }

    /// Concatenated Prometheus exposition of every published view, in key
    /// order.
    pub fn render_metrics(&self) -> String {
        let jobs = self.inner.lock().unwrap();
        let mut out = String::new();
        for view in jobs.values() {
            out.push_str(&view.exposition);
        }
        out
    }

    /// `/health`: `{"jobs":{key: <health report or null>}}`.
    pub fn render_health(&self) -> String {
        self.render_json_map(|v| v.health.clone().unwrap_or_else(|| "null".to_string()))
    }

    /// `/engine`: `{"jobs":{key: <engine report>}}`.
    pub fn render_engine(&self) -> String {
        self.render_json_map(|v| {
            if v.engine.is_empty() {
                "null".to_string()
            } else {
                v.engine.clone()
            }
        })
    }

    /// `/progress`: `{"jobs":{key: <progress>}}`.
    pub fn render_progress(&self) -> String {
        self.render_json_map(|v| v.progress.to_json().to_string())
    }

    /// Splice pre-rendered JSON values (trusted: produced by [`Json`])
    /// into a `{"jobs":{...}}` wrapper without re-parsing them.
    fn render_json_map(&self, f: impl Fn(&JobView) -> String) -> String {
        let jobs = self.inner.lock().unwrap();
        let mut out = String::from("{\"jobs\":{");
        for (i, (k, v)) in jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&Json::str(&**k).to_string());
            out.push(':');
            out.push_str(&f(v));
        }
        out.push_str("}}");
        out
    }

    /// Concatenated `xpass-metrics/v1` blocks for the given top-level job
    /// names, in the given order (nested-scope and per-net keys of a job
    /// ride along in key order). Used to write `--metrics <file>` in
    /// selection order, independent of `--jobs`.
    pub fn jsonl_for_jobs(&self, jobs_in_order: &[String]) -> String {
        let views = self.inner.lock().unwrap();
        let mut out = String::new();
        for job in jobs_in_order {
            for (key, view) in views.iter() {
                let root = key.split(['#', '/']).next().unwrap_or(key);
                if root == job {
                    out.push_str(&view.series_jsonl);
                }
            }
        }
        out
    }

    /// Attach a finished job's profiler spans to its first published view
    /// (in key order): any span samples a mid-run publish appended are
    /// replaced, the complete set is appended to that view's exposition,
    /// and the spans are spliced into its engine-report JSON. The driver
    /// calls this after a job's run returns — the outermost span guards
    /// close only *after* the last in-run publish, so the final spans can
    /// never ride an in-run publication.
    pub fn attach_spans(&self, job: &str, spans: &[SpanRecord]) {
        if spans.is_empty() {
            return;
        }
        let mut views = self.inner.lock().unwrap();
        let Some(view) = views
            .iter_mut()
            .find(|(k, _)| k.split(['#', '/']).next() == Some(job))
            .map(|(_, v)| v)
        else {
            return;
        };
        // Span samples are always the trailing block of an exposition.
        if let Some(at) = view.exposition.find("# HELP xpass_span_wall_seconds") {
            view.exposition.truncate(at);
        }
        view.exposition
            .push_str(&render_span_samples(spans, &[("job", job)]));
        if let Ok(mut eng) = json::parse(&view.engine) {
            if let Json::Obj(pairs) = &mut eng {
                pairs.retain(|(k, _)| k != "spans");
            }
            eng.set(
                "spans",
                Json::Arr(spans.iter().map(|s| s.to_json()).collect()),
            );
            view.engine = eng.to_string();
        }
    }

    /// Snapshot of all published progress rows (for heartbeats/tests).
    pub fn progress_rows(&self) -> Vec<(String, Progress)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.progress.clone()))
            .collect()
    }
}

/// Render profiler spans as Prometheus gauge samples (wall + sim seconds
/// per span path), with `extra` labels baked in. Span samples ride only
/// the live exposition — never the sampled ring.
pub fn render_span_samples(spans: &[SpanRecord], extra: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, help, pick) in [
        (
            "xpass_span_wall_seconds",
            "wall-clock time inside each profiler span",
            0,
        ),
        (
            "xpass_span_sim_seconds",
            "simulated time attributed to each profiler span",
            1,
        ),
    ] {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        for s in spans {
            out.push_str(name);
            out.push('{');
            for (k, v) in extra {
                out.push_str(&format!("{k}=\"{v}\","));
            }
            out.push_str(&format!(
                "span=\"{}\"}} {}\n",
                s.path,
                fmt_f64(if pick == 0 { s.wall_secs } else { s.sim_secs })
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Thread-scoped context (mirrors crate::checkpoint)
// ---------------------------------------------------------------------------

/// Sampler configuration carried by the thread context.
#[derive(Clone, Debug)]
pub struct MetricsSpec {
    /// Sim-time sampling interval.
    pub interval: Dur,
    /// Ring capacity in ticks (oldest evicted past this).
    pub ring_cap: usize,
    /// `--progress`: stderr heartbeat period in sim time, when on.
    pub progress_every: Option<Dur>,
}

impl Default for MetricsSpec {
    fn default() -> MetricsSpec {
        MetricsSpec {
            interval: Dur::ms(1),
            ring_cap: 4096,
            progress_every: None,
        }
    }
}

/// The thread-scoped metrics context: spec, optional shared plane, and
/// this job's key. Cloned into workers by the parallel harness.
#[derive(Clone)]
pub struct Ctx {
    spec: MetricsSpec,
    plane: Option<Plane>,
    job: String,
}

struct ThreadState {
    ctx: Ctx,
    /// Networks created so far in this scope (assigns the net index).
    nets: u64,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Install the metrics runtime on this thread. Call [`clear`] to tear
/// down (tests; the CLI just exits).
pub fn install(spec: MetricsSpec, plane: Option<Plane>) {
    STATE.with(|s| {
        *s.borrow_mut() = Some(ThreadState {
            ctx: Ctx {
                spec,
                plane,
                job: "main".to_string(),
            },
            nets: 0,
        });
    });
}

/// Remove this thread's metrics context.
pub fn clear() {
    STATE.with(|s| *s.borrow_mut() = None);
}

/// True when a metrics context is installed on this thread.
pub fn active() -> bool {
    STATE.with(|s| s.borrow().is_some())
}

/// Clone this thread's context (for propagation into workers).
pub fn current() -> Option<Ctx> {
    STATE.with(|s| s.borrow().as_ref().map(|st| st.ctx.clone()))
}

/// The shared plane of this thread's context, when one is installed and
/// publishing is on (the driver uses this to write `--metrics` files).
pub fn plane() -> Option<Plane> {
    STATE.with(|s| s.borrow().as_ref().and_then(|st| st.ctx.plane.clone()))
}

/// Install (or clear, with `None`) a context on this thread, returning
/// the previous one. The parallel harness brackets every job with this;
/// the swap resets the per-scope network counter.
pub fn swap(ctx: Option<Ctx>) -> Option<Ctx> {
    STATE.with(|s| {
        let prev = s.borrow_mut().take().map(|st| st.ctx);
        *s.borrow_mut() = ctx.map(|c| ThreadState { ctx: c, nets: 0 });
        prev
    })
}

/// Derive the context for job `i` of a fan-out under `parent` (the job
/// key gains a `/i` segment; [`set_job`] typically renames a top-level
/// job to its experiment name right after).
pub fn child_of(parent: &Ctx, i: u64) -> Ctx {
    let mut c = parent.clone();
    c.job = format!("{}/{i}", c.job);
    c
}

/// Rename the current scope's job key (called at job start, before any
/// network is created).
pub fn set_job(job: &str) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.ctx.job = job.to_string();
        }
    });
}

/// Hook handed to every `Network` created while a context is installed:
/// the spec, the plane to publish to, and this network's identity.
pub struct NetMetricsHook {
    /// Sampler configuration.
    pub spec: MetricsSpec,
    /// Shared plane, when serving/collecting.
    pub plane: Option<Plane>,
    /// Job key of the creating scope.
    pub job: String,
    /// Index of this network within the scope (creation order).
    pub net_index: u64,
}

impl NetMetricsHook {
    /// The plane key this network publishes under.
    pub fn plane_key(&self) -> String {
        format!("{}#net{}", self.job, self.net_index)
    }
}

/// Called by `Network::new`: assigns the network its index within the
/// current scope and returns its metrics hook, or `None` when no context
/// is installed (the common, zero-cost case).
pub fn register() -> Option<NetMetricsHook> {
    STATE.with(|s| {
        let mut b = s.borrow_mut();
        let st = b.as_mut()?;
        let net_index = st.nets;
        st.nets += 1;
        Some(NetMetricsHook {
            spec: st.ctx.spec.clone(),
            plane: st.ctx.plane.clone(),
            job: st.ctx.job.clone(),
            net_index,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> (Registry, MetricId, MetricId, MetricId) {
        let mut reg = Registry::new();
        let c = reg.counter("xpass_credits_sent_total", "credits emitted", &[]);
        let g = reg.gauge("xpass_data_queue_bytes", "queue depth", &[("dlink", "3")]);
        let h = reg.histogram("xpass_fct_seconds", "fct", &[], &[0.001, 0.01, 0.1]);
        (reg, c, g, h)
    }

    #[test]
    fn registration_interns_series() {
        let (mut reg, c, _, _) = sample_registry();
        let c2 = reg.counter("xpass_credits_sent_total", "credits emitted", &[]);
        assert_eq!(c, c2);
        let g2 = reg.gauge("xpass_data_queue_bytes", "queue depth", &[("dlink", "4")]);
        reg.set(g2, 9.0);
        assert_eq!(reg.series_count(), 4);
    }

    #[test]
    fn exposition_round_trips() {
        let (mut reg, c, g, h) = sample_registry();
        reg.add(c, 41);
        reg.inc(c);
        reg.set(g, 1500.0);
        reg.observe(h, 0.004);
        reg.observe(h, 5.0);
        let text = reg.render_prometheus(&[("job", "t")]);
        let samples = parse_exposition(&text).expect("parse back");
        let get = |name: &str, le: Option<&str>| {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && le
                            .is_none_or(|want| s.labels.iter().any(|(k, v)| k == "le" && v == want))
                })
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(get("xpass_credits_sent_total", None), 42.0);
        assert_eq!(get("xpass_data_queue_bytes", None), 1500.0);
        assert_eq!(get("xpass_fct_seconds_bucket", Some("0.01")), 1.0);
        assert_eq!(get("xpass_fct_seconds_bucket", Some("+Inf")), 2.0);
        assert_eq!(get("xpass_fct_seconds_count", None), 2.0);
        assert!(samples.iter().all(|s| {
            s.name.starts_with("xpass_fct_seconds")
                || s.labels.first().map(|(k, _)| k.as_str()) == Some("job")
        }));
    }

    #[test]
    fn jsonl_round_trips() {
        let (mut reg, c, g, _) = sample_registry();
        reg.add(c, 7);
        reg.set(g, 2.5);
        let mut ring = Ring::new(8);
        ring.record(1_000_000, reg.scalar_values());
        reg.add(c, 3);
        ring.record(2_000_000, reg.scalar_values());
        let dump = SeriesDump {
            job: "fig10".to_string(),
            net: 0,
            interval_ps: 1_000_000,
            keys: reg.scalar_keys(),
            ticks: ring.iter().map(|(t, r)| (t, r.to_vec())).collect(),
        };
        let text = encode_jsonl(&dump);
        let back = decode_jsonl(&text).expect("decode");
        assert_eq!(back, vec![dump]);
    }

    #[test]
    fn jsonl_decoder_rejects_malformed_input() {
        assert!(decode_jsonl("{\"t_ps\":1,\"v\":[]}").is_err(), "tick first");
        assert!(decode_jsonl("{\"schema\":\"nope/v9\"}").is_err());
        let ok = "{\"schema\":\"xpass-metrics/v1\",\"job\":\"a\",\"net\":0,\
                  \"interval_ps\":5,\"series\":[\"x\"]}\n";
        assert!(decode_jsonl(ok).is_ok());
        assert!(decode_jsonl(&format!("{ok}{{\"t_ps\":1,\"v\":[1,2]}}\n")).is_err());
    }

    #[test]
    fn ring_caps_and_snapshots() {
        let mut ring = Ring::new(2);
        for i in 0..5u64 {
            ring.record(i, vec![i as f64]);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.iter().map(|(t, _)| t).collect::<Vec<_>>(), vec![3, 4]);
        let mut w = SnapWriter::new();
        ring.snap(&mut w);
        let body = w.into_body();
        let mut twin = Ring::new(2);
        let mut r = SnapReader::new(&body, 0);
        twin.restore(&mut r).expect("restore");
        assert_eq!(
            twin.iter().collect::<Vec<_>>(),
            ring.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn registry_snapshot_overlays_values() {
        let (mut reg, c, g, h) = sample_registry();
        reg.add(c, 10);
        reg.set(g, 4.0);
        reg.observe(h, 0.05);
        let mut w = SnapWriter::new();
        reg.snap(&mut w);
        let body = w.into_body();
        let (mut twin, tc, tg, th) = sample_registry();
        let mut r = SnapReader::new(&body, 0);
        twin.restore(&mut r).expect("restore");
        assert_eq!(twin.counter_value(tc), 10);
        assert_eq!(twin.gauge_value(tg), 4.0);
        assert_eq!(twin.counter_value(th), 1);
        // A structurally different registry is rejected with a message.
        let mut other = Registry::new();
        other.counter("only_one", "x", &[]);
        let mut r = SnapReader::new(&body, 0);
        let e = other.restore(&mut r).unwrap_err();
        assert!(e.msg.contains("series count mismatch"), "{e}");
    }

    #[test]
    fn thread_context_registers_and_scopes() {
        clear();
        assert!(register().is_none(), "no context → no hook");
        install(MetricsSpec::default(), Some(Plane::new()));
        set_job("fig10");
        let h0 = register().expect("hook");
        let h1 = register().expect("hook");
        assert_eq!(h0.plane_key(), "fig10#net0");
        assert_eq!(h1.plane_key(), "fig10#net1");
        let parent = current().expect("ctx");
        let prev = swap(Some(child_of(&parent, 3)));
        let nested = register().expect("nested hook");
        assert_eq!(nested.plane_key(), "fig10/3#net0");
        swap(prev);
        clear();
    }

    #[test]
    fn plane_orders_jsonl_by_job_selection() {
        let plane = Plane::new();
        let view = |s: &str| JobView {
            series_jsonl: format!("{s}\n"),
            ..JobView::default()
        };
        plane.publish("fig10#net0", view("b"));
        plane.publish("fig1#net0", view("a"));
        plane.publish("fig10/2#net0", view("c"));
        let out = plane.jsonl_for_jobs(&["fig10".to_string(), "fig1".to_string()]);
        // fig10's keys (including the nested scope) come first, and the
        // "fig1" root never prefix-matches "fig10".
        assert_eq!(out, "b\nc\na\n");
    }

    #[test]
    fn exposition_parser_handles_escapes_and_rejects_garbage() {
        let samples =
            parse_exposition("m{k=\"a\\\"b\\\\c\"} 1\n# comment\n\nplain 2.5\n").expect("parse");
        assert_eq!(samples[0].labels[0].1, "a\"b\\c");
        assert_eq!(samples[1].value, 2.5);
        assert!(parse_exposition("m{k=\"v\" 1").is_err());
        assert!(parse_exposition("m{k=v} 1").is_err());
        assert!(parse_exposition("m}{ x").is_err());
        assert!(parse_exposition("1name 2").is_err());
    }
}
