//! Minimal hand-rolled HTTP/1.1 server for the live metrics plane.
//!
//! Zero dependencies: a std [`TcpListener`] on a background thread,
//! non-blocking accept with a sleep poll, one short-lived connection at a
//! time (`Connection: close`). It serves only pre-rendered text pulled
//! from a [`Plane`](crate::metrics::Plane) — request handling never
//! touches live simulation state, so a slow scraper cannot perturb a run.
//!
//! Routes: `/metrics` (Prometheus text), `/health`, `/engine`,
//! `/progress` (JSON), and `/` (plain-text index).
//!
//! The request parser ([`parse_request`]) is deliberately strict and
//! bounded — it is fuzzed in `tests/fuzz_robustness.rs` with the same
//! never-panic contract as the snapshot and JSON decoders.

use crate::metrics::Plane;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum bytes of request head (request line + headers) we will read.
pub const MAX_HEAD_BYTES: usize = 8192;
/// Maximum number of header lines accepted.
pub const MAX_HEADERS: usize = 64;

/// A parsed HTTP/1.x request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (e.g. `GET`).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
}

/// Parse an HTTP/1.x request head from raw bytes (everything up to and
/// excluding the blank line). Total: malformed input yields `Err`, never
/// a panic. Bounds: [`MAX_HEAD_BYTES`], [`MAX_HEADERS`].
pub fn parse_request(head: &[u8]) -> Result<Request, String> {
    if head.len() > MAX_HEAD_BYTES {
        return Err(format!("request head over {MAX_HEAD_BYTES} bytes"));
    }
    let text = std::str::from_utf8(head).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or("request line missing target")?;
    let version = parts.next().ok_or("request line missing version")?;
    if parts.next().is_some() {
        return Err("request line has too many fields".to_string());
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(format!("invalid method {method:?}"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version:?}"));
    }
    if !target.starts_with('/') {
        return Err(format!("target {target:?} is not origin-form"));
    }
    let path = target
        .split(['?', '#'])
        .next()
        .unwrap_or(target)
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(format!("more than {MAX_HEADERS} headers"));
        }
        let (name, value) = line.split_once(':').ok_or("header line without ':'")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!("invalid header name {name:?}"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        headers,
    })
}

/// A running metrics HTTP server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port) and
    /// serve `plane` on a background thread.
    pub fn serve(addr: &str, plane: Plane) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("xpass-http".to_string())
            .spawn(move || accept_loop(listener, plane, stop2))
            .expect("spawn http thread");
        Ok(Server {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, plane: Plane, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: responses are tiny pre-rendered strings,
                // so one connection at a time keeps the server trivial.
                let _ = handle_conn(stream, &plane);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Read the request head (up to the blank line or [`MAX_HEAD_BYTES`]).
fn read_head(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if let Some(i) = find_blank_line(&buf) {
            buf.truncate(i);
            return Ok(buf);
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Ok(buf); // parse_request will reject the oversize head
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(buf);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn handle_conn(mut stream: TcpStream, plane: &Plane) -> std::io::Result<()> {
    let head = read_head(&mut stream)?;
    let resp = match parse_request(&head) {
        Err(e) => response(
            400,
            "text/plain; charset=utf-8",
            &format!("bad request: {e}\n"),
        ),
        Ok(req) if req.method != "GET" && req.method != "HEAD" => {
            response(405, "text/plain; charset=utf-8", "method not allowed\n")
        }
        Ok(req) => {
            let body_included = req.method == "GET";
            let (status, ctype, body) = route(&req.path, plane);
            let mut r = response(status, ctype, &body);
            if !body_included {
                let head_end = find_blank_line(&r).map(|i| i + 4).unwrap_or(r.len());
                r.truncate(head_end);
            }
            return stream.write_all(&r);
        }
    };
    stream.write_all(&resp)
}

fn route(path: &str, plane: &Plane) -> (u16, &'static str, String) {
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            plane.render_metrics(),
        ),
        "/health" => (200, "application/json", plane.render_health()),
        "/engine" => (200, "application/json", plane.render_engine()),
        "/progress" => (200, "application/json", plane.render_progress()),
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "xpass-repro live metrics plane\n\
             /metrics   Prometheus text exposition\n\
             /health    per-job health reports (JSON)\n\
             /engine    per-job engine reports (JSON)\n\
             /progress  per-job run progress (JSON)\n"
                .to_string(),
        ),
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}

fn response(status: u16, ctype: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_get() {
        let req = parse_request(b"GET /metrics?x=1 HTTP/1.1\r\nHost: a\r\nUser-Agent: t\r\n")
            .expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.headers[0], ("host".to_string(), "a".to_string()));
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_request(b"").is_err());
        assert!(parse_request(b"GET").is_err());
        assert!(parse_request(b"GET /\r\n").is_err());
        assert!(parse_request(b"get / HTTP/1.1\r\n").is_err());
        assert!(parse_request(b"GET metrics HTTP/1.1\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/2\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1 extra\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\n\xffbad: utf8\r\n").is_err());
        let big = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(parse_request(&big).is_err());
        let many = format!("GET / HTTP/1.1\r\n{}", "h: v\r\n".repeat(MAX_HEADERS + 1));
        assert!(parse_request(many.as_bytes()).is_err());
    }
}
