//! Statistics collection: everything the paper's evaluation reports.
//!
//! * [`OnlineStats`] — streaming count/mean/min/max/variance (Welford).
//! * [`Percentiles`] — exact percentiles from retained samples (FCT tables).
//! * [`TimeWeighted`] — time-weighted average of a step function (queue
//!   occupancy in bytes over time).
//! * [`Histogram`] — log-spaced histogram for cheap distribution summaries.
//! * [`Cdf`] — CDF extraction for figures like Fig 6(b) and Fig 17.
//! * [`jain_fairness`] — Jain's fairness index (Fig 6a, Fig 15).

use crate::time::{Dur, SimTime};

/// Streaming statistics over a sequence of f64 observations.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Exact percentile computation over retained samples.
///
/// Experiments retain one f64 per flow (e.g. FCT in seconds); at ≤100k flows
/// this is a few hundred KB, so exactness beats sketching.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Empty collection.
    pub fn new() -> Percentiles {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (q ∈ [0,1]) using nearest-rank; 0 if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.samples[idx]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile — the paper's tail-latency headline metric.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample.
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().unwrap()
    }

    /// Minimum sample.
    pub fn min(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.samples[0]
    }

    /// The retained samples, sorted ascending.
    pub fn samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Absorb all of `other`'s samples (exact merge — the combined
    /// collection is identical to having added every sample here).
    pub fn merge(&mut self, other: &Percentiles) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Extract a CDF with at most `max_points` evenly spaced rank points.
    pub fn cdf(&mut self, max_points: usize) -> Cdf {
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 0 {
            return Cdf { points: vec![] };
        }
        let step = (n / max_points.max(1)).max(1);
        let mut points = Vec::with_capacity(n / step + 1);
        let mut i = step - 1;
        while i < n {
            points.push((self.samples[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if points.last().map(|&(_, p)| p) != Some(1.0) {
            points.push((self.samples[n - 1], 1.0));
        }
        Cdf { points }
    }
}

/// A cumulative distribution function as `(value, P[X ≤ value])` points.
#[derive(Clone, Debug)]
pub struct Cdf {
    /// Sorted `(value, cumulative probability)` pairs.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Value at a given cumulative probability (nearest point at or above).
    ///
    /// Binary search over the sorted probability column: `partition_point`
    /// finds the first point with `p >= q`, matching the former linear scan
    /// exactly (including `q` past the last point → last value, empty → 0).
    pub fn value_at(&self, q: f64) -> f64 {
        let idx = self.points.partition_point(|&(_, p)| p < q);
        match self.points.get(idx).or(self.points.last()) {
            Some(&(v, _)) => v,
            None => 0.0,
        }
    }
}

/// Time-weighted average/max of a right-continuous step function, e.g. queue
/// occupancy: `add` the new value at each change; `finish` at the horizon.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64, // ∫ v dt in (value × seconds)
    elapsed: f64,      // seconds integrated
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New accumulator; integration starts at the first `set`.
    pub fn new() -> TimeWeighted {
        TimeWeighted {
            last_t: SimTime::ZERO,
            last_v: 0.0,
            weighted_sum: 0.0,
            elapsed: 0.0,
            max: 0.0,
            started: false,
        }
    }

    /// Record that the tracked value becomes `v` at time `t`.
    pub fn set(&mut self, t: SimTime, v: f64) {
        if self.started {
            let dt = t.since(self.last_t).as_secs_f64();
            self.weighted_sum += self.last_v * dt;
            self.elapsed += dt;
        } else {
            self.started = true;
        }
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Close the integration window at `t` (keeps the current value).
    pub fn finish(&mut self, t: SimTime) {
        let v = self.last_v;
        self.set(t, v);
    }

    /// Time-weighted mean over the observed window (0 if no time elapsed).
    pub fn mean(&self) -> f64 {
        if self.elapsed <= 0.0 {
            0.0
        } else {
            self.weighted_sum / self.elapsed
        }
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A histogram with logarithmic (base-2) buckets over `[1, 2^63]`.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    zero: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            zero: 0,
        }
    }

    /// Add a non-negative integer observation.
    pub fn add(&mut self, v: u64) {
        self.count += 1;
        if v == 0 {
            self.zero += 1;
        } else {
            self.buckets[63 - v.leading_zeros() as usize] += 1;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (upper bucket bound at rank), 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero;
        if seen >= rank {
            return 0;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 = perfectly fair.
///
/// Empty or all-zero inputs return 1.0 (vacuously fair), matching how the
/// paper reports intervals where no flow made progress.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sumsq)
}

/// A fixed-interval time series sampler: record a value every `interval` and
/// keep the series for trace figures (Fig 13, Fig 16).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    interval: Dur,
    /// `(time, value)` samples.
    pub samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// New series with the given sampling interval (informational).
    pub fn new(interval: Dur) -> TimeSeries {
        TimeSeries {
            interval,
            samples: Vec::new(),
        }
    }

    /// Sampling interval.
    pub fn interval(&self) -> Dur {
        self.interval
    }

    /// Append a sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.samples.push((t, v));
    }

    /// Values only.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, v)| v).collect()
    }
}

// --- Snapshot/restore -------------------------------------------------------
//
// Accumulators capture their full dynamic state (configuration like a
// series' interval is rebuilt by setup). Floats round-trip via bit
// patterns, so a restored accumulator continues bit-identically.

use crate::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for OnlineStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }
}

impl Restore for OnlineStats {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.n = r.u64()?;
        self.mean = r.f64()?;
        self.m2 = r.f64()?;
        self.min = r.f64()?;
        self.max = r.f64()?;
        Ok(())
    }
}

impl Snapshot for Percentiles {
    fn snap(&self, w: &mut SnapWriter) {
        // Insertion order is preserved (not re-sorted) so a restored
        // collection behaves identically, including `sorted` laziness.
        w.bool(self.sorted);
        w.seq(&self.samples, |w, s| w.f64(*s));
    }
}

impl Restore for Percentiles {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.sorted = r.bool()?;
        let n = r.seq_len(8)?;
        self.samples = (0..n).map(|_| r.f64()).collect::<Result<_, _>>()?;
        Ok(())
    }
}

impl Snapshot for TimeWeighted {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.last_t.0);
        w.f64(self.last_v);
        w.f64(self.weighted_sum);
        w.f64(self.elapsed);
        w.f64(self.max);
        w.bool(self.started);
    }
}

impl Restore for TimeWeighted {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.last_t = SimTime(r.u64()?);
        self.last_v = r.f64()?;
        self.weighted_sum = r.f64()?;
        self.elapsed = r.f64()?;
        self.max = r.f64()?;
        self.started = r.bool()?;
        Ok(())
    }
}

impl Snapshot for Histogram {
    fn snap(&self, w: &mut SnapWriter) {
        w.seq(&self.buckets, |w, b| w.u64(*b));
        w.u64(self.count);
        w.u64(self.zero);
    }
}

impl Restore for Histogram {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.seq_len(8)?;
        self.buckets = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.count = r.u64()?;
        self.zero = r.u64()?;
        Ok(())
    }
}

impl Snapshot for TimeSeries {
    fn snap(&self, w: &mut SnapWriter) {
        w.seq(&self.samples, |w, (t, v)| {
            w.u64(t.0);
            w.f64(*v);
        });
    }
}

impl Restore for TimeSeries {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.seq_len(16)?;
        self.samples = (0..n)
            .map(|_| Ok((SimTime(r.u64()?), r.f64()?)))
            .collect::<Result<_, SnapError>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.add(i as f64);
        }
        assert_eq!(p.median(), 50.0);
        assert_eq!(p.p99(), 99.0);
        assert_eq!(p.quantile(1.0), 100.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.max(), 100.0);
        assert_eq!(p.min(), 1.0);
        assert_eq!(p.mean(), 50.5);
    }

    #[test]
    fn percentiles_interleaved_adds() {
        let mut p = Percentiles::new();
        p.add(5.0);
        assert_eq!(p.median(), 5.0);
        p.add(1.0);
        p.add(9.0);
        assert_eq!(p.median(), 5.0);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn percentiles_merge_is_exact() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        let mut all = Percentiles::new();
        for i in 0..50 {
            a.add((i * 7 % 50) as f64);
            all.add((i * 7 % 50) as f64);
        }
        for i in 0..30 {
            b.add((i * 13 % 100) as f64);
            all.add((i * 13 % 100) as f64);
        }
        a.merge(&b);
        a.merge(&Percentiles::new()); // empty merge is a no-op
        assert_eq!(a.count(), all.count());
        assert_eq!(a.samples(), all.samples());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn percentiles_samples_sorted_view() {
        let mut p = Percentiles::new();
        for x in [3.0, 1.0, 2.0] {
            p.add(x);
        }
        assert_eq!(p.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn cdf_value_at_boundaries() {
        let cdf = Cdf {
            points: vec![(10.0, 0.25), (20.0, 0.5), (30.0, 0.75), (40.0, 1.0)],
        };
        // At/below the first point's probability.
        assert_eq!(cdf.value_at(0.0), 10.0);
        assert_eq!(cdf.value_at(0.25), 10.0);
        // Exactly on and between interior points.
        assert_eq!(cdf.value_at(0.26), 20.0);
        assert_eq!(cdf.value_at(0.5), 20.0);
        assert_eq!(cdf.value_at(0.75), 30.0);
        // At and past the top.
        assert_eq!(cdf.value_at(1.0), 40.0);
        assert_eq!(cdf.value_at(1.5), 40.0);
        // Empty CDF.
        let empty = Cdf { points: vec![] };
        assert_eq!(empty.value_at(0.5), 0.0);
    }

    #[test]
    fn cdf_value_at_matches_linear_scan() {
        let mut p = Percentiles::new();
        for i in 1..=997 {
            p.add((i * 31 % 1000) as f64);
        }
        let cdf = p.cdf(50);
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let linear = cdf
                .points
                .iter()
                .find(|&&(_, pr)| pr >= q)
                .or(cdf.points.last())
                .map(|&(v, _)| v)
                .unwrap_or(0.0);
            assert_eq!(cdf.value_at(q), linear, "q={q}");
        }
    }

    #[test]
    fn cdf_extraction() {
        let mut p = Percentiles::new();
        for i in 1..=1000 {
            p.add(i as f64);
        }
        let cdf = p.cdf(10);
        assert!(cdf.points.len() <= 11);
        assert_eq!(cdf.points.last().unwrap().1, 1.0);
        let median = cdf.value_at(0.5);
        assert!((median - 500.0).abs() <= 100.0);
    }

    #[test]
    fn time_weighted_step_function() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 10.0);
        tw.set(SimTime::ZERO + Dur::secs(1), 20.0);
        tw.finish(SimTime::ZERO + Dur::secs(2));
        // 10 for 1s, 20 for 1s → mean 15.
        assert!((tw.mean() - 15.0).abs() < 1e-9);
        assert_eq!(tw.max(), 20.0);
    }

    #[test]
    fn time_weighted_empty() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(), 0.0);
        assert_eq!(tw.max(), 0.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.add(1);
        }
        for _ in 0..10 {
            h.add(1000);
        }
        assert_eq!(h.count(), 100);
        assert!(h.quantile(0.5) <= 2);
        assert!(h.quantile(0.99) >= 1000);
    }

    #[test]
    fn histogram_zeros() {
        let mut h = Histogram::new();
        h.add(0);
        h.add(0);
        h.add(8);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.quantile(1.0) >= 8);
    }

    #[test]
    fn jain_index_values() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogging: index → 1/n.
        let idx = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        // Textbook example.
        let idx = jain_fairness(&[4.0, 2.0]);
        assert!((idx - 0.9).abs() < 1e-12);
    }

    #[test]
    fn time_series_collects() {
        let mut ts = TimeSeries::new(Dur::ms(10));
        ts.push(SimTime::ZERO, 1.0);
        ts.push(SimTime::ZERO + Dur::ms(10), 2.0);
        assert_eq!(ts.values(), vec![1.0, 2.0]);
        assert_eq!(ts.interval(), Dur::ms(10));
    }
}
