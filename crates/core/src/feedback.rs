//! Algorithm 1 — the credit feedback controller.
//!
//! Runs at the receiver, once per update period (the flow's RTT). The
//! controller aims the credit sending rate at the *maximum* credit rate with
//! a binary-increase weight `w`, and on congestion (credit loss above the
//! 10 % target) multiplies the rate down to what actually got through. `w`
//! halves on every decrease and recovers toward `w_max` after two clean
//! periods, giving BIC-like fast convergence with exponentially improving
//! steady-state stability (§4).
//!
//! Rates here are in **credits per second**; one credit corresponds to one
//! maximum-size data frame, so `max_rate = link_bps / (8 · 1622)` credits/s.

use crate::config::XPassConfig;

/// Convert a link speed into the maximum credit rate in credits/second
/// (one credit per `84 + 1538 = 1622` byte-times).
#[inline]
pub fn max_credit_rate(link_bps: u64) -> f64 {
    link_bps as f64 / (8.0 * 1622.0)
}

/// A read-only view of the controller for telemetry, taken with
/// [`CreditFeedback::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeedbackSnapshot {
    /// Current credit sending rate (credits/s).
    pub rate: f64,
    /// Current aggressiveness factor `w`.
    pub w: f64,
    /// The rate ceiling `max_rate · (1 + target_loss)` (credits/s).
    pub ceiling: f64,
}

/// Algorithm 1 state for one flow.
#[derive(Clone, Debug)]
pub struct CreditFeedback {
    cfg: XPassConfig,
    /// Maximum credit rate for the path (credits/s).
    max_rate: f64,
    /// Current credit sending rate (credits/s).
    cur_rate: f64,
    /// Aggressiveness factor `w`.
    w: f64,
    /// Whether the previous period was an increasing phase.
    prev_increasing: bool,
}

impl CreditFeedback {
    /// New controller for a path whose bottleneck credit rate is
    /// `max_rate` credits/s.
    pub fn new(max_rate: f64, cfg: XPassConfig) -> CreditFeedback {
        cfg.validate();
        assert!(max_rate > 0.0);
        CreditFeedback {
            cfg,
            max_rate,
            cur_rate: cfg.alpha * max_rate,
            w: cfg.w_init,
            prev_increasing: false,
        }
    }

    /// Current credit sending rate in credits/s.
    pub fn rate(&self) -> f64 {
        self.cur_rate
    }

    /// Current aggressiveness factor.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// The ceiling `C = max_rate · (1 + target_loss)`.
    pub fn ceiling(&self) -> f64 {
        self.max_rate * (1.0 + self.cfg.target_loss)
    }

    /// Controller state at a point in time, for telemetry
    /// ([`TraceEvent::FeedbackUpdate`](xpass_sim::trace::TraceEvent)).
    pub fn snapshot(&self) -> FeedbackSnapshot {
        FeedbackSnapshot {
            rate: self.cur_rate,
            w: self.w,
            ceiling: self.ceiling(),
        }
    }

    /// One update period elapsed with the given measured credit loss
    /// fraction (`#dropped / #sent`). Returns the new rate.
    pub fn on_update(&mut self, credit_loss: f64) -> f64 {
        let loss = credit_loss.clamp(0.0, 1.0);
        if loss <= self.cfg.target_loss {
            // Increasing phase (Algorithm 1 lines 6–9).
            if self.prev_increasing {
                self.w = (self.w + self.cfg.w_max) / 2.0;
            }
            self.cur_rate = (1.0 - self.w) * self.cur_rate + self.w * self.ceiling();
            self.prev_increasing = true;
        } else {
            // Decreasing phase (lines 11–13): keep what got through, plus
            // the target overshoot.
            self.cur_rate = self.cur_rate * (1.0 - loss) * (1.0 + self.cfg.target_loss);
            self.w = (self.w / 2.0).max(self.cfg.w_min);
            self.prev_increasing = false;
        }
        let floor = self.max_rate * self.cfg.min_rate_frac;
        self.cur_rate = self.cur_rate.clamp(floor, self.ceiling());
        self.cur_rate
    }

    /// Failure-recovery reset (§4's reconvergence concern): after a
    /// detected credit-starvation episode — e.g. a failed link healed and
    /// credits flow again — restore `w` to its initial aggressiveness so
    /// the rate re-converges in a few RTTs instead of crawling up from
    /// `w_min` with steady-state caution.
    pub fn reset_w_for_recovery(&mut self) {
        self.w = self.cfg.w_init.clamp(self.cfg.w_min, self.cfg.w_max);
        self.prev_increasing = false;
    }
}

impl xpass_sim::Snapshot for CreditFeedback {
    // `max_rate` is included even though it derives from the host link
    // speed: restoring overlays it onto a placeholder-constructed
    // controller, so the snapshot must be self-contained.
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        w.f64(self.max_rate);
        w.f64(self.cur_rate);
        w.f64(self.w);
        w.bool(self.prev_increasing);
    }
}

impl xpass_sim::Restore for CreditFeedback {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.max_rate = r.f64()?;
        self.cur_rate = r.f64()?;
        self.w = r.f64()?;
        self.prev_increasing = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> XPassConfig {
        XPassConfig::aggressive()
    }

    const MAX: f64 = 770_653.5; // 10G in credits/s ≈ 1e10/(8*1622)

    #[test]
    fn max_credit_rate_conversion() {
        let r = max_credit_rate(10_000_000_000);
        assert!((r - 10e9 / (8.0 * 1622.0)).abs() < 1e-6);
        // Sanity: ~770k credits/s at 10G → ~1.3us apart.
        assert!((1.0 / r - 1.2976e-6).abs() < 1e-9);
    }

    #[test]
    fn starts_at_alpha_fraction() {
        let fb = CreditFeedback::new(MAX, cfg().with_alpha_winit(0.25, 0.5));
        assert!((fb.rate() - 0.25 * MAX).abs() < 1e-6);
    }

    #[test]
    fn single_flow_rate_converges_to_ceiling() {
        // No loss ever → rate must approach max_rate·(1+target_loss).
        let mut fb = CreditFeedback::new(MAX, cfg());
        for _ in 0..50 {
            fb.on_update(0.0);
        }
        assert!(
            (fb.rate() - fb.ceiling()).abs() < 0.01 * MAX,
            "{}",
            fb.rate()
        );
    }

    #[test]
    fn fast_convergence_with_w_half() {
        // With w_init = 0.5 and clean periods, the gap to the ceiling
        // should shrink by ≥ half each period (paper: converges in a few
        // RTTs; Fig 8a shows 2 RTTs at α = 1).
        let mut fb = CreditFeedback::new(MAX, cfg());
        let mut gap = fb.ceiling() - fb.rate();
        for _ in 0..5 {
            fb.on_update(0.0);
            let new_gap = fb.ceiling() - fb.rate();
            assert!(new_gap <= gap * 0.51 + 1e-9);
            gap = new_gap;
        }
    }

    #[test]
    fn decrease_keeps_what_got_through() {
        let mut fb = CreditFeedback::new(MAX, cfg());
        // Force to ceiling.
        for _ in 0..30 {
            fb.on_update(0.0);
        }
        let r0 = fb.rate();
        let new = fb.on_update(0.5); // 50% credit loss
        let expect = r0 * 0.5 * 1.1;
        assert!((new - expect).abs() < 1e-6, "{new} vs {expect}");
    }

    #[test]
    fn w_halves_on_loss_and_recovers() {
        let mut fb = CreditFeedback::new(MAX, cfg());
        assert_eq!(fb.w(), 0.5);
        fb.on_update(0.9);
        assert_eq!(fb.w(), 0.25);
        fb.on_update(0.9);
        assert_eq!(fb.w(), 0.125);
        // First clean period: w unchanged (prev phase was decreasing).
        fb.on_update(0.0);
        assert_eq!(fb.w(), 0.125);
        // Second clean period: w moves halfway to w_max.
        fb.on_update(0.0);
        assert!((fb.w() - (0.125 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn w_never_below_w_min() {
        let mut fb = CreditFeedback::new(MAX, cfg());
        for _ in 0..64 {
            fb.on_update(1.0);
        }
        assert!((fb.w() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rate_floors_at_min_fraction() {
        let mut fb = CreditFeedback::new(MAX, cfg());
        for _ in 0..200 {
            fb.on_update(1.0);
        }
        let floor = MAX * XPassConfig::default().min_rate_frac;
        assert!((fb.rate() - floor).abs() < 1e-6);
    }

    #[test]
    fn rate_capped_at_ceiling() {
        let mut fb = CreditFeedback::new(MAX, cfg());
        for _ in 0..1000 {
            fb.on_update(0.0);
            assert!(fb.rate() <= fb.ceiling() + 1e-6);
        }
    }

    /// The §4 fixed point: N synchronized flows through one bottleneck
    /// converge so that even-period rates approach C/N and the oscillation
    /// amplitude D(t) approaches D* = C·w_min·(1 − 1/N).
    #[test]
    fn n_flows_converge_to_fair_share() {
        let n = 8usize;
        let c = MAX * 1.1; // ceiling
        let mut flows: Vec<CreditFeedback> = (0..n)
            .map(|i| {
                // Deliberately skewed initial rates.
                let mut cfg_i = cfg();
                cfg_i.alpha = 0.05 + 0.1 * i as f64 / n as f64;
                CreditFeedback::new(MAX, cfg_i)
            })
            .collect();
        // Synchronized-update discrete model: total demand T = Σ rates;
        // each flow's measured loss is max(0, 1 - C/T) (uniform drop).
        for _ in 0..800 {
            let total: f64 = flows.iter().map(|f| f.rate()).sum();
            let loss = if total > c { 1.0 - c / total } else { 0.0 };
            for f in flows.iter_mut() {
                f.on_update(loss);
            }
        }
        let fair = c / n as f64;
        for (i, f) in flows.iter().enumerate() {
            let r = f.rate();
            // At the fixed point rates alternate between C/N and
            // C/N·(1 + (N−1)·w_min); allow that band plus slack.
            assert!(
                (r - fair).abs() < 0.2 * fair,
                "flow {i}: rate {r:.0} vs fair {fair:.0}"
            );
        }
        // Jain's index of the final rates must be ~1.
        let rates: Vec<f64> = flows.iter().map(|f| f.rate()).collect();
        let j = xpass_sim::stats::jain_fairness(&rates);
        assert!(j > 0.99, "fairness {j}");
    }

    /// Total offered credit rate at steady state stays near the ceiling:
    /// utilization does not collapse.
    #[test]
    fn aggregate_rate_tracks_capacity() {
        let n = 16usize;
        let c = MAX * 1.1;
        let mut flows: Vec<CreditFeedback> =
            (0..n).map(|_| CreditFeedback::new(MAX, cfg())).collect();
        let mut totals = Vec::new();
        for period in 0..300 {
            let total: f64 = flows.iter().map(|f| f.rate()).sum();
            if period > 100 {
                totals.push(total);
            }
            let loss = if total > c { 1.0 - c / total } else { 0.0 };
            for f in flows.iter_mut() {
                f.on_update(loss);
            }
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        // Average admitted rate = min(total, C); total must hover at or
        // above C (slight overshoot is the design's utilization mechanism).
        assert!(mean >= c * 0.98, "mean aggregate {mean} vs C {c}");
        assert!(mean <= c * 1.6, "mean aggregate {mean} runaway");
    }
}
