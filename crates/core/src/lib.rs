//! # expresspass — credit-scheduled delay-bounded congestion control
//!
//! The primary contribution of *Credit-Scheduled Delay-Bounded Congestion
//! Control for Datacenters* (Cho, Jang, Han — SIGCOMM 2017), implemented on
//! the `xpass-net` packet-level substrate.
//!
//! ExpressPass inverts the usual congestion-control arrow: the **receiver**
//! emits small credit packets; every switch port and host NIC rate-limits
//! the credit class to `84/(84+1538) ≈ 5.18 %` of the link; a sender
//! transmits one maximum-size data frame per credit received. Because data
//! can only enter the network against credits that already traversed (and
//! were metered on) the reverse path, data queues are **bounded by path
//! delay spread** rather than by offered load, and data loss is eliminated.
//!
//! Components:
//!
//! * [`config`] — protocol parameters (α, w_init, w_min, target loss, jitter).
//! * [`feedback`] — Algorithm 1: the credit-rate feedback controller.
//! * [`endpoints`] — the sender / receiver state machines (Fig 7) as
//!   `xpass-net` endpoints, including credit pacing with jitter and
//!   randomized credit sizes (§3.1) and credit-sequence loss accounting.
//! * [`netcalc`] — the network-calculus machinery of §3.1 (Eq 1): per-port
//!   buffer bounds for hierarchical topologies (Table 1, Fig 5).
//! * [`analysis`] — the §4 discrete model: closed-form iteration of the
//!   feedback recurrences demonstrating convergence to fair share (Fig 12).

#![warn(missing_docs)]
pub mod analysis;
pub mod config;
pub mod endpoints;
pub mod feedback;
pub mod netcalc;

pub use config::XPassConfig;
pub use endpoints::{xpass_factory, XPassReceiver, XPassSender};
pub use feedback::{CreditFeedback, FeedbackSnapshot};
