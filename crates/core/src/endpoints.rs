//! The ExpressPass sender and receiver state machines (paper Fig 7) as
//! `xpass-net` endpoints.
//!
//! Roles:
//!
//! * **Sender** (at the flow source): opens with a SYN carrying the credit
//!   request; transmits exactly one data frame per arriving credit, echoing
//!   the credit's sequence number and timestamp; retransmits (go-back-N from
//!   the receiver's cumulative delivered count, carried in credits) only on
//!   triple-duplicate evidence; emits CREDIT_STOP after an idle timeout.
//! * **Receiver** (at the flow destination): on the credit request, starts
//!   pacing credits at the feedback-controlled rate with per-credit jitter
//!   and randomized 84–92 B sizes; measures credit loss from gaps in echoed
//!   credit sequence numbers; runs Algorithm 1 once per measured RTT.
//!
//! Reliability note: ExpressPass is engineered for zero data loss, so there
//! is no ack clock. The receiver advertises its cumulative delivered byte
//! count in every credit; if data is ever lost (undersized switch buffers),
//! the sender detects three credits with the same stalled count and rewinds.

use crate::config::XPassConfig;
use crate::feedback::{max_credit_rate, CreditFeedback};
use std::any::Any;
use xpass_net::endpoint::{Ctx, Endpoint, EndpointFactory, TimerSlot};
use xpass_net::ids::Side;
use xpass_net::packet::{
    ctrl, data_wire_size, flags, Packet, PktKind, CREDIT_SIZE, CREDIT_SIZE_MAX, CTRL_SIZE, MSS,
};
use xpass_sim::time::{Dur, SimTime};
use xpass_sim::trace::TraceEvent;
use xpass_sim::{Restore, Snapshot};

/// Timer kinds used by the ExpressPass endpoints.
mod timer {
    /// Receiver: send the next credit.
    pub const PACE: u8 = 1;
    /// Receiver: run the feedback update.
    pub const UPDATE: u8 = 2;
    /// Sender: idle timeout → CREDIT_STOP.
    pub const STOP: u8 = 3;
    /// Sender: SYN retransmission safety timer.
    pub const SYN_RTX: u8 = 4;
}

// --------------------------------------------------------------------------
// Sender
// --------------------------------------------------------------------------

/// ExpressPass sender endpoint.
pub struct XPassSender {
    cfg: XPassConfig,
    /// Next application byte offset to transmit.
    next_seq: u64,

    /// Duplicate-delivered-count evidence for loss recovery.
    last_ack: u64,
    dup_count: u32,
    stop_slot: TimerSlot,
    syn_slot: TimerSlot,
    /// SYN transmissions so far (first send included).
    syn_attempts: u32,
    /// Set once CREDIT_STOP has been sent.
    stopped: bool,
}

impl XPassSender {
    /// New sender.
    pub fn new(cfg: XPassConfig) -> XPassSender {
        XPassSender {
            cfg,
            next_seq: 0,
            last_ack: 0,
            dup_count: 0,
            stop_slot: TimerSlot::new(),
            syn_slot: TimerSlot::new(),
            syn_attempts: 0,
            stopped: false,
        }
    }

    /// Bytes the sender has transmitted at least once.
    pub fn bytes_sent(&self) -> u64 {
        self.next_seq
    }

    /// SYN transmissions so far.
    pub fn syn_attempts(&self) -> u32 {
        self.syn_attempts
    }

    fn send_syn(&mut self, ctx: &mut Ctx<'_>) {
        self.syn_attempts += 1;
        let mut p = ctx.make_pkt(PktKind::Ctrl, CTRL_SIZE);
        p.flag = ctrl::SYN;
        ctx.send(p);
        // Safety retransmit in case the SYN (or every early credit) is lost:
        // exponential backoff from the initial interval, capped so a healed
        // path is re-probed promptly after long outages.
        let base = self.cfg.init_update_period * 10;
        let shift = (self.syn_attempts - 1).min(16);
        let mut backoff = base * (1u64 << shift);
        if backoff > self.cfg.syn_rtx_cap {
            backoff = self.cfg.syn_rtx_cap;
        }
        self.syn_slot.arm(ctx, timer::SYN_RTX, backoff);
    }

    fn on_credit(&mut self, credit: &Packet, ctx: &mut Ctx<'_>) {
        // First credit proves the SYN arrived.
        self.syn_slot.cancel();
        let size = ctx.info().size_bytes;
        let delivered = credit.ack;

        if delivered >= size {
            // Receiver already has everything: pure waste.
            ctx.count_wasted_credit();
            return;
        }
        if delivered == self.last_ack {
            self.dup_count += 1;
        } else {
            self.last_ack = delivered;
            self.dup_count = 1;
        }
        if self.next_seq >= size {
            // Everything sent once; retransmit only on stall evidence.
            if self.dup_count >= 3 {
                self.next_seq = delivered; // go-back-N rewind
                self.dup_count = 0;
            } else {
                ctx.count_wasted_credit();
                return;
            }
        } else if self.dup_count >= 64 && self.next_seq > delivered {
            // Mid-flow hole: the receiver's cumulative count has not moved
            // for 64 credits (far beyond any reordering horizon) while we
            // kept sending — a data packet was lost. Go-back-N.
            self.next_seq = delivered;
            self.dup_count = 0;
        }

        let payload = MSS.min((size - self.next_seq) as u32);
        let mut p = ctx.make_pkt(PktKind::Data, data_wire_size(payload));
        p.payload = payload;
        p.seq = self.next_seq;
        p.ack = credit.seq; // echo credit sequence for loss accounting
        p.t_echo = credit.t_sent; // credit-loop RTT sample
        self.next_seq += payload as u64;
        if self.next_seq >= size {
            p.flag |= flags::FIN_DATA;
            self.stop_slot.arm(ctx, timer::STOP, self.cfg.stop_timeout);
        }
        ctx.send(p);
    }

    fn send_credit_stop(&mut self, ctx: &mut Ctx<'_>) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        let mut p = ctx.make_pkt(PktKind::Ctrl, CTRL_SIZE);
        p.flag = ctrl::CREDIT_STOP;
        ctx.send(p);
    }
}

impl Endpoint for XPassSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.send_syn(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        if pkt.kind == PktKind::Credit && !self.stopped {
            self.on_credit(pkt, ctx);
        }
    }

    fn on_timer(&mut self, kind: u8, gen: u64, ctx: &mut Ctx<'_>) {
        match kind {
            timer::STOP if self.stop_slot.matches(gen) => {
                if ctx.flow_done() {
                    // Idle and delivered: tell the receiver to stop.
                    self.send_credit_stop(ctx);
                } else {
                    // Data still missing (lost packets): keep the flow
                    // alive so arriving credits can trigger the rewind.
                    self.stop_slot.arm(ctx, timer::STOP, self.cfg.stop_timeout);
                }
            }
            timer::SYN_RTX if self.syn_slot.matches(gen) => {
                if self.stopped || ctx.flow_done() || ctx.flow_aborted() {
                    // Settled while the timer was in flight; nothing to do.
                } else if ctx.local_paused() || ctx.peer_paused() {
                    // A HostPause fault is deliberately freezing one of our
                    // hosts: unreachability is injected, not a dead peer.
                    // Keep the flow alive (without burning attempts) and
                    // re-probe after the pause lifts.
                    self.syn_slot.arm(ctx, timer::SYN_RTX, self.cfg.syn_rtx_cap);
                } else if self.syn_attempts >= self.cfg.syn_rtx_max {
                    // Connection establishment failed: the receiver is
                    // unreachable (blackholed path, dead host). Give up so
                    // the run can settle instead of retrying forever.
                    ctx.abort_flow();
                } else {
                    self.send_syn(ctx);
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn snap_state(&self, w: &mut xpass_sim::SnapWriter) {
        w.u64(self.next_seq);
        w.u64(self.last_ack);
        w.u32(self.dup_count);
        self.stop_slot.snap(w);
        self.syn_slot.snap(w);
        w.u32(self.syn_attempts);
        w.bool(self.stopped);
    }

    fn restore_state(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.next_seq = r.u64()?;
        self.last_ack = r.u64()?;
        self.dup_count = r.u32()?;
        self.stop_slot.restore(r)?;
        self.syn_slot.restore(r)?;
        self.syn_attempts = r.u32()?;
        self.stopped = r.bool()?;
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Receiver
// --------------------------------------------------------------------------

/// ExpressPass receiver endpoint: the active party of the protocol.
pub struct XPassReceiver {
    cfg: XPassConfig,
    feedback: Option<CreditFeedback>,
    /// Out-of-order reassembly buffer: byte offset → payload length.
    /// Host processing jitter reorders packets when it exceeds the
    /// serialization gap (routine at 100 G).
    ooo: std::collections::BTreeMap<u64, u32>,
    /// Next credit sequence number (1-based; 0 means none sent).
    credit_seq: u64,
    /// Highest credit sequence echoed by data so far.
    last_echo: u64,
    /// Per-update-period counters.
    period_recv: u64,
    period_lost: u64,
    period_sent: u64,
    /// Consecutive update periods with credits sent but nothing echoed.
    silent_periods: u32,
    /// Smoothed credit-loop RTT.
    srtt: Option<Dur>,
    pace_slot: TimerSlot,
    update_slot: TimerSlot,
    sending: bool,
    stopped: bool,
    /// §7 early-stop: pacing paused because the credits already in flight
    /// should cover the rest of the flow; the update watchdog resumes
    /// pacing if they turn out not to.
    paused: bool,
    /// Delivered-byte count at the previous update (watchdog progress check).
    delivered_at_update: u64,
    /// Time of the last forward delivery progress (stall detector).
    last_progress: SimTime,
    /// Whether the flow is currently flagged as stalled on its record.
    stall_flagged: bool,
}

impl XPassReceiver {
    /// New receiver.
    pub fn new(cfg: XPassConfig) -> XPassReceiver {
        XPassReceiver {
            cfg,
            feedback: None,
            ooo: std::collections::BTreeMap::new(),
            credit_seq: 0,
            last_echo: 0,
            period_recv: 0,
            period_lost: 0,
            period_sent: 0,
            silent_periods: 0,
            srtt: None,
            pace_slot: TimerSlot::new(),
            update_slot: TimerSlot::new(),
            sending: false,
            stopped: false,
            paused: false,
            delivered_at_update: 0,
            last_progress: SimTime::ZERO,
            stall_flagged: false,
        }
    }

    /// §7 preemptive stop: pause pacing once the expected survivors of the
    /// credits in flight cover the remaining bytes. Uses the flow size the
    /// simulator gives both endpoints (standing in for the send-buffer
    /// advertisement of [1] the paper cites).
    fn maybe_early_stop(&mut self, ctx: &Ctx<'_>) {
        if !self.cfg.early_credit_stop || self.paused || self.stopped {
            return;
        }
        let size = ctx.info().size_bytes;
        let delivered = ctx.delivered_bytes();
        if delivered >= size {
            return;
        }
        let in_flight = self.credit_seq.saturating_sub(self.last_echo);
        let expected_survivors = (in_flight as f64 * (1.0 - self.cfg.target_loss)) as u64;
        let remaining = (size - delivered).div_ceil(MSS as u64);
        if expected_survivors >= remaining {
            self.paused = true;
            self.pace_slot.cancel();
        }
    }

    /// Current credit sending rate in credits/s (0 before start).
    pub fn credit_rate(&self) -> f64 {
        self.feedback.as_ref().map_or(0.0, |f| f.rate())
    }

    /// Smoothed credit-loop RTT, once measured.
    pub fn srtt(&self) -> Option<Dur> {
        self.srtt
    }

    fn start_crediting(&mut self, ctx: &mut Ctx<'_>) {
        if self.sending || self.stopped {
            return;
        }
        self.sending = true;
        self.last_progress = ctx.now();
        if self.feedback.is_none() {
            let max = max_credit_rate(ctx.host_link_bps());
            self.feedback = Some(CreditFeedback::new(max, self.cfg));
        }
        // First credit immediately, then paced.
        self.send_credit(ctx);
        self.arm_pace(ctx);
        let period = self.update_period();
        self.update_slot.arm(ctx, timer::UPDATE, period);
    }

    fn stop_crediting(&mut self) {
        self.stopped = true;
        self.sending = false;
        self.pace_slot.cancel();
        self.update_slot.cancel();
    }

    /// The feedback update period: the measured RTT (the paper's default),
    /// identical for every flow regardless of its rate. Cadence uniformity
    /// is essential for fairness: if throttled flows measured over longer
    /// windows they would average across the aggregate's oscillation and
    /// never observe the under-utilized phases faster flows exploit.
    fn update_period(&self) -> Dur {
        let rtt = self.srtt.unwrap_or(self.cfg.init_update_period);
        rtt.clamp(Dur::us(20), Dur::ms(2))
    }

    fn send_credit(&mut self, ctx: &mut Ctx<'_>) {
        self.credit_seq += 1;
        self.period_sent += 1;
        let size = if self.cfg.randomize_credit_size {
            ctx.rng()
                .range_u64(CREDIT_SIZE as u64, CREDIT_SIZE_MAX as u64) as u32
        } else {
            CREDIT_SIZE
        };
        let mut p = ctx.make_pkt(PktKind::Credit, size);
        p.seq = self.credit_seq;
        p.ack = ctx.delivered_bytes(); // cumulative delivered advertisement
        ctx.send(p);
    }

    fn arm_pace(&mut self, ctx: &mut Ctx<'_>) {
        let fb = self.feedback.as_ref().expect("feedback exists when pacing");
        let rate = fb.rate().max(1.0);
        let base = Dur::from_secs_f64(1.0 / rate);
        // Jitter relative to the current inter-credit gap (Fig 6a's j).
        let spread = base.mul_f64(self.cfg.jitter);
        let delay = ctx.rng().jitter(base, spread);
        self.pace_slot.arm(ctx, timer::PACE, delay);
    }

    fn on_data(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        // Credit-loss accounting from the echoed credit sequence. Credits and
        // data follow symmetric FIFO paths, so echoes arrive in order.
        if pkt.ack > self.last_echo {
            self.period_lost += pkt.ack - self.last_echo - 1;
            self.period_recv += 1;
            self.last_echo = pkt.ack;
        } else {
            // Late echo of a credit already counted as a gap loss: credits
            // reorder when per-packet host processing delays vary (§2's
            // jitter model). Reclassify one loss as a receipt.
            self.period_recv += 1;
            self.period_lost = self.period_lost.saturating_sub(1);
        }
        // Credit-loop RTT sample.
        let rtt = ctx.now().since(pkt.t_echo);
        if pkt.t_echo > SimTime::ZERO && !rtt.is_zero() {
            self.srtt = Some(match self.srtt {
                Some(s) => s.mul_f64(0.875) + rtt.mul_f64(0.125),
                None => rtt,
            });
        }
        // In-order delivery with reassembly of reordered packets and
        // duplicate suppression (retransmissions may resend delivered bytes).
        let delivered = ctx.delivered_bytes();
        if pkt.seq > delivered {
            self.ooo.insert(pkt.seq, pkt.payload);
        } else {
            let end = pkt.seq + pkt.payload as u64;
            if end > delivered {
                ctx.deliver(end - delivered);
            }
            // Drain whatever became contiguous.
            loop {
                let head = ctx.delivered_bytes();
                let Some((&seq, &len)) = self.ooo.range(..=head).next() else {
                    break;
                };
                self.ooo.remove(&seq);
                let end = seq + len as u64;
                if end > head {
                    ctx.deliver(end - head);
                }
            }
        }

        if ctx.delivered_bytes() > delivered {
            self.last_progress = ctx.now();
            if self.stall_flagged {
                self.stall_flagged = false;
                ctx.set_stalled(false);
            }
        }

        if ctx.flow_done() {
            self.ooo.clear();
            self.stop_crediting();
        }
    }

    fn on_update(&mut self, ctx: &mut Ctx<'_>) {
        let fb = self.feedback.as_mut().expect("feedback exists");
        let observed = self.period_recv + self.period_lost;
        if observed > 0 {
            // Unbiased loss ratio, with the decrease capped at 50% per
            // period: at low rates a period may cover a single credit, and
            // a raw 1/1 loss would multiply the rate to zero on one unlucky
            // drop. The cap leaves steady-state dynamics (losses near the
            // 10% target) untouched.
            let loss = (self.period_lost as f64 / observed as f64).min(0.5);
            fb.on_update(loss);
            self.silent_periods = 0;
            ctx.note_feedback_update();
            if ctx.trace_enabled() {
                let snap = fb.snapshot();
                ctx.trace(TraceEvent::FeedbackUpdate {
                    at: ctx.now(),
                    flow: ctx.flow.0,
                    loss,
                    w: snap.w,
                    rate_cps: snap.rate,
                });
            }
        } else if self.period_sent >= 4 && self.srtt.is_some() {
            // A meaningful number of credits went out and nothing echoed.
            // One silent period can be in-flight timing; three in a row is
            // starvation — maximal decrease (everything dropped).
            self.silent_periods += 1;
            if self.silent_periods >= 3 {
                fb.on_update(1.0);
                // Starvation is a failure signal, not steady-state noise:
                // restore w to its initial aggressiveness so that when the
                // path heals (link back up, loss cleared) the rate closes
                // the gap to the ceiling in a few RTTs instead of crawling
                // with the post-decrease w near w_min.
                fb.reset_w_for_recovery();
                self.silent_periods = 0;
                ctx.note_feedback_update();
                if ctx.trace_enabled() {
                    let snap = fb.snapshot();
                    ctx.trace(TraceEvent::FeedbackUpdate {
                        at: ctx.now(),
                        flow: ctx.flow.0,
                        loss: 1.0,
                        w: snap.w,
                        rate_cps: snap.rate,
                    });
                }
            }
        }
        // else: nothing sent this period (deep throttle) — hold.
        self.period_recv = 0;
        self.period_lost = 0;
        self.period_sent = 0;
        let period = self.update_period();
        self.update_slot.arm(ctx, timer::UPDATE, period);
    }
}

impl Endpoint for XPassReceiver {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        // Passive until the credit request (SYN) arrives.
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        match pkt.kind {
            PktKind::Ctrl => match pkt.flag {
                ctrl::SYN | ctrl::CREDIT_REQUEST => self.start_crediting(ctx),
                ctrl::CREDIT_STOP | ctrl::FIN => self.stop_crediting(),
                _ => {}
            },
            PktKind::Data => self.on_data(pkt, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u8, gen: u64, ctx: &mut Ctx<'_>) {
        match kind {
            timer::PACE
                if self.pace_slot.matches(gen) && self.sending && !self.stopped && !self.paused =>
            {
                self.send_credit(ctx);
                self.arm_pace(ctx);
                self.maybe_early_stop(ctx);
            }
            timer::UPDATE if self.update_slot.matches(gen) && self.sending && !self.stopped => {
                let delivered = ctx.delivered_bytes();
                if self.paused && !ctx.flow_done() && delivered == self.delivered_at_update {
                    // Early-stop watchdog: a full update period passed
                    // with no delivery progress while paused — the
                    // in-flight credits were thinner than the margin
                    // assumed (or lost). Resume pacing.
                    self.paused = false;
                    self.send_credit(ctx);
                    self.arm_pace(ctx);
                }
                self.delivered_at_update = delivered;
                // Stall detector, piggybacked on the update cadence so
                // it adds no events of its own: no delivery progress
                // for a full stall timeout flags the flow's record.
                // While a HostPause fault freezes either host the lack of
                // progress is injected, not a protocol stall: hold the
                // stall clock so it restarts when the pause lifts.
                if ctx.local_paused() || ctx.peer_paused() {
                    self.last_progress = ctx.now();
                }
                if !self.stall_flagged
                    && !ctx.flow_done()
                    && ctx.now().since(self.last_progress) >= self.cfg.stall_timeout
                {
                    self.stall_flagged = true;
                    ctx.set_stalled(true);
                }
                self.on_update(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn snap_state(&self, w: &mut xpass_sim::SnapWriter) {
        w.opt(self.feedback.as_ref(), |w, fb| fb.snap(w));
        w.usize(self.ooo.len());
        for (&seq, &len) in &self.ooo {
            w.u64(seq);
            w.u32(len);
        }
        w.u64(self.credit_seq);
        w.u64(self.last_echo);
        w.u64(self.period_recv);
        w.u64(self.period_lost);
        w.u64(self.period_sent);
        w.u32(self.silent_periods);
        w.opt(self.srtt.as_ref(), |w, d| w.u64(d.0));
        self.pace_slot.snap(w);
        self.update_slot.snap(w);
        w.bool(self.sending);
        w.bool(self.stopped);
        w.bool(self.paused);
        w.u64(self.delivered_at_update);
        w.u64(self.last_progress.0);
        w.bool(self.stall_flagged);
    }

    fn restore_state(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.feedback = r.opt(|r| {
            // Placeholder controller; every dynamic field (including
            // max_rate) is overlaid from the snapshot.
            let mut fb = CreditFeedback::new(1.0, self.cfg);
            fb.restore(r)?;
            Ok(fb)
        })?;
        let n = r.seq_len(12)?;
        self.ooo.clear();
        for _ in 0..n {
            let seq = r.u64()?;
            let len = r.u32()?;
            self.ooo.insert(seq, len);
        }
        self.credit_seq = r.u64()?;
        self.last_echo = r.u64()?;
        self.period_recv = r.u64()?;
        self.period_lost = r.u64()?;
        self.period_sent = r.u64()?;
        self.silent_periods = r.u32()?;
        self.srtt = r.opt(|r| Ok(Dur(r.u64()?)))?;
        self.pace_slot.restore(r)?;
        self.update_slot.restore(r)?;
        self.sending = r.bool()?;
        self.stopped = r.bool()?;
        self.paused = r.bool()?;
        self.delivered_at_update = r.u64()?;
        self.last_progress = SimTime(r.u64()?);
        self.stall_flagged = r.bool()?;
        Ok(())
    }
}

/// Endpoint factory for ExpressPass flows with the given configuration.
pub fn xpass_factory(cfg: XPassConfig) -> EndpointFactory {
    cfg.validate();
    Box::new(move |side, _info, _h| match side {
        Side::Sender => Box::new(XPassSender::new(cfg)),
        Side::Receiver => Box::new(XPassReceiver::new(cfg)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpass_net::config::{HostDelayModel, NetConfig};
    use xpass_net::ids::HostId;
    use xpass_net::network::Network;
    use xpass_net::topology::Topology;
    use xpass_sim::time::SimTime;

    const G10: u64 = 10_000_000_000;

    fn xpass_net(topo: Topology, cfg: XPassConfig, seed: u64) -> Network {
        let mut net_cfg = NetConfig::expresspass().with_seed(seed);
        net_cfg.host_delay = HostDelayModel {
            min: Dur::us(1),
            max: Dur::us(1),
        };
        Network::new(topo, net_cfg, xpass_factory(cfg))
    }

    #[test]
    fn single_flow_completes_with_zero_data_loss() {
        let topo = Topology::dumbbell(1, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 7);
        let f = net.add_flow(HostId(0), HostId(1), 1_000_000, SimTime::ZERO);
        let done = net.run_until_done(SimTime::ZERO + Dur::ms(100));
        assert!(net.flow_done(f), "flow did not finish");
        assert_eq!(net.total_data_drops(), 0);
        // 1MB at ~9.5Gbps ≈ 0.84ms + startup; must finish well under 5ms.
        assert!(done < SimTime::ZERO + Dur::ms(5), "done at {done}");
    }

    #[test]
    fn throughput_close_to_data_fraction() {
        // One long flow: goodput must approach 94.82% of line rate times
        // payload efficiency (1460/1538).
        let topo = Topology::dumbbell(1, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 11);
        let size = 20_000_000u64; // 20 MB
        net.add_flow(HostId(0), HostId(1), size, SimTime::ZERO);
        let done = net.run_until_done(SimTime::ZERO + Dur::ms(200));
        let secs = done.as_secs_f64();
        let gbps = size as f64 * 8.0 / secs / 1e9;
        // Payload ceiling: 10G × (1538/1622) × (1460/1538) = 9.0G.
        assert!(gbps > 8.0, "goodput {gbps:.2} Gbps too low");
        assert!(gbps < 9.1, "goodput {gbps:.2} Gbps above theoretical max");
    }

    #[test]
    fn two_flows_share_fairly() {
        let topo = Topology::dumbbell(2, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 13);
        // Two long flows started together; compare FCTs (equal share → equal
        // completion).
        let a = net.add_flow(HostId(0), HostId(2), 5_000_000, SimTime::ZERO);
        let b = net.add_flow(HostId(1), HostId(3), 5_000_000, SimTime::ZERO);
        net.run_until_done(SimTime::ZERO + Dur::ms(200));
        assert!(net.flow_done(a) && net.flow_done(b));
        let recs = net.flow_records();
        let fa = recs[0].fct.unwrap().as_secs_f64();
        let fb = recs[1].fct.unwrap().as_secs_f64();
        let ratio = fa.max(fb) / fa.min(fb);
        assert!(ratio < 1.25, "unfair FCTs: {fa:.6} vs {fb:.6}");
        assert_eq!(net.total_data_drops(), 0);
    }

    #[test]
    fn data_queue_stays_tiny() {
        // 8 senders incast to one receiver through a star: the hallmark
        // result — data queue bounded to a few packets.
        let topo = Topology::star(9, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 17);
        for i in 0..8u32 {
            net.add_flow(HostId(i), HostId(8), 500_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::ms(100));
        assert_eq!(net.completed_count(), 8);
        assert_eq!(net.total_data_drops(), 0);
        let maxq = net.max_switch_queue_bytes();
        // Paper: bounded by delay spread; with 1us fixed host delay this is
        // a handful of MTUs.
        assert!(maxq <= 20 * 1538, "max queue {maxq} bytes");
    }

    #[test]
    fn credit_drops_happen_but_data_survives_incast() {
        let topo = Topology::star(17, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 19);
        for i in 0..16u32 {
            net.add_flow(HostId(i), HostId(16), 200_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::ms(100));
        assert_eq!(net.completed_count(), 16);
        assert_eq!(
            net.total_data_drops(),
            0,
            "credit scheme must not drop data"
        );
        assert!(
            net.counters().credits_dropped > 0,
            "16:1 overload must shed credits"
        );
    }

    #[test]
    fn single_packet_flow_wastes_initial_credits() {
        // Fig 8(b): a 1-packet flow wastes all but one credit of the first
        // RTT. With α = 1/2 that is a measurable amount; with tiny α, less.
        let topo = Topology::dumbbell(1, G10, Dur::us(50)); // long RTT
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 23);
        let f = net.add_flow(HostId(0), HostId(1), 1000, SimTime::ZERO);
        net.run_until_done(SimTime::ZERO + Dur::ms(50));
        // Let CREDIT_STOP wind down the receiver.
        net.drain_until(SimTime::ZERO + Dur::ms(60));
        assert!(net.flow_done(f));
        let rec = &net.flow_records()[0];
        assert!(
            rec.credits_wasted > 5,
            "expected waste from α/2 start, got {}",
            rec.credits_wasted
        );
        assert!(rec.credits_sent > rec.credits_wasted);
    }

    #[test]
    fn credit_stop_halts_receiver() {
        // After the flow completes and the stop timeout passes, no further
        // credits may be generated.
        let topo = Topology::dumbbell(1, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::aggressive(), 29);
        net.add_flow(HostId(0), HostId(1), 100_000, SimTime::ZERO);
        net.run_until_done(SimTime::ZERO + Dur::ms(50));
        net.drain_until(net.now() + Dur::ms(2));
        let sent_after_drain = net.counters().credits_sent;
        net.drain_until(net.now() + Dur::ms(10));
        assert_eq!(
            net.counters().credits_sent,
            sent_after_drain,
            "credits still flowing after stop"
        );
    }

    #[test]
    fn smaller_alpha_wastes_fewer_credits_on_small_flows() {
        let run = |alpha: f64| -> u64 {
            let topo = Topology::dumbbell(1, G10, Dur::us(50));
            let cfg = XPassConfig::default().with_alpha_winit(alpha, 0.5);
            let mut net = xpass_net(topo, cfg, 31);
            net.add_flow(HostId(0), HostId(1), 1000, SimTime::ZERO);
            net.run_until_done(SimTime::ZERO + Dur::ms(50));
            net.drain_until(net.now() + Dur::ms(10));
            net.counters().credits_wasted
        };
        let waste_half = run(0.5);
        let waste_32nd = run(1.0 / 32.0);
        assert!(
            waste_32nd < waste_half,
            "α=1/32 wasted {waste_32nd} ≥ α=1/2 wasted {waste_half}"
        );
    }

    #[test]
    fn survives_data_loss_with_tiny_buffers() {
        // Sanity for the go-back-N fallback: shrink switch buffers below the
        // paper's bound so data drops occur; the flow must still complete.
        let topo = Topology::star(9, G10, Dur::us(1));
        let mut cfg = NetConfig::expresspass().with_seed(37);
        cfg.switch_queue_bytes = 2 * 1538; // absurdly small
        cfg.host_delay = HostDelayModel::software(); // big jitter
        let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
        for i in 0..8u32 {
            net.add_flow(HostId(i), HostId(8), 300_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert_eq!(net.completed_count(), 8, "flows must survive data loss");
    }

    #[test]
    fn receiver_rate_converges_up_for_lone_flow() {
        let topo = Topology::dumbbell(1, G10, Dur::us(1));
        let mut net = xpass_net(topo, XPassConfig::default(), 41);
        let f = net.add_flow(HostId(0), HostId(1), 50_000_000, SimTime::ZERO);
        net.run_until(SimTime::ZERO + Dur::ms(5));
        let mut rate = 0.0;
        net.poke(f, Side::Receiver, |ep, _| {
            let r = ep.as_any().downcast_mut::<XPassReceiver>().unwrap();
            rate = r.credit_rate();
        });
        let max = max_credit_rate(G10);
        assert!(
            rate > 0.9 * max,
            "lone flow should be near max credit rate: {rate} vs {max}"
        );
    }

    #[test]
    fn srtt_measured_reasonably() {
        let topo = Topology::dumbbell(1, G10, Dur::us(10));
        let mut net = xpass_net(topo, XPassConfig::default(), 43);
        let f = net.add_flow(HostId(0), HostId(1), 10_000_000, SimTime::ZERO);
        net.run_until(SimTime::ZERO + Dur::ms(3));
        let mut srtt = None;
        net.poke(f, Side::Receiver, |ep, _| {
            srtt = ep.as_any().downcast_mut::<XPassReceiver>().unwrap().srtt();
        });
        let srtt = srtt.expect("srtt measured");
        // 3 hops × 10us × 2 = 60us propagation + serialization + host delay.
        assert!(
            srtt > Dur::us(55) && srtt < Dur::us(120),
            "srtt {srtt} out of range"
        );
    }
}

#[cfg(test)]
mod early_stop_tests {
    use super::*;
    use xpass_net::config::{HostDelayModel, NetConfig};
    use xpass_net::ids::HostId;
    use xpass_net::network::Network;
    use xpass_net::topology::Topology;
    use xpass_sim::time::SimTime;

    const G10: u64 = 10_000_000_000;

    fn waste_for(cfg: XPassConfig, seed: u64) -> (u64, f64) {
        // Long-RTT path so plenty of credits are in flight near flow end.
        let topo = Topology::dumbbell(1, G10, Dur::us(25));
        let mut net_cfg = NetConfig::expresspass().with_seed(seed);
        net_cfg.host_delay = HostDelayModel {
            min: Dur::us(1),
            max: Dur::us(1),
        };
        let mut net = Network::new(topo, net_cfg, xpass_factory(cfg));
        let f = net.add_flow(HostId(0), HostId(1), 400_000, SimTime::ZERO);
        let done = net.run_until_done(SimTime::ZERO + Dur::ms(100));
        assert!(net.flow_done(f));
        net.drain_until(net.now() + Dur::ms(5));
        (net.counters().credits_wasted, done.as_secs_f64())
    }

    #[test]
    fn early_stop_reduces_waste_without_breaking_completion() {
        let base = XPassConfig::aggressive();
        let (waste_off, fct_off) = waste_for(base, 91);
        let (waste_on, fct_on) = waste_for(base.with_early_credit_stop(), 91);
        assert!(
            waste_on < waste_off,
            "early stop did not reduce waste: {waste_on} vs {waste_off}"
        );
        // FCT penalty bounded: the margin may cost at most a small slowdown.
        assert!(
            fct_on < fct_off * 1.3,
            "early stop FCT regression: {fct_on} vs {fct_off}"
        );
    }

    #[test]
    fn early_stop_survives_credit_loss_via_watchdog() {
        // Heavy incast: lots of credit loss; early-stopped flows must still
        // complete (the watchdog resumes pacing when the margin was wrong).
        let topo = Topology::star(17, G10, Dur::us(5));
        let mut net_cfg = NetConfig::expresspass().with_seed(93);
        net_cfg.host_delay = HostDelayModel {
            min: Dur::us(1),
            max: Dur::us(1),
        };
        let mut net = Network::new(
            topo,
            net_cfg,
            xpass_factory(XPassConfig::aggressive().with_early_credit_stop()),
        );
        for i in 0..16u32 {
            net.add_flow(HostId(i), HostId(16), 150_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(2));
        assert_eq!(net.completed_count(), 16, "early-stop flows must finish");
        assert!(net.counters().credits_dropped > 0, "test needs credit loss");
    }
}
