//! Network calculus for zero-data-loss buffer bounds (paper §3.1, Eq 1).
//!
//! A switch port needs enough data buffer to absorb the worst-case *delay
//! spread* between a credit passing its meter and the triggered data coming
//! back: if the fastest credit→data loop takes `d_min` and the slowest
//! `d_max`, then up to `(d_max − d_min) · data_rate` bytes can arrive
//! simultaneously.
//!
//! For hierarchical topologies the spread is computed per **port class**
//! (NIC, ToR-from-above, ToR-from-below, Agg-from-above, Agg-from-below,
//! Core), iterating from the NIC up (the paper's "iterative fashion"):
//!
//! ```text
//! d_p_min = min_{q ∈ N(p)} ( t(p,q) + d_q_min )
//! d_p_max = max(d_credit) + max_{q ∈ N(p)} ( t(p,q) + d_q_max + Δd_q )
//! ```
//!
//! where `t(p,q)` is the round-trip wire cost to the next hop (propagation
//! both ways + credit and data serialization), `max(d_credit)` is the drain
//! time of a full credit queue at the egress the credit takes, and the
//! `Δd_q` term accounts for the data packet's own queuing at `q` (bounded by
//! that port's spread). Traffic entering from an uplink can only be
//! forwarded down, so "from-above" classes recurse only downward — this is
//! why ToR *up* ports need far less buffer than ToR *down* ports (Table 1).

use xpass_net::packet::{CREDIT_SIZE, MAX_FRAME};
use xpass_sim::time::{tx_time, Dur};

/// One tier of links in a hierarchical topology.
#[derive(Clone, Copy, Debug)]
pub struct LinkClass {
    /// Line rate in bits/s.
    pub speed_bps: u64,
    /// One-way propagation delay.
    pub prop: Dur,
}

/// A symmetric 3-tier hierarchy (fat tree or Clos) described by its link
/// classes and per-switch port counts.
#[derive(Clone, Debug)]
pub struct HierTopo {
    /// Topology label for reports.
    pub name: String,
    /// Host ↔ ToR links.
    pub host_link: LinkClass,
    /// ToR ↔ Agg links.
    pub tor_agg: LinkClass,
    /// Agg ↔ Core links.
    pub agg_core: LinkClass,
    /// Down (host-facing) ports per ToR.
    pub tor_down_ports: usize,
    /// Up (agg-facing) ports per ToR.
    pub tor_up_ports: usize,
}

impl HierTopo {
    /// A k-ary fat tree with the paper's Table-1 speed/delay conventions:
    /// 1 µs propagation on host and ToR–Agg links, 5 µs on core links.
    pub fn fat_tree(k: usize, host_bps: u64, up_bps: u64, name: &str) -> HierTopo {
        HierTopo {
            name: name.to_string(),
            host_link: LinkClass {
                speed_bps: host_bps,
                prop: Dur::us(1),
            },
            tor_agg: LinkClass {
                speed_bps: up_bps,
                prop: Dur::us(1),
            },
            agg_core: LinkClass {
                speed_bps: up_bps,
                prop: Dur::us(5),
            },
            tor_down_ports: k / 2,
            tor_up_ports: k / 2,
        }
    }

    /// The paper's "32-ary fat tree (10/40 Gbps)" row.
    pub fn fat32_10_40() -> HierTopo {
        HierTopo::fat_tree(
            32,
            10_000_000_000,
            40_000_000_000,
            "32-ary fat tree (10/40G)",
        )
    }

    /// The paper's "32-ary fat tree (40/100 Gbps)" row.
    pub fn fat32_40_100() -> HierTopo {
        HierTopo::fat_tree(
            32,
            40_000_000_000,
            100_000_000_000,
            "32-ary fat tree (40/100G)",
        )
    }

    /// The paper's "(100/100 Gbps)" configuration (Fig 5).
    pub fn fat32_100_100() -> HierTopo {
        HierTopo::fat_tree(
            32,
            100_000_000_000,
            100_000_000_000,
            "32-ary fat tree (100/100G)",
        )
    }

    /// The paper's "3-tier Clos (10/40 Gbps)" row. Per-class bounds depend
    /// only on link classes, so they match the fat-tree row exactly — as
    /// Table 1 shows.
    pub fn clos_10_40() -> HierTopo {
        let mut t = HierTopo::fat32_10_40();
        t.name = "3-tier Clos (10/40G)".into();
        t.tor_down_ports = 8;
        t.tor_up_ports = 8;
        t
    }

    /// The paper's "3-tier Clos (40/100 Gbps)" row.
    pub fn clos_40_100() -> HierTopo {
        let mut t = HierTopo::fat32_40_100();
        t.name = "3-tier Clos (40/100G)".into();
        t.tor_down_ports = 8;
        t.tor_up_ports = 8;
        t
    }
}

/// Network-calculus parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetCalcParams {
    /// Credit queue capacity per port (paper: 8 in the testbed set, 4 for
    /// the NIC-hardware set of Fig 5b).
    pub credit_queue: usize,
    /// Minimum host credit-processing delay.
    pub dhost_min: Dur,
    /// Maximum host credit-processing delay (spread = max − min).
    pub dhost_max: Dur,
    /// Per-switch forwarding latency (applied twice per hop round trip).
    pub switch_latency: Dur,
}

impl NetCalcParams {
    /// Testbed parameter set: 8-credit queues, Δd_host ≈ 5.3 µs (Fig 14a).
    pub fn testbed() -> NetCalcParams {
        NetCalcParams {
            credit_queue: 8,
            dhost_min: Dur::ns(900),
            dhost_max: Dur::ns(6200),
            switch_latency: Dur::ZERO,
        }
    }

    /// NIC-hardware parameter set of Fig 5(b): 4-credit queues, Δd_host = 1 µs.
    pub fn nic_hardware() -> NetCalcParams {
        NetCalcParams {
            credit_queue: 4,
            dhost_min: Dur::ns(200),
            dhost_max: Dur::ns(1200),
            switch_latency: Dur::ZERO,
        }
    }
}

/// Delay interval of one port class.
#[derive(Clone, Copy, Debug)]
pub struct DelayBound {
    /// Fastest credit→data loop.
    pub d_min: Dur,
    /// Slowest credit→data loop, including downstream data queuing.
    pub d_max: Dur,
}

impl DelayBound {
    /// The delay spread `Δd = d_max − d_min`.
    pub fn spread(&self) -> Dur {
        self.d_max - self.d_min
    }
}

/// Buffer bounds for every port class of a hierarchy (Table 1 content).
#[derive(Clone, Debug)]
pub struct BufferBounds {
    /// Analyzed topology name.
    pub name: String,
    /// ToR host-facing ports (largest requirement).
    pub tor_down: PortBound,
    /// ToR agg-facing ports.
    pub tor_up: PortBound,
    /// Core ports.
    pub core: PortBound,
    /// Agg ToR-facing ports.
    pub agg_down: PortBound,
    /// Agg core-facing ports.
    pub agg_up: PortBound,
}

/// Spread and resulting byte bound for one port class.
#[derive(Clone, Copy, Debug)]
pub struct PortBound {
    /// Credit→data delay spread governing this class.
    pub spread: Dur,
    /// Required data buffer in bytes for zero loss.
    pub buffer_bytes: u64,
}

/// Round-trip wire cost of one hop: propagation both ways plus credit and
/// data serialization plus switch forwarding latency both ways.
fn hop_rt(link: LinkClass, p: &NetCalcParams) -> Dur {
    link.prop * 2
        + tx_time(CREDIT_SIZE as u64, link.speed_bps)
        + tx_time(MAX_FRAME as u64, link.speed_bps)
        + p.switch_latency * 2
}

/// Worst-case drain time of a full credit queue on a link: `cap` credits at
/// the metered credit rate (one credit per 1622 byte-times).
fn credit_drain(link: LinkClass, p: &NetCalcParams) -> Dur {
    tx_time((CREDIT_SIZE + MAX_FRAME) as u64, link.speed_bps) * p.credit_queue as u64
}

/// Compute Eq-1 buffer bounds for every port class of `topo`.
///
/// The data burst a port must absorb is `spread × data_rate`, where the
/// paper evaluates `data_rate` at the *server* line rate (the granularity at
/// which individual credit loops are metered), i.e.
/// `host_speed · 1538/1622`.
pub fn buffer_bounds(topo: &HierTopo, p: &NetCalcParams) -> BufferBounds {
    let nic = DelayBound {
        d_min: p.dhost_min,
        d_max: p.dhost_max,
    };
    // Data queuing contribution at the NIC is zero: the sender NIC is the
    // traffic source, paced by the credits themselves.
    let rt_host = hop_rt(topo.host_link, p);
    let rt_ta = hop_rt(topo.tor_agg, p);
    let rt_ac = hop_rt(topo.agg_core, p);
    let dr_host = credit_drain(topo.host_link, p);
    let dr_ta = credit_drain(topo.tor_agg, p);
    let dr_ac = credit_drain(topo.agg_core, p);

    // Credits entering the ToR from an uplink can only go down to NICs.
    let tor_from_above = DelayBound {
        d_min: rt_host + nic.d_min,
        d_max: dr_host + rt_host + nic.d_max,
    };
    // Credits entering the Agg from a core can only go down to ToRs.
    let agg_from_above = DelayBound {
        d_min: rt_ta + tor_from_above.d_min,
        d_max: dr_ta + rt_ta + tor_from_above.d_max + tor_from_above.spread(),
    };
    // Credits entering a core go down to an agg of another pod.
    let core_in = DelayBound {
        d_min: rt_ac + agg_from_above.d_min,
        d_max: dr_ac + rt_ac + agg_from_above.d_max + agg_from_above.spread(),
    };
    // Credits entering the Agg from a ToR may turn down to another ToR or
    // continue up to a core.
    let agg_from_below = DelayBound {
        d_min: (rt_ta + tor_from_above.d_min).min(rt_ac + core_in.d_min),
        d_max: dr_ta.max(dr_ac)
            + (rt_ta + tor_from_above.d_max + tor_from_above.spread())
                .max(rt_ac + core_in.d_max + core_in.spread()),
    };
    // Credits entering the ToR from a host may turn down to a sibling NIC
    // or continue up to an agg.
    let tor_from_below = DelayBound {
        d_min: (rt_host + nic.d_min).min(rt_ta + agg_from_below.d_min),
        d_max: dr_host.max(dr_ta)
            + (rt_host + nic.d_max).max(rt_ta + agg_from_below.d_max + agg_from_below.spread()),
    };

    let data_rate_bps =
        topo.host_link.speed_bps as f64 * MAX_FRAME as f64 / (CREDIT_SIZE + MAX_FRAME) as f64;
    let to_bytes = |spread: Dur| -> u64 { (spread.as_secs_f64() * data_rate_bps / 8.0) as u64 };
    let bound = |b: DelayBound| PortBound {
        spread: b.spread(),
        buffer_bytes: to_bytes(b.spread()),
    };

    BufferBounds {
        name: topo.name.clone(),
        tor_down: bound(tor_from_below),
        tor_up: bound(tor_from_above),
        core: bound(core_in),
        agg_down: bound(agg_from_below),
        agg_up: bound(agg_from_above),
    }
}

/// Total worst-case data buffer for one ToR switch (Fig 5): the sum over its
/// down and up ports plus the static per-port credit buffers.
pub fn tor_switch_total(topo: &HierTopo, p: &NetCalcParams) -> TorBufferBreakdown {
    let b = buffer_bounds(topo, p);
    let data_down = b.tor_down.buffer_bytes * topo.tor_down_ports as u64;
    let data_up = b.tor_up.buffer_bytes * topo.tor_up_ports as u64;
    let credit_static =
        (p.credit_queue as u64) * 92 * (topo.tor_down_ports + topo.tor_up_ports) as u64;
    // Attribution: recompute with zero host spread to isolate its share.
    let mut p_nohost = *p;
    p_nohost.dhost_max = p_nohost.dhost_min;
    let b_nohost = buffer_bounds(topo, &p_nohost);
    let total_data = data_down + data_up;
    let nohost_data = b_nohost.tor_down.buffer_bytes * topo.tor_down_ports as u64
        + b_nohost.tor_up.buffer_bytes * topo.tor_up_ports as u64;
    TorBufferBreakdown {
        total_bytes: total_data + credit_static,
        data_bytes: total_data,
        credit_static_bytes: credit_static,
        host_spread_bytes: total_data.saturating_sub(nohost_data),
    }
}

/// Fig 5 breakdown of a ToR switch's worst-case buffer.
#[derive(Clone, Copy, Debug)]
pub struct TorBufferBreakdown {
    /// Total bytes (data bound + static credit buffers).
    pub total_bytes: u64,
    /// Data buffer bound across all ports.
    pub data_bytes: u64,
    /// Static credit-class buffers (tiny).
    pub credit_static_bytes: u64,
    /// Portion of the data bound attributable to host delay spread.
    pub host_spread_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_fat32_10_40_magnitudes() {
        let b = buffer_bounds(&HierTopo::fat32_10_40(), &NetCalcParams::testbed());
        // Paper: ToR down 577.3 KB, ToR up 19.0 KB, Core 131.1 KB. The exact
        // accounting of Eq 1 has ambiguities; we require the same order of
        // magnitude and the same ordering of classes.
        let kb = |b: PortBound| b.buffer_bytes as f64 / 1e3;
        assert!(
            (300.0..900.0).contains(&kb(b.tor_down)),
            "ToR down {} KB",
            kb(b.tor_down)
        );
        assert!(
            (10.0..40.0).contains(&kb(b.tor_up)),
            "ToR up {} KB",
            kb(b.tor_up)
        );
        assert!(
            (60.0..260.0).contains(&kb(b.core)),
            "core {} KB",
            kb(b.core)
        );
        // Class ordering: ToR down ≫ core > ToR up.
        assert!(b.tor_down.buffer_bytes > b.core.buffer_bytes);
        assert!(b.core.buffer_bytes > b.tor_up.buffer_bytes);
    }

    #[test]
    fn tor_up_close_to_paper_value() {
        // The ToR-up bound has no recursion ambiguity: drain(8@10G) + host
        // spread ≈ 15.7us → ~18.6 KB (paper: 19.0 KB).
        let b = buffer_bounds(&HierTopo::fat32_10_40(), &NetCalcParams::testbed());
        let kb = b.tor_up.buffer_bytes as f64 / 1e3;
        assert!((17.0..21.0).contains(&kb), "{kb} KB");
    }

    #[test]
    fn clos_matches_fat_tree_per_port() {
        // Table 1: per-port bounds are identical between the 32-ary fat tree
        // and the 3-tier Clos at equal speeds.
        let p = NetCalcParams::testbed();
        let a = buffer_bounds(&HierTopo::fat32_10_40(), &p);
        let b = buffer_bounds(&HierTopo::clos_10_40(), &p);
        assert_eq!(a.tor_down.buffer_bytes, b.tor_down.buffer_bytes);
        assert_eq!(a.tor_up.buffer_bytes, b.tor_up.buffer_bytes);
        assert_eq!(a.core.buffer_bytes, b.core.buffer_bytes);
    }

    #[test]
    fn buffer_grows_sublinearly_with_speed() {
        // Paper: 40/100G needs < 4× the 10/40G buffer despite 4× the speed.
        let p = NetCalcParams::testbed();
        let b10 = buffer_bounds(&HierTopo::fat32_10_40(), &p);
        let b40 = buffer_bounds(&HierTopo::fat32_40_100(), &p);
        let ratio = b40.tor_down.buffer_bytes as f64 / b10.tor_down.buffer_bytes as f64;
        assert!(
            ratio > 1.0 && ratio < 4.0,
            "ToR-down scaling {ratio} not sublinear"
        );
    }

    #[test]
    fn smaller_credit_queue_and_jitter_shrink_buffers() {
        // Fig 5(b) vs 5(a): NIC-hardware parameters need less buffer.
        let topo = HierTopo::fat32_10_40();
        let sw = tor_switch_total(&topo, &NetCalcParams::testbed());
        let hw = tor_switch_total(&topo, &NetCalcParams::nic_hardware());
        assert!(hw.total_bytes < sw.total_bytes);
        assert!(hw.data_bytes < sw.data_bytes);
    }

    #[test]
    fn tor_total_fits_in_commodity_buffers() {
        // Paper: requirements are modest vs 9–16MB shallow-buffer switches
        // (10G) and 16–256MB (100G).
        let sw = tor_switch_total(&HierTopo::fat32_10_40(), &NetCalcParams::testbed());
        assert!(sw.total_bytes < 16_000_000, "{} bytes", sw.total_bytes);
        let sw100 = tor_switch_total(&HierTopo::fat32_100_100(), &NetCalcParams::testbed());
        assert!(
            sw100.total_bytes < 256_000_000,
            "{} bytes",
            sw100.total_bytes
        );
    }

    #[test]
    fn breakdown_components_consistent() {
        let sw = tor_switch_total(&HierTopo::fat32_10_40(), &NetCalcParams::testbed());
        assert_eq!(sw.total_bytes, sw.data_bytes + sw.credit_static_bytes);
        assert!(sw.host_spread_bytes < sw.data_bytes);
        assert!(sw.host_spread_bytes > 0);
        // Static credit buffers are tiny.
        assert!(sw.credit_static_bytes < 100_000);
    }

    #[test]
    fn spread_positive_everywhere() {
        let b = buffer_bounds(&HierTopo::fat32_40_100(), &NetCalcParams::testbed());
        for pb in [b.tor_down, b.tor_up, b.core, b.agg_down, b.agg_up] {
            assert!(pb.spread > Dur::ZERO);
            assert!(pb.buffer_bytes > 0);
        }
    }
}
