//! The §4 discrete model of the feedback loop.
//!
//! N flows share one bottleneck with synchronized update periods; credit
//! drops are uniform, so each flow observes loss `max(0, 1 − C/ΣR)`. The
//! paper proves the even-period rates converge to `C/N` and the oscillation
//! amplitude `D(t) = |R(t) − R(t−1)|` decays to
//! `D* = C · w_min · (1 − 1/N)`.
//!
//! [`DiscreteModel`] iterates this system with the real
//! [`CreditFeedback`](crate::feedback::CreditFeedback) implementation —
//! Fig 12's behaviour becomes an executable check rather than a drawing.

use crate::config::XPassConfig;
use crate::feedback::CreditFeedback;

/// The synchronized N-flow single-bottleneck model of §4.
pub struct DiscreteModel {
    flows: Vec<CreditFeedback>,
    /// Ceiling C = max_rate · (1 + target_loss).
    c: f64,
    cfg: XPassConfig,
    /// Rates after each step, for trace extraction.
    pub history: Vec<Vec<f64>>,
}

impl DiscreteModel {
    /// Model `n` flows over a bottleneck of `max_rate` credits/s, each with
    /// configuration `cfg` (initial rates `α·max_rate`).
    pub fn new(n: usize, max_rate: f64, cfg: XPassConfig) -> DiscreteModel {
        assert!(n >= 1);
        let flows = (0..n)
            .map(|_| CreditFeedback::new(max_rate, cfg))
            .collect::<Vec<_>>();
        let c = max_rate * (1.0 + cfg.target_loss);
        let mut m = DiscreteModel {
            flows,
            c,
            cfg,
            history: Vec::new(),
        };
        m.snapshot();
        m
    }

    /// Model with explicitly skewed initial rates (for convergence-from-
    /// anywhere demonstrations).
    pub fn with_initial_rates(max_rate: f64, cfg: XPassConfig, fracs: &[f64]) -> DiscreteModel {
        let flows = fracs
            .iter()
            .map(|&f| {
                let mut c = cfg;
                c.alpha = f.clamp(1e-6, 1.0);
                CreditFeedback::new(max_rate, c)
            })
            .collect::<Vec<_>>();
        let c = max_rate * (1.0 + cfg.target_loss);
        let mut m = DiscreteModel {
            flows,
            c,
            cfg,
            history: Vec::new(),
        };
        m.snapshot();
        m
    }

    fn snapshot(&mut self) {
        self.history
            .push(self.flows.iter().map(|f| f.rate()).collect());
    }

    /// One synchronized update period.
    pub fn step(&mut self) {
        let total: f64 = self.flows.iter().map(|f| f.rate()).sum();
        let loss = if total > self.c {
            1.0 - self.c / total
        } else {
            0.0
        };
        for f in &mut self.flows {
            f.on_update(loss);
        }
        self.snapshot();
    }

    /// Run `k` periods.
    pub fn run(&mut self, k: usize) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Current per-flow credit rates.
    pub fn rates(&self) -> Vec<f64> {
        self.flows.iter().map(|f| f.rate()).collect()
    }

    /// Fair share C/N.
    pub fn fair_share(&self) -> f64 {
        self.c / self.flows.len() as f64
    }

    /// The steady-state oscillation amplitude bound
    /// `D* = C · w_min · (1 − 1/N)`.
    pub fn d_star(&self) -> f64 {
        self.c * self.cfg.w_min * (1.0 - 1.0 / self.flows.len() as f64)
    }

    /// The oscillation amplitude of flow `i` at step `t`:
    /// `D(t) = |R_i(t) − R_i(t−1)|`.
    pub fn oscillation(&self, i: usize, t: usize) -> f64 {
        assert!(t >= 1 && t < self.history.len());
        (self.history[t][i] - self.history[t - 1][i]).abs()
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.history.len() - 1
    }

    /// Periods until every flow's even-period rate is within `tol` of fair
    /// share (`None` if it never happens within the recorded history).
    pub fn convergence_time(&self, tol: f64) -> Option<usize> {
        let fair = self.fair_share();
        'outer: for (t, rates) in self.history.iter().enumerate().step_by(2) {
            for &r in rates {
                if (r - fair).abs() > tol * fair {
                    continue 'outer;
                }
            }
            return Some(t);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: f64 = 770_653.5;

    #[test]
    fn converges_from_skewed_start() {
        let cfg = XPassConfig::aggressive();
        let mut m = DiscreteModel::with_initial_rates(MAX, cfg, &[0.9, 0.05, 0.3, 0.01]);
        m.run(800);
        let fair = m.fair_share();
        // Rates approach C/N, alternating within the w_min band (§4, Eq 5/6).
        for &r in m.history.last().unwrap() {
            assert!((r - fair).abs() < 0.2 * fair, "rate {r} vs fair {fair}");
        }
    }

    #[test]
    fn oscillation_decays_to_d_star() {
        let cfg = XPassConfig::aggressive();
        let mut m = DiscreteModel::new(4, MAX, cfg);
        m.run(400);
        let d_star = m.d_star();
        // Late oscillation amplitude alternates; max over the last few steps
        // must be within a small factor of D*.
        let t_end = m.steps();
        let mut late_osc: f64 = 0.0;
        for t in (t_end - 6)..=t_end {
            late_osc = late_osc.max(m.oscillation(0, t));
        }
        assert!(
            late_osc < 3.0 * d_star + 1.0,
            "late oscillation {late_osc} vs D* {d_star}"
        );
        // Early oscillation (during convergence) is much larger.
        let early: f64 = (1..8).map(|t| m.oscillation(0, t)).fold(0.0, f64::max);
        assert!(early > late_osc, "early {early} vs late {late_osc}");
    }

    #[test]
    fn smaller_w_min_gives_smaller_steady_oscillation() {
        let run = |w_min: f64| -> f64 {
            let mut cfg = XPassConfig::aggressive();
            cfg.w_min = w_min;
            let mut m = DiscreteModel::new(8, MAX, cfg);
            m.run(400);
            let t = m.steps();
            (t - 6..=t).map(|t| m.oscillation(0, t)).fold(0.0, f64::max)
        };
        let small = run(0.005);
        let large = run(0.16);
        assert!(
            small < large,
            "w_min=0.005 oscillation {small} ≥ w_min=0.16 oscillation {large}"
        );
    }

    #[test]
    fn convergence_time_fast_with_aggressive_start() {
        // Fig 8(a): α = 1 converges in ~2 RTTs, α = 1/32 in ~14.
        let time = |alpha: f64| -> usize {
            let cfg = XPassConfig::aggressive().with_alpha_winit(alpha, 0.5);
            let mut m = DiscreteModel::new(2, MAX, cfg);
            m.run(100);
            m.convergence_time(0.15).expect("must converge")
        };
        let fast = time(1.0);
        let slow = time(1.0 / 32.0);
        assert!(fast <= 10, "alpha=1 took {fast} periods");
        assert!(
            slow > fast,
            "alpha=1/32 ({slow}) not slower than alpha=1 ({fast})"
        );
    }

    #[test]
    fn single_flow_fair_share_is_ceiling() {
        let m = DiscreteModel::new(1, MAX, XPassConfig::default());
        assert!((m.fair_share() - MAX * 1.1).abs() < 1e-6);
        assert_eq!(m.d_star(), 0.0);
    }

    #[test]
    fn aggregate_never_collapses() {
        let mut m = DiscreteModel::new(16, MAX, XPassConfig::default());
        m.run(500);
        // After warmup, aggregate admitted rate min(ΣR, C) ≈ C.
        for t in 100..m.history.len() {
            let total: f64 = m.history[t].iter().sum();
            assert!(
                total > 0.8 * MAX * 1.1,
                "aggregate collapsed to {total} at step {t}"
            );
        }
    }

    #[test]
    fn history_records_all_steps() {
        let mut m = DiscreteModel::new(3, MAX, XPassConfig::default());
        m.run(25);
        assert_eq!(m.steps(), 25);
        assert_eq!(m.history.len(), 26);
        assert_eq!(m.rates().len(), 3);
    }
}
