//! ExpressPass protocol parameters (paper §3.2–§3.3).

use xpass_sim::time::Dur;

/// Parameters of the ExpressPass endpoints and feedback loop.
///
/// Defaults follow the paper: `target_loss = 10 %`, `w_min = 0.01`,
/// `w_max = 0.5`, credit-size randomization on, and the
/// `α = w_init = 1/16` sweet spot §6.3 selects for realistic workloads.
#[derive(Clone, Copy, Debug)]
pub struct XPassConfig {
    /// Initial credit rate as a fraction of the maximum credit rate
    /// (`initial_rate = α · max_rate`). Paper explores 1 … 1/32 (Fig 8).
    pub alpha: f64,
    /// Initial aggressiveness factor `w` (0 < w ≤ 0.5).
    pub w_init: f64,
    /// Lower bound on `w`; trades steady-state smoothness against
    /// reconvergence speed (§3.2, §4).
    pub w_min: f64,
    /// Upper bound on `w` (the paper fixes 0.5).
    pub w_max: f64,
    /// Target credit loss rate at steady state (paper: 10 %).
    pub target_loss: f64,
    /// Credit pacing jitter as a fraction of the inter-credit gap
    /// (Fig 6a's `j`; tens of nanoseconds suffice).
    pub jitter: f64,
    /// Randomize credit wire size over 84–92 B to jitter switch-level
    /// credit arrival order (§3.1).
    pub randomize_credit_size: bool,
    /// Update period to use before the first RTT measurement.
    pub init_update_period: Dur,
    /// Idle time after the last data send before the sender emits
    /// CREDIT_STOP (Fig 7's "no data for timeout").
    pub stop_timeout: Dur,
    /// Floor on the credit rate as a fraction of the maximum credit rate,
    /// so starved flows keep probing (sub-credit-per-RTT regime, §3.4).
    pub min_rate_frac: f64,
    /// §7 credit-waste mitigation: when the sender knows the flow end in
    /// advance, it sends CREDIT_STOP preemptively once the *unsent* data is
    /// covered by credits already in flight. Off by default (the paper's
    /// base design assumes senders do not know the flow end).
    pub early_credit_stop: bool,
    /// Maximum number of SYN (credit-request) transmissions before the
    /// sender aborts the flow. The first transmission counts, so `1` means
    /// no retries. Retries back off exponentially from
    /// `init_update_period · 10` up to [`syn_rtx_cap`](Self::syn_rtx_cap).
    pub syn_rtx_max: u32,
    /// Ceiling on the exponential SYN retransmission backoff.
    pub syn_rtx_cap: Dur,
    /// Receiver-side stall detector: with crediting active and no data
    /// progress for this long, the flow is flagged
    /// [`Stalled`](xpass_net::network::FlowOutcome::Stalled) on its record
    /// (cleared on the next progress). Checked at update-period granularity,
    /// so values below the RTT degenerate to one RTT.
    pub stall_timeout: Dur,
}

impl Default for XPassConfig {
    fn default() -> XPassConfig {
        XPassConfig {
            alpha: 1.0 / 16.0,
            w_init: 1.0 / 16.0,
            w_min: 0.01,
            w_max: 0.5,
            target_loss: 0.1,
            jitter: 0.05,
            randomize_credit_size: true,
            init_update_period: Dur::us(100),
            stop_timeout: Dur::us(200),
            min_rate_frac: 1.0 / 8192.0,
            early_credit_stop: false,
            syn_rtx_max: 8,
            syn_rtx_cap: Dur::ms(10),
            stall_timeout: Dur::ms(5),
        }
    }
}

impl XPassConfig {
    /// The aggressive configuration used by the microbenchmarks
    /// (α = w_init = 1/2): fastest ramp-up, most credit waste.
    pub fn aggressive() -> XPassConfig {
        XPassConfig {
            alpha: 0.5,
            w_init: 0.5,
            ..XPassConfig::default()
        }
    }

    /// Builder: set α and w_init together (the paper sweeps them in pairs).
    pub fn with_alpha_winit(mut self, alpha: f64, w_init: f64) -> XPassConfig {
        self.alpha = alpha;
        self.w_init = w_init;
        self
    }

    /// Builder: set the pacing jitter fraction.
    pub fn with_jitter(mut self, j: f64) -> XPassConfig {
        self.jitter = j;
        self
    }

    /// Builder: enable the §7 preemptive CREDIT_STOP optimization.
    pub fn with_early_credit_stop(mut self) -> XPassConfig {
        self.early_credit_stop = true;
        self
    }

    /// Validate invariants (panics on nonsense configurations).
    pub fn validate(&self) {
        assert!(self.alpha > 0.0 && self.alpha <= 1.0, "alpha in (0,1]");
        assert!(
            self.w_init > 0.0 && self.w_init <= self.w_max,
            "w_init in (0, w_max]"
        );
        assert!(
            self.w_min > 0.0 && self.w_min <= self.w_max,
            "0 < w_min <= w_max"
        );
        assert!(self.w_max <= 0.5, "w_max <= 0.5");
        assert!(
            (0.0..1.0).contains(&self.target_loss),
            "target_loss in [0,1)"
        );
        assert!((0.0..=1.0).contains(&self.jitter), "jitter in [0,1]");
        assert!(self.min_rate_frac > 0.0 && self.min_rate_frac < 1.0);
        assert!(self.syn_rtx_max >= 1, "syn_rtx_max >= 1");
        assert!(!self.syn_rtx_cap.is_zero(), "syn_rtx_cap nonzero");
        assert!(!self.stall_timeout.is_zero(), "stall_timeout nonzero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_values() {
        let c = XPassConfig::default();
        c.validate();
        assert_eq!(c.target_loss, 0.1);
        assert_eq!(c.w_min, 0.01);
        assert_eq!(c.w_max, 0.5);
        assert!((c.alpha - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn aggressive_config_valid() {
        let c = XPassConfig::aggressive();
        c.validate();
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.w_init, 0.5);
    }

    #[test]
    fn builders() {
        let c = XPassConfig::default()
            .with_alpha_winit(1.0 / 32.0, 1.0 / 16.0)
            .with_jitter(0.02);
        c.validate();
        assert!((c.alpha - 1.0 / 32.0).abs() < 1e-12);
        assert_eq!(c.jitter, 0.02);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        XPassConfig {
            alpha: 0.0,
            ..XPassConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "w_min")]
    fn invalid_wmin_rejected() {
        XPassConfig {
            w_min: 0.0,
            ..XPassConfig::default()
        }
        .validate();
    }
}
