//! ExpressPass fairness and stability probes — promoted from ignored debug
//! printouts into real assertions: equal flows share a bottleneck fairly,
//! tiny buffers stay lossless, a lone flow fills the pipe, and staggered
//! flows converge to an even split.

use expresspass::{xpass_factory, XPassConfig};
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::ids::HostId;
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

const G10: u64 = 10_000_000_000;

fn deterministic_hosts(mut cfg: NetConfig) -> NetConfig {
    cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    cfg
}

#[test]
fn two_equal_flows_share_the_bottleneck() {
    let topo = Topology::dumbbell(2, G10, Dur::us(1));
    let cfg = deterministic_hosts(NetConfig::expresspass().with_seed(13));
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    let a = net.add_flow(HostId(0), HostId(2), 5_000_000, SimTime::ZERO);
    let b = net.add_flow(HostId(1), HostId(3), 5_000_000, SimTime::ZERO);
    // Mid-transfer the two deliveries should track each other closely.
    net.run_until(SimTime::ZERO + Dur::ms(5));
    let (da, db) = (net.delivered_bytes(a) as f64, net.delivered_bytes(b) as f64);
    assert!(da > 0.0 && db > 0.0);
    assert!(
        da.min(db) / da.max(db) > 0.8,
        "unfair mid-transfer split: {da} vs {db} bytes"
    );
    // Both 5 MB flows complete well before a generous cap.
    net.run_until_done(SimTime::ZERO + Dur::ms(50));
    assert_eq!(net.completed_count(), 2, "flows did not finish by 50 ms");
}

#[test]
fn tiny_switch_buffers_stay_lossless_under_incast() {
    // 8-to-1 incast into a tiny switch buffer: the credit loop must keep
    // data queues bounded (§3's bounded-queue claim). Four packets of
    // buffer suffice; two are genuinely below the bound and drop.
    let run = |pkts: u64| {
        let topo = Topology::star(9, G10, Dur::us(1));
        let mut cfg = NetConfig::expresspass().with_seed(37);
        cfg.switch_queue_bytes = pkts * 1538;
        cfg.host_delay = HostDelayModel::software();
        let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
        for i in 0..8u32 {
            net.add_flow(HostId(i), HostId(8), 300_000, SimTime::ZERO);
        }
        net.run_until_done(SimTime::ZERO + Dur::ms(100));
        assert_eq!(net.completed_count(), 8, "incast flows did not all finish");
        (net.total_data_drops(), net.max_switch_queue_bytes())
    };
    let (drops, maxq) = run(4);
    assert_eq!(drops, 0, "data dropped with a 4-packet buffer");
    assert!(
        maxq <= 4 * 1538,
        "queue exceeded the configured cap: {maxq}"
    );
    let (drops, _) = run(2);
    assert!(
        drops > 0,
        "a 2-packet buffer is below the bound; expected drops"
    );
}

#[test]
fn lone_flow_fills_the_pipe() {
    let topo = Topology::dumbbell(1, G10, Dur::us(1));
    let cfg = deterministic_hosts(NetConfig::expresspass().with_seed(11));
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    let f = net.add_flow(HostId(0), HostId(1), 20_000_000, SimTime::ZERO);
    // Past the ramp-up, a 2 ms window should run near the credit-shaped
    // data rate (1538/1622 of line rate, minus headers).
    net.run_until(SimTime::ZERO + Dur::ms(4));
    let d0 = net.delivered_bytes(f);
    net.run_until(SimTime::ZERO + Dur::ms(6));
    let goodput_bps = (net.delivered_bytes(f) - d0) as f64 * 8.0 / 2e-3;
    assert!(
        goodput_bps > 0.8 * G10 as f64,
        "steady-state goodput only {:.2} Gbps",
        goodput_bps / 1e9
    );
}

#[test]
fn staggered_flows_converge_to_even_split() {
    let topo = Topology::dumbbell(4, G10, Dur::us(8));
    let cfg = deterministic_hosts(NetConfig::expresspass().with_seed(41));
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    let flows: Vec<_> = (0..4)
        .map(|i| {
            net.add_flow(
                HostId(i),
                HostId(4 + i),
                2_500_000_000,
                SimTime::ZERO + Dur::us(i as u64 * 37),
            )
        })
        .collect();
    // Long flows: measure the steady-state split over [8 ms, 12 ms].
    net.run_until(SimTime::ZERO + Dur::ms(8));
    let base: Vec<u64> = flows.iter().map(|&f| net.delivered_bytes(f)).collect();
    net.run_until(SimTime::ZERO + Dur::ms(12));
    let deltas: Vec<f64> = flows
        .iter()
        .zip(&base)
        .map(|(&f, &b)| (net.delivered_bytes(f) - b) as f64)
        .collect();
    let sum: f64 = deltas.iter().sum();
    let sum_sq: f64 = deltas.iter().map(|d| d * d).sum();
    let jain = sum * sum / (4.0 * sum_sq);
    assert!(sum > 0.0);
    assert!(
        jain > 0.9,
        "poor fairness across staggered flows: index {jain:.3}, {deltas:?}"
    );
}
