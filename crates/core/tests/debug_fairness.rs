use expresspass::*;
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::ids::{HostId, Side};
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

#[test]
#[ignore]
fn dbg_two_flows() {
    let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
    let mut net_cfg = NetConfig::expresspass().with_seed(13);
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    let a = net.add_flow(HostId(0), HostId(2), 5_000_000, SimTime::ZERO);
    let b = net.add_flow(HostId(1), HostId(3), 5_000_000, SimTime::ZERO);
    for step in 0..40 {
        net.run_until(SimTime::ZERO + Dur::us(250 * (step + 1)));
        let da = net.delivered_bytes(a);
        let db = net.delivered_bytes(b);
        let mut ra = 0.0;
        let mut rb = 0.0;
        net.poke(a, Side::Receiver, |ep, _| {
            ra = ep
                .as_any()
                .downcast_mut::<XPassReceiver>()
                .unwrap()
                .credit_rate();
        });
        net.poke(b, Side::Receiver, |ep, _| {
            rb = ep
                .as_any()
                .downcast_mut::<XPassReceiver>()
                .unwrap()
                .credit_rate();
        });
        println!(
            "t={}us a={} b={} rate_a={:.0} rate_b={:.0} cdrop={}",
            250 * (step + 1),
            da,
            db,
            ra,
            rb,
            net.counters().credits_dropped
        );
    }
}

#[test]
#[ignore]
fn dbg_tiny_buffers() {
    let topo = Topology::star(9, 10_000_000_000, Dur::us(1));
    let mut cfg = NetConfig::expresspass().with_seed(37);
    cfg.switch_queue_bytes = 2 * 1538;
    cfg.host_delay = HostDelayModel::software();
    let mut net = Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
    for i in 0..8u32 {
        net.add_flow(HostId(i), HostId(8), 300_000, SimTime::ZERO);
    }
    for step in 0..20 {
        net.run_until(SimTime::ZERO + Dur::ms(5 * (step + 1)));
        let d: Vec<u64> = (0..8)
            .map(|i| net.delivered_bytes(xpass_net::ids::FlowId(i)))
            .collect();
        println!(
            "t={}ms delivered={:?} drops={} cdrops={} done={}",
            5 * (step + 1),
            d,
            net.total_data_drops(),
            net.counters().credits_dropped,
            net.completed_count()
        );
    }
}

#[test]
#[ignore]
fn dbg_throughput() {
    let topo = Topology::dumbbell(1, 10_000_000_000, Dur::us(1));
    let mut net_cfg = NetConfig::expresspass().with_seed(11);
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    let f = net.add_flow(HostId(0), HostId(1), 20_000_000, SimTime::ZERO);
    let mut last = 0u64;
    for step in 0..10 {
        net.run_until(SimTime::ZERO + Dur::ms(2 * (step + 1)));
        let d = net.delivered_bytes(f);
        let mut rate = 0.0;
        net.poke(f, Side::Receiver, |ep, _| {
            rate = ep
                .as_any()
                .downcast_mut::<XPassReceiver>()
                .unwrap()
                .credit_rate();
        });
        println!(
            "t={}ms delta={:.3}Gbps rate={:.0} sent={} dropped={} wasted={}",
            2 * (step + 1),
            (d - last) as f64 * 8.0 / 0.002 / 1e9,
            rate,
            net.counters().credits_sent,
            net.counters().credits_dropped,
            net.counters().credits_wasted
        );
        last = d;
    }
}

#[test]
#[ignore]
fn dbg_drop_location() {
    let topo = Topology::dumbbell(1, 10_000_000_000, Dur::us(1));
    let mut net_cfg = NetConfig::expresspass().with_seed(11);
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    net.add_flow(HostId(0), HostId(1), 20_000_000, SimTime::ZERO);
    net.run_until(SimTime::ZERO + Dur::ms(20));
    for (i, p) in net.ports().iter().enumerate() {
        if let Some(cq) = p.credit.as_ref() {
            if cq.stats.enqueued > 0 || cq.stats.dropped > 0 {
                let l = &net.topo().dlinks[i];
                println!(
                    "dlink {i} {:?}->{:?}: enq={} drop={} maxq={} tx_credit={}",
                    l.from,
                    l.to,
                    cq.stats.enqueued,
                    cq.stats.dropped,
                    cq.stats.max_bytes,
                    p.tx_credit_bytes / 88
                );
            }
        }
    }
}

#[test]
#[ignore]
fn dbg_loss_accounting() {
    let topo = Topology::dumbbell(1, 10_000_000_000, Dur::us(1));
    let mut net_cfg = NetConfig::expresspass().with_seed(11);
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    let f = net.add_flow(HostId(0), HostId(1), 20_000_000, SimTime::ZERO);
    let mut last_drop = 0u64;
    let mut last_sent = 0u64;
    let mut last_rate = 0.0;
    for step in 0..100 {
        net.run_until(SimTime::ZERO + Dur::us(100 * (step + 1)));
        let d = net.counters().credits_dropped;
        let s = net.counters().credits_sent;
        let mut rate = 0.0;
        net.poke(f, Side::Receiver, |ep, _| {
            rate = ep
                .as_any()
                .downcast_mut::<XPassReceiver>()
                .unwrap()
                .credit_rate();
        });
        if step > 30 {
            println!(
                "t={}us sent+{} drop+{} rate={:.0} {}",
                100 * (step + 1),
                s - last_sent,
                d - last_drop,
                rate,
                if rate < last_rate * 0.8 {
                    "<<CRASH"
                } else {
                    ""
                }
            );
        }
        last_drop = d;
        last_sent = s;
        last_rate = rate;
    }
}

#[test]
#[ignore]
fn dbg_four_flow_fairness() {
    let topo = Topology::dumbbell(4, 10_000_000_000, Dur::us(8));
    let mut net_cfg = NetConfig::expresspass().with_seed(41);
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    let flows: Vec<_> = (0..4)
        .map(|i| {
            net.add_flow(
                HostId(i),
                HostId(4 + i),
                2_500_000_000,
                SimTime::ZERO + Dur::us(i as u64 * 37),
            )
        })
        .collect();
    let mut last = [0u64; 4];
    for step in 0..35 {
        net.run_until(SimTime::ZERO + Dur::ms(step + 1));
        let mut rates = vec![];
        let mut gbps = vec![];
        for (i, &f) in flows.iter().enumerate() {
            let d = net.delivered_bytes(f);
            gbps.push(format!("{:.2}", (d - last[i]) as f64 * 8.0 / 1e6));
            last[i] = d;
            net.poke(f, Side::Receiver, |ep, _| {
                rates.push(format!(
                    "{:.0}k",
                    ep.as_any()
                        .downcast_mut::<XPassReceiver>()
                        .unwrap()
                        .credit_rate()
                        / 1e3
                ));
            });
        }
        println!("t={}ms gbps={:?} rates={:?}", step + 1, gbps, rates);
    }
}
