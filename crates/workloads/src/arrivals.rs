//! Poisson flow arrivals at a target load (§6.3).
//!
//! The paper generates flows "with exponentially distributed inter-arrival
//! time" at target loads of 0.2/0.4/0.6 measured on the ToR uplinks, with
//! random peer selection (so most traffic crosses the uplinks in the 3:1
//! oversubscribed topology).

use crate::dists::WorkloadDist;
use crate::FlowSpec;
use xpass_net::ids::HostId;
use xpass_net::topology::Topology;
use xpass_sim::rng::Rng;
use xpass_sim::time::{Dur, SimTime};

/// A Poisson open-loop workload at a target ToR-uplink load.
#[derive(Clone, Debug)]
pub struct PoissonWorkload {
    /// Flow-size sampler.
    pub dist: WorkloadDist,
    /// Target load on the ToR uplinks (0, 1].
    pub load: f64,
    /// Number of flows to generate.
    pub n_flows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonWorkload {
    /// New workload description.
    pub fn new(dist: WorkloadDist, load: f64, n_flows: usize, seed: u64) -> PoissonWorkload {
        assert!(load > 0.0 && load <= 1.0);
        assert!(n_flows > 0);
        PoissonWorkload {
            dist,
            load,
            n_flows,
            seed,
        }
    }

    /// Aggregate ToR→Agg uplink capacity of a topology, in bits/s.
    pub fn uplink_capacity_bps(topo: &Topology) -> f64 {
        topo.dlinks
            .iter()
            .filter(|l| {
                matches!(l.from, xpass_net::ids::NodeId::Switch(_))
                    && matches!(l.to, xpass_net::ids::NodeId::Switch(_))
            })
            .map(|l| l.speed_bps as f64)
            .sum::<f64>()
            / 2.0 // count each inter-switch cable once per direction class
    }

    /// Generate the flow list for `topo`. Sources and destinations are
    /// uniform random distinct hosts; the arrival rate is calibrated so the
    /// *offered* cross-rack traffic equals `load ×` uplink capacity.
    pub fn generate(&self, topo: &Topology) -> Vec<FlowSpec> {
        let mut rng = Rng::new(self.seed);
        let n_hosts = topo.n_hosts as u64;
        assert!(n_hosts >= 2);
        let uplink_bps = Self::uplink_capacity_bps(topo).max(topo.min_host_speed() as f64);
        let mean_size_bits = self.dist.mean() * 8.0;
        // Random peer selection: approximate fraction of flows crossing the
        // ToR layer (all but same-rack pairs). For single-switch topologies
        // this degenerates to 1 and load is relative to host capacity.
        let cross = if topo.n_switches > 1 { 0.95 } else { 1.0 };
        let lambda = self.load * uplink_bps / (mean_size_bits * cross); // flows/s
        let mean_gap = Dur::from_secs_f64(1.0 / lambda);
        let mut t = SimTime::ZERO;
        let mut specs = Vec::with_capacity(self.n_flows);
        for _ in 0..self.n_flows {
            t += rng.exp_dur(mean_gap);
            let src = HostId(rng.below(n_hosts) as u32);
            let dst = loop {
                let d = HostId(rng.below(n_hosts) as u32);
                if d != src {
                    break d;
                }
            };
            specs.push(FlowSpec {
                src,
                dst,
                size_bytes: self.dist.sample(&mut rng),
                start: t,
            });
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists::Workload;

    #[test]
    fn generates_requested_count_and_monotone_starts() {
        let topo = Topology::eval_fat_tree(10_000_000_000);
        let wl = PoissonWorkload::new(Workload::WebServer.dist(), 0.6, 5000, 11);
        let specs = wl.generate(&topo);
        assert_eq!(specs.len(), 5000);
        for w in specs.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
        for s in &specs {
            assert_ne!(s.src, s.dst);
            assert!(s.size_bytes >= 1);
        }
    }

    #[test]
    fn offered_load_close_to_target() {
        let topo = Topology::eval_fat_tree(10_000_000_000);
        let load = 0.6;
        let wl = PoissonWorkload::new(Workload::WebServer.dist(), load, 50_000, 13);
        let specs = wl.generate(&topo);
        let horizon = specs.last().unwrap().start.as_secs_f64();
        let bits: f64 = specs.iter().map(|s| s.size_bytes as f64 * 8.0).sum();
        let offered = bits / horizon;
        let uplink = PoissonWorkload::uplink_capacity_bps(&topo);
        let achieved = offered * 0.95 / uplink;
        assert!(
            (achieved - load).abs() / load < 0.1,
            "offered load {achieved:.3} vs target {load}"
        );
    }

    #[test]
    fn uplink_capacity_of_eval_topology() {
        // 32 ToRs × 2 uplinks ×10G + 16 aggs × 4 core uplinks ×10G = 128
        // inter-switch cables → we count the ToR-layer share: the helper
        // sums all inter-switch cables / 2 = 64 cables ≈ 640 Gbps.
        let topo = Topology::eval_fat_tree(10_000_000_000);
        let cap = PoissonWorkload::uplink_capacity_bps(&topo);
        assert!(cap > 300e9 && cap < 1.4e12, "{cap:.3e}");
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::star(8, 10_000_000_000, Dur::us(1));
        let wl = PoissonWorkload::new(Workload::CacheFollower.dist(), 0.4, 100, 17);
        let a = wl.generate(&topo);
        let b = wl.generate(&topo);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.size_bytes, y.size_bytes);
            assert_eq!(x.start, y.start);
        }
    }
}
