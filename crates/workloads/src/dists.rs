//! Flow-size distributions for the paper's realistic workloads (Table 2).
//!
//! The paper cites the published CDFs of four production workloads; we
//! encode piecewise log-linear CDFs whose bucket masses match Table 2
//! exactly and whose means match the table's average flow sizes closely:
//!
//! | Workload       | 0–10KB | 10–100KB | 100KB–1MB | 1MB– | Avg     | Cap   |
//! |----------------|--------|----------|-----------|------|---------|-------|
//! | Data Mining    | 78 %   | 5 %      | 8 %       | 9 %  | 7.41 MB | 1 GB  |
//! | Web Search     | 49 %   | 3 %      | 18 %      | 30 % | 1.6 MB  | 30 MB |
//! | Cache Follower | 50 %   | 3 %      | 18 %      | 29 % | 701 KB  | —     |
//! | Web Server     | 63 %   | 18 %     | 19 %      | 0 %  | 64 KB   | —     |

use xpass_sim::rng::{EmpiricalCdf, Rng};

/// The four realistic workloads of §6.3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Data mining (VL2, the paper's ref 28): mostly mice, elephants to 1 GB.
    DataMining,
    /// Web search (DCTCP, ref 3): queries plus 1–30 MB background.
    WebSearch,
    /// Cache follower (Facebook, ref 50).
    CacheFollower,
    /// Web server (Facebook, ref 50): small flows only.
    WebServer,
}

impl Workload {
    /// All four, in Table 2 order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::DataMining,
            Workload::WebSearch,
            Workload::CacheFollower,
            Workload::WebServer,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::DataMining => "Data Mining",
            Workload::WebSearch => "Web Search",
            Workload::CacheFollower => "Cache Follower",
            Workload::WebServer => "Web Server",
        }
    }

    /// Table 2 average flow size in bytes.
    pub fn table2_mean(&self) -> f64 {
        match self {
            Workload::DataMining => 7_410_000.0,
            Workload::WebSearch => 1_600_000.0,
            Workload::CacheFollower => 701_000.0,
            Workload::WebServer => 64_000.0,
        }
    }

    /// Table 2 bucket masses `[S, M, L, XL]`.
    pub fn table2_buckets(&self) -> [f64; 4] {
        match self {
            Workload::DataMining => [0.78, 0.05, 0.08, 0.09],
            Workload::WebSearch => [0.49, 0.03, 0.18, 0.30],
            Workload::CacheFollower => [0.50, 0.03, 0.18, 0.29],
            Workload::WebServer => [0.63, 0.18, 0.19, 0.00],
        }
    }

    /// The flow-size sampler for this workload.
    pub fn dist(&self) -> WorkloadDist {
        WorkloadDist::new(*self)
    }
}

/// A sampler for one workload's flow sizes.
#[derive(Clone, Debug)]
pub struct WorkloadDist {
    /// Which workload this samples.
    pub workload: Workload,
    cdf: EmpiricalCdf,
}

impl WorkloadDist {
    /// Build the sampler.
    pub fn new(w: Workload) -> WorkloadDist {
        // Control points (bytes, cumulative probability); log-linear
        // interpolation between points. Bucket-edge probabilities pin the
        // Table 2 masses; interior points shape the mean.
        let points: Vec<(f64, f64)> = match w {
            Workload::DataMining => vec![
                (100.0, 0.30),
                (1_000.0, 0.58),
                (10_000.0, 0.78),
                (100_000.0, 0.83),
                (1_000_000.0, 0.91),
                (10_000_000.0, 0.955),
                (100_000_000.0, 0.986),
                (1_000_000_000.0, 1.0),
            ],
            Workload::WebSearch => vec![
                (500.0, 0.15),
                (2_000.0, 0.35),
                (10_000.0, 0.49),
                (100_000.0, 0.52),
                (1_000_000.0, 0.70),
                (3_000_000.0, 0.90),
                (30_000_000.0, 1.0),
            ],
            Workload::CacheFollower => vec![
                (300.0, 0.15),
                (2_000.0, 0.35),
                (10_000.0, 0.50),
                (100_000.0, 0.53),
                (1_000_000.0, 0.71),
                (2_000_000.0, 0.95),
                (10_000_000.0, 1.0),
            ],
            Workload::WebServer => vec![
                (200.0, 0.15),
                (2_000.0, 0.40),
                (10_000.0, 0.63),
                (100_000.0, 0.81),
                (500_000.0, 0.995),
                (1_000_000.0, 1.0),
            ],
        };
        WorkloadDist {
            workload: w,
            cdf: EmpiricalCdf::new(points),
        }
    }

    /// Sample one flow size in bytes (at least 1).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        (self.cdf.sample(rng) as u64).max(1)
    }

    /// Analytic mean of the encoded distribution.
    pub fn mean(&self) -> f64 {
        self.cdf.mean()
    }

    /// Largest size in the support.
    pub fn max_size(&self) -> u64 {
        self.cdf.max_value() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket_masses(d: &WorkloadDist, n: usize, seed: u64) -> [f64; 4] {
        let mut rng = Rng::new(seed);
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let s = d.sample(&mut rng);
            let b = if s <= 10_000 {
                0
            } else if s <= 100_000 {
                1
            } else if s <= 1_000_000 {
                2
            } else {
                3
            };
            counts[b] += 1;
        }
        counts.map(|c| c as f64 / n as f64)
    }

    #[test]
    fn bucket_masses_match_table2() {
        for w in Workload::all() {
            let d = w.dist();
            let got = bucket_masses(&d, 200_000, 7);
            let want = w.table2_buckets();
            for (i, (&g, &t)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    (g - t).abs() < 0.015,
                    "{}: bucket {i}: got {g:.3}, table {t:.3}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn means_match_table2() {
        for w in Workload::all() {
            let d = w.dist();
            let mean = d.mean();
            let want = w.table2_mean();
            let rel = (mean - want).abs() / want;
            assert!(
                rel < 0.30,
                "{}: mean {mean:.0} vs table {want:.0} ({:.0}% off)",
                w.name(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn workload_ordering_by_mean() {
        // Table 2: data mining ≫ web search > cache follower ≫ web server.
        let m: Vec<f64> = Workload::all().iter().map(|w| w.dist().mean()).collect();
        assert!(m[0] > m[1] && m[1] > m[2] && m[2] > m[3], "{m:?}");
    }

    #[test]
    fn caps_respected() {
        assert_eq!(Workload::DataMining.dist().max_size(), 1_000_000_000);
        assert_eq!(Workload::WebSearch.dist().max_size(), 30_000_000);
        let mut rng = Rng::new(3);
        let d = Workload::DataMining.dist();
        for _ in 0..100_000 {
            assert!(d.sample(&mut rng) <= 1_000_000_000);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Workload::WebSearch.dist();
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
