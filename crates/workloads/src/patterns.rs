//! Synthetic traffic patterns: incast, permutation, MapReduce shuffle, and
//! the partition/aggregate request/response application of Fig 1.

use crate::FlowSpec;
use std::collections::HashMap;
use xpass_net::ids::{FlowId, HostId};
use xpass_net::network::{Controller, Network};
use xpass_sim::time::{Dur, SimTime};

/// N-to-1 incast: every sender ships `size_bytes` to `dst` at `start`.
pub fn incast(senders: &[HostId], dst: HostId, size_bytes: u64, start: SimTime) -> Vec<FlowSpec> {
    senders
        .iter()
        .filter(|&&s| s != dst)
        .map(|&src| FlowSpec {
            src,
            dst,
            size_bytes,
            start,
        })
        .collect()
}

/// Permutation traffic: host `i` sends to host `(i + 1) mod n`.
pub fn permutation(n_hosts: usize, size_bytes: u64, start: SimTime) -> Vec<FlowSpec> {
    (0..n_hosts)
        .map(|i| FlowSpec {
            src: HostId(i as u32),
            dst: HostId(((i + 1) % n_hosts) as u32),
            size_bytes,
            start,
        })
        .collect()
}

/// Parking-lot traffic (Fig 10) over `Topology::chain(n + 1, 2, ..)`,
/// which gives switch `i` the hosts `2i` and `2i + 1`: flow 0 spans all
/// `n` switch-to-switch links (host 0 on the first switch to the upper
/// host of the last), and cross-flow `i` crosses only link `i` (lower
/// host of switch `i` to upper host of switch `i + 1`). All flows start
/// at time zero.
pub fn parking_lot(n_bottlenecks: usize, size_bytes: u64) -> Vec<FlowSpec> {
    let n = n_bottlenecks;
    let mut specs = vec![FlowSpec {
        src: HostId(0),
        dst: HostId((2 * n + 1) as u32),
        size_bytes,
        start: SimTime::ZERO,
    }];
    for i in 0..n {
        specs.push(FlowSpec {
            src: HostId((2 * i + 1) as u32),
            dst: HostId((2 * (i + 1)) as u32),
            size_bytes,
            start: SimTime::ZERO,
        });
    }
    specs
}

/// MapReduce shuffle (Fig 17): `tasks_per_host` tasks on each of `n_hosts`
/// hosts; every task sends `bytes_per_pair` to every task on every *other*
/// host. Flow count: `n_hosts · tasks² · (n_hosts − 1)`.
///
/// Task starts are staggered by a tiny per-flow offset so the simulator's
/// event ordering does not artificially synchronize 100k SYNs.
pub fn shuffle(
    n_hosts: usize,
    tasks_per_host: usize,
    bytes_per_pair: u64,
    rng: &mut xpass_sim::rng::Rng,
) -> Vec<FlowSpec> {
    let mut specs = Vec::new();
    for src_h in 0..n_hosts {
        for dst_h in 0..n_hosts {
            if src_h == dst_h {
                continue;
            }
            for _src_task in 0..tasks_per_host {
                for _dst_task in 0..tasks_per_host {
                    specs.push(FlowSpec {
                        src: HostId(src_h as u32),
                        dst: HostId(dst_h as u32),
                        size_bytes: bytes_per_pair,
                        start: SimTime::ZERO + Dur::ps(rng.below(1_000_000_000)),
                    });
                }
            }
        }
    }
    specs
}

/// The partition/aggregate application of Fig 1, run as a network
/// controller: a master continuously sends `request_bytes` to each of
/// `fan_out` workers (round-robin over worker hosts — multiple worker tasks
/// may share a host, footnote 2); each worker answers with
/// `response_bytes`; when every response of a round completes, the next
/// round starts, up to `rounds`.
pub struct PartitionAggregate {
    /// Aggregator host.
    pub master: HostId,
    /// Worker hosts (tasks are assigned round-robin).
    pub worker_hosts: Vec<HostId>,
    /// Number of worker tasks per round (the fan-out).
    pub fan_out: usize,
    /// Request size (paper: 200 B).
    pub request_bytes: u64,
    /// Response size (paper: 1000 B).
    pub response_bytes: u64,
    /// Rounds to run.
    pub rounds: usize,
    state: PaState,
}

struct PaState {
    round: usize,
    pending_requests: HashMap<u32, HostId>,
    pending_responses: usize,
    started: bool,
}

impl PartitionAggregate {
    /// New application in the paper's Fig 1 configuration
    /// (200 B requests, 1000 B responses).
    pub fn new(
        master: HostId,
        worker_hosts: Vec<HostId>,
        fan_out: usize,
        rounds: usize,
    ) -> PartitionAggregate {
        assert!(!worker_hosts.is_empty());
        assert!(rounds >= 1);
        PartitionAggregate {
            master,
            worker_hosts,
            fan_out,
            request_bytes: 200,
            response_bytes: 1000,
            rounds,
            state: PaState {
                round: 0,
                pending_requests: HashMap::new(),
                pending_responses: 0,
                started: false,
            },
        }
    }

    /// Completed rounds so far.
    pub fn rounds_done(&self) -> usize {
        self.state.round
    }

    fn launch_round(&mut self, net: &mut Network) {
        let now = net.now();
        for i in 0..self.fan_out {
            let worker = self.worker_hosts[i % self.worker_hosts.len()];
            let f = net.add_flow(self.master, worker, self.request_bytes, now);
            self.state.pending_requests.insert(f.0, worker);
        }
        self.state.pending_responses = self.fan_out;
    }
}

impl Controller for PartitionAggregate {
    fn on_flow_start(&mut self, net: &mut Network, _flow: FlowId) {
        if !self.state.started {
            // The very first flow start in the run triggers round 1; flows
            // added by launch_round re-enter here harmlessly.
            self.state.started = true;
            if self.state.pending_responses == 0 && self.state.pending_requests.is_empty() {
                self.launch_round(net);
            }
        }
    }

    fn on_flow_complete(&mut self, net: &mut Network, flow: FlowId) {
        if let Some(worker) = self.state.pending_requests.remove(&flow.0) {
            // Request delivered → worker responds.
            let now = net.now();
            net.add_flow(worker, self.master, self.response_bytes, now);
        } else {
            // A response completed.
            self.state.pending_responses -= 1;
            if self.state.pending_responses == 0 && self.state.pending_requests.is_empty() {
                self.state.round += 1;
                if self.state.round < self.rounds {
                    self.launch_round(net);
                }
            }
        }
    }

    fn snap_ctl(&self, w: &mut xpass_sim::SnapWriter) {
        w.usize(self.state.round);
        // Sorted by flow id: HashMap order is unspecified and snapshots
        // must be byte-identical across processes.
        let mut reqs: Vec<(&u32, &HostId)> = self.state.pending_requests.iter().collect();
        reqs.sort_unstable_by_key(|(&f, _)| f);
        w.usize(reqs.len());
        for (&f, &h) in reqs {
            w.u32(f);
            w.u32(h.0);
        }
        w.usize(self.state.pending_responses);
        w.bool(self.state.started);
    }

    fn restore_ctl(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        r.enter("partition_aggregate");
        self.state.round = r.usize()?;
        let n = r.seq_len(8)?;
        self.state.pending_requests.clear();
        for _ in 0..n {
            let f = r.u32()?;
            let h = HostId(r.u32()?);
            self.state.pending_requests.insert(f, h);
        }
        self.state.pending_responses = r.usize()?;
        self.state.started = r.bool()?;
        r.leave();
        Ok(())
    }
}

/// Kick off a partition/aggregate run: installs the controller and injects
/// a sentinel first round. Returns nothing; run the network to completion.
pub fn start_partition_aggregate(net: &mut Network, mut app: PartitionAggregate) {
    app.launch_round(net);
    app.state.started = true;
    net.set_controller(Box::new(app));
}

#[cfg(test)]
mod tests {
    use super::*;
    use expresspass::{xpass_factory, XPassConfig};
    use xpass_net::config::{HostDelayModel, NetConfig};
    use xpass_net::topology::Topology;

    const G10: u64 = 10_000_000_000;

    #[test]
    fn incast_excludes_destination() {
        let senders: Vec<HostId> = (0..8).map(HostId).collect();
        let specs = incast(&senders, HostId(3), 1000, SimTime::ZERO);
        assert_eq!(specs.len(), 7);
        assert!(specs.iter().all(|s| s.dst == HostId(3) && s.src != s.dst));
    }

    #[test]
    fn permutation_is_a_ring() {
        let specs = permutation(5, 100, SimTime::ZERO);
        assert_eq!(specs.len(), 5);
        assert_eq!(specs[4].dst, HostId(0));
    }

    #[test]
    fn shuffle_flow_count_matches_formula() {
        // Fig 17 text: each host sends 39×8×8 flows with 40 hosts, 8 tasks.
        let mut rng = xpass_sim::rng::Rng::new(1);
        let specs = shuffle(4, 2, 1000, &mut rng);
        // n_hosts × (n_hosts−1) × tasks² = 4×3×4 = 48.
        assert_eq!(specs.len(), 48);
        let from_h0 = specs.iter().filter(|s| s.src == HostId(0)).count();
        assert_eq!(from_h0, 12); // (n−1)×tasks² = 3×4
    }

    #[test]
    fn partition_aggregate_runs_rounds() {
        let topo = Topology::star(9, G10, Dur::us(1));
        let mut cfg = NetConfig::expresspass().with_seed(3);
        cfg.host_delay = HostDelayModel {
            min: Dur::us(1),
            max: Dur::us(1),
        };
        let mut net =
            xpass_net::network::Network::new(topo, cfg, xpass_factory(XPassConfig::aggressive()));
        let workers: Vec<HostId> = (1..9).map(HostId).collect();
        let app = PartitionAggregate::new(HostId(0), workers, 16, 3);
        start_partition_aggregate(&mut net, app);
        net.run_until_done(SimTime::ZERO + Dur::secs(1));
        // 3 rounds × (16 requests + 16 responses) flows, all complete.
        assert_eq!(net.flow_count(), 96);
        assert_eq!(net.completed_count(), 96);
    }
}
