//! # xpass-workloads — datacenter traffic generation
//!
//! * [`dists`] — empirical flow-size distributions for the paper's four
//!   realistic workloads (Table 2): data mining, web search, cache
//!   follower, web server.
//! * [`arrivals`] — Poisson flow arrivals calibrated to a target load on
//!   the ToR uplinks (§6.3).
//! * [`patterns`] — synthetic patterns: incast, permutation, MapReduce
//!   shuffle (Fig 17), and the partition/aggregate request/response
//!   application of Fig 1 (as a network controller running rounds).

#![warn(missing_docs)]
pub mod arrivals;
pub mod dists;
pub mod patterns;

pub use arrivals::PoissonWorkload;
pub use dists::{Workload, WorkloadDist};
pub use patterns::{incast, parking_lot, permutation, shuffle, PartitionAggregate};

use xpass_net::ids::HostId;
use xpass_sim::time::SimTime;

/// One flow to inject into a network.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Application bytes.
    pub size_bytes: u64,
    /// Arrival time.
    pub start: SimTime,
}

/// Add every spec to a network, returning the flow ids.
pub fn add_all(
    net: &mut xpass_net::network::Network,
    specs: &[FlowSpec],
) -> Vec<xpass_net::ids::FlowId> {
    specs
        .iter()
        .map(|s| net.add_flow(s.src, s.dst, s.size_bytes, s.start))
        .collect()
}
