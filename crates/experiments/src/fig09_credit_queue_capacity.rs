//! Fig 9 — credit queue capacity vs utilization: N flows arrive from
//! different ports and depart through one port; too-small credit buffers
//! drop bursts of credits arriving simultaneously across ports and leave
//! the data path underutilized. The paper finds 8 credits suffice.

use crate::harness::text_table;
use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::ids::HostId;
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

/// Fig 9 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Flow counts (paper: 2–32).
    pub flow_counts: Vec<usize>,
    /// Credit queue capacities (paper: 1–32).
    pub capacities: Vec<usize>,
    /// Link speed.
    pub link_bps: u64,
    /// Measurement window.
    pub window: Dur,
    /// Warmup.
    pub warmup: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            flow_counts: vec![2, 8, 32],
            capacities: vec![1, 2, 4, 8, 16, 32],
            link_bps: 10_000_000_000,
            window: Dur::ms(4),
            warmup: Dur::ms(2),
            seed: 17,
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Concurrent fan-in flows.
    pub flows: usize,
    /// Credit queue capacity (credits).
    pub capacity: usize,
    /// Under-utilization normalized by the maximum data rate.
    pub underutilization: f64,
}

/// Fig 9 result.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// Points (flows × capacity).
    pub points: Vec<Point>,
}

fn measure(cfg: &Config, n: usize, cap: usize) -> f64 {
    // N senders on a star, one receiver: the receiver's downlink is the
    // shared egress where credits from all sender-side... the *credit*
    // bottleneck is the receiver's credit path fan-in at the switch.
    let topo = Topology::star(n + 1, cfg.link_bps, Dur::us(1));
    let mut net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
    net_cfg.credit_queue_pkts = cap;
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    let bytes = cfg.link_bps / 8;
    let dst = HostId(n as u32);
    for i in 0..n {
        net.add_flow(HostId(i as u32), dst, bytes, SimTime::ZERO);
    }
    net.run_until(SimTime::ZERO + cfg.warmup);
    // Measure payload delivered over the window at the receiver downlink.
    let dl = net
        .topo()
        .dlinks
        .iter()
        .position(|l| l.to == xpass_net::ids::NodeId::Host(dst))
        .map(|i| xpass_net::ids::DLinkId(i as u32))
        .unwrap();
    let before = net.port(dl).tx_data_bytes;
    net.run_until(SimTime::ZERO + cfg.warmup + cfg.window);
    let wire_bytes = net.port(dl).tx_data_bytes - before;
    let max_data = cfg.link_bps as f64 * (1538.0 / 1622.0) / 8.0 * cfg.window.as_secs_f64();
    (1.0 - wire_bytes as f64 / max_data).max(0.0)
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Fig9 {
    let mut points = Vec::new();
    for &n in &cfg.flow_counts {
        for &cap in &cfg.capacities {
            points.push(Point {
                flows: n,
                capacity: cap,
                underutilization: measure(cfg, n, cap),
            });
        }
    }
    Fig9 { points }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut caps: Vec<usize> = Vec::new();
        for p in &self.points {
            if !caps.contains(&p.capacity) {
                caps.push(p.capacity);
            }
        }
        let mut headers = vec!["flows".to_string()];
        headers.extend(caps.iter().map(|c| format!("cq={c}")));
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut flows: Vec<usize> = Vec::new();
        for p in &self.points {
            if !flows.contains(&p.flows) {
                flows.push(p.flows);
            }
        }
        let rows: Vec<Vec<String>> = flows
            .iter()
            .map(|&n| {
                let mut row = vec![n.to_string()];
                for p in self.points.iter().filter(|p| p.flows == n) {
                    row.push(format!("{:.2}%", p.underutilization * 100.0));
                }
                row
            })
            .collect();
        writeln!(f, "Fig 9: under-utilization vs credit queue capacity")?;
        write!(f, "{}", text_table(&hdr_refs, &rows))
    }
}

use xpass_sim::json::Json;

impl Fig9 {
    /// Structured payload: underutilization per (flows, capacity) point.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .with("flows", Json::num_u64(p.flows as u64))
                    .with("capacity", Json::num_u64(p.capacity as u64))
                    .with("underutilization", Json::Num(p.underutilization))
            })
            .collect();
        Json::obj().with("points", Json::Arr(points))
    }
}

/// Registry adapter: drives Fig 9 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig09"
    }
    fn describe(&self) -> &str {
        "credit queue capacity vs utilization"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            flow_counts: vec![8],
            capacities: vec![1, 8],
            window: Dur::ms(3),
            warmup: Dur::ms(2),
            ..Config::default()
        }
    }

    #[test]
    fn eight_credit_queue_is_sufficient() {
        let r = run(&quick());
        let cq8 = r
            .points
            .iter()
            .find(|p| p.capacity == 8)
            .unwrap()
            .underutilization;
        // Paper: ≤ ~1-2% under-utilization at 8 credits.
        assert!(cq8 < 0.06, "under-utilization {cq8:.3} at cq=8");
    }

    #[test]
    fn tiny_queue_hurts_no_more_than_modestly_but_consistently() {
        let r = run(&quick());
        let cq1 = r.points.iter().find(|p| p.capacity == 1).unwrap();
        let cq8 = r.points.iter().find(|p| p.capacity == 8).unwrap();
        assert!(
            cq1.underutilization >= cq8.underutilization - 0.01,
            "cq=1 {:.3} vs cq=8 {:.3}",
            cq1.underutilization,
            cq8.underutilization
        );
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("cq=8"));
    }
}
