//! Table 1 — required buffer for zero data loss, per port class, for the
//! paper's four topology rows (computed by the Eq-1 network calculus).

use crate::harness::text_table;
use expresspass::netcalc::{buffer_bounds, HierTopo, NetCalcParams};
use std::fmt;

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Topology label.
    pub topology: String,
    /// ToR down-port bound (bytes) and the paper's value.
    pub tor_down: (u64, f64),
    /// ToR up-port bound (bytes) and the paper's value.
    pub tor_up: (u64, f64),
    /// Core-port bound (bytes) and the paper's value.
    pub core: (u64, f64),
}

/// Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// All four topology rows.
    pub rows: Vec<Row>,
}

/// Compute the table with the paper's testbed parameters.
pub fn run() -> Table1 {
    let p = NetCalcParams::testbed();
    let cases: [(HierTopo, [f64; 3]); 4] = [
        (HierTopo::fat32_10_40(), [577_300.0, 19_000.0, 131_100.0]),
        (HierTopo::fat32_40_100(), [1_060_000.0, 37_200.0, 221_800.0]),
        (HierTopo::clos_10_40(), [577_300.0, 19_000.0, 131_100.0]),
        (HierTopo::clos_40_100(), [1_060_000.0, 37_200.0, 221_800.0]),
    ];
    let rows = cases
        .into_iter()
        .map(|(topo, paper)| {
            let b = buffer_bounds(&topo, &p);
            Row {
                topology: topo.name.clone(),
                tor_down: (b.tor_down.buffer_bytes, paper[0]),
                tor_up: (b.tor_up.buffer_bytes, paper[1]),
                core: (b.core.buffer_bytes, paper[2]),
            }
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kb = |b: u64| format!("{:.1}KB", b as f64 / 1e3);
        let pkb = |b: f64| format!("{:.1}KB", b / 1e3);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.topology.clone(),
                    kb(r.tor_down.0),
                    pkb(r.tor_down.1),
                    kb(r.tor_up.0),
                    pkb(r.tor_up.1),
                    kb(r.core.0),
                    pkb(r.core.1),
                ]
            })
            .collect();
        writeln!(f, "Table 1: required buffer per port class (ours vs paper)")?;
        write!(
            f,
            "{}",
            text_table(
                &["Topology", "ToR down", "(paper)", "ToR up", "(paper)", "Core", "(paper)"],
                &rows
            )
        )
    }
}

use xpass_sim::json::Json;

impl Table1 {
    /// Structured payload: computed vs paper bounds per port class.
    pub fn to_json(&self) -> Json {
        let bound = |(ours, paper): (u64, f64)| {
            Json::obj()
                .with("bytes", Json::num_u64(ours))
                .with("paper_bytes", Json::Num(paper))
        };
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .with("topology", Json::str(&r.topology))
                    .with("tor_down", bound(r.tor_down))
                    .with("tor_up", bound(r.tor_up))
                    .with("core", bound(r.core))
            })
            .collect();
        Json::obj().with("rows", Json::Arr(rows))
    }
}

/// Registry adapter: drives Table 1 through the [`crate::Experiment`]
/// trait. The table is analytic — no config, seed, or paper scale.
#[derive(Default)]
pub struct Exp;

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "table1"
    }
    fn describe(&self) -> &str {
        "network-calculus buffer bounds"
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run();
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_present_and_shaped() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            // Class ordering matches the paper: down ≫ core > up.
            assert!(r.tor_down.0 > r.core.0);
            assert!(r.core.0 > r.tor_up.0);
            // Same order of magnitude as the paper's numbers.
            for (ours, paper) in [r.tor_down, r.tor_up, r.core] {
                let ratio = ours as f64 / paper;
                assert!(
                    (0.3..4.0).contains(&ratio),
                    "{}: {ours} vs paper {paper}",
                    r.topology
                );
            }
        }
    }

    #[test]
    fn clos_rows_equal_fat_tree_rows() {
        let t = run();
        assert_eq!(t.rows[0].tor_down.0, t.rows[2].tor_down.0);
        assert_eq!(t.rows[1].core.0, t.rows[3].core.0);
    }

    #[test]
    fn renders() {
        let s = run().to_string();
        assert!(s.contains("ToR down"));
        assert!(s.contains("32-ary fat tree"));
    }
}
