//! Table 3 — average / maximum switch queue occupancy for the realistic
//! workloads across loads and schemes.
//!
//! Paper shape: ExpressPass averages well under 1 KB with a max bound set
//! by the topology (independent of load); RCP pins the max at queue
//! capacity; DCTCP's average and max grow with load; DX/HULL keep small
//! averages with moderate maxima.

use crate::harness::{fmt_bytes, text_table, RealisticRun, Scheme};
use std::fmt;
use xpass_workloads::Workload;

/// Table 3 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workloads and flow counts.
    pub workloads: Vec<(Workload, usize)>,
    /// Target loads (paper: 0.2 / 0.4 / 0.6).
    pub loads: Vec<f64>,
    /// Schemes.
    pub schemes: Vec<Scheme>,
    /// Link speed.
    pub link_bps: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 1500), (Workload::CacheFollower, 600)],
            loads: vec![0.2, 0.6],
            schemes: Scheme::comparison_set(),
            link_bps: 10_000_000_000,
            seed: 71,
        }
    }
}

impl Config {
    /// The paper's full grid.
    pub fn paper_scale() -> Config {
        Config {
            workloads: vec![
                (Workload::DataMining, 100_000),
                (Workload::WebSearch, 100_000),
                (Workload::CacheFollower, 100_000),
                (Workload::WebServer, 100_000),
            ],
            loads: vec![0.2, 0.4, 0.6],
            ..Config::default()
        }
    }
}

/// One cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name.
    pub workload: &'static str,
    /// Load.
    pub load: f64,
    /// Scheme name.
    pub scheme: &'static str,
    /// Time-weighted average queue (bytes, mean over switch ports).
    pub avg_bytes: f64,
    /// Maximum queue (bytes).
    pub max_bytes: u64,
}

/// Table 3 result.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Run the grid.
pub fn run(cfg: &Config) -> Table3 {
    let mut cells = Vec::new();
    for &(w, n) in &cfg.workloads {
        for &load in &cfg.loads {
            for &scheme in &cfg.schemes {
                let r = RealisticRun {
                    workload: w,
                    load,
                    n_flows: n,
                    link_bps: cfg.link_bps,
                    scheme,
                    seed: cfg.seed,
                }
                .run();
                cells.push(Cell {
                    workload: w.name(),
                    load,
                    scheme: scheme.name(),
                    avg_bytes: r.avg_queue_bytes,
                    max_bytes: r.max_queue_bytes,
                });
            }
        }
    }
    Table3 { cells }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.workload.to_string(),
                    format!("{:.1}", c.load),
                    c.scheme.to_string(),
                    fmt_bytes(c.avg_bytes),
                    fmt_bytes(c.max_bytes as f64),
                ]
            })
            .collect();
        writeln!(f, "Table 3: average / max switch queue occupancy")?;
        write!(
            f,
            "{}",
            text_table(&["Workload", "Load", "Scheme", "Avg", "Max"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Table3 {
    /// Structured payload: avg/max queue bytes per (workload, load, scheme).
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .with("workload", Json::str(c.workload))
                    .with("load", Json::Num(c.load))
                    .with("scheme", Json::str(c.scheme))
                    .with("avg_bytes", Json::Num(c.avg_bytes))
                    .with("max_bytes", Json::num_u64(c.max_bytes))
            })
            .collect();
        Json::obj().with("cells", Json::Arr(cells))
    }
}

/// Registry adapter: drives Table 3 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "table3"
    }
    fn describe(&self) -> &str {
        "queue occupancy"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn paper_scale_config(&mut self) -> bool {
        self.0 = Config::paper_scale();
        true
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 600)],
            loads: vec![0.6],
            schemes: vec![
                Scheme::XPass(expresspass::XPassConfig::default()),
                Scheme::Dctcp,
            ],
            ..Config::default()
        }
    }

    #[test]
    fn expresspass_queues_smaller_than_dctcp() {
        let r = run(&quick());
        let xp = &r.cells[0];
        let dc = &r.cells[1];
        assert!(
            xp.avg_bytes < dc.avg_bytes,
            "avg: xpass {} vs dctcp {}",
            xp.avg_bytes,
            dc.avg_bytes
        );
        assert!(
            xp.max_bytes < dc.max_bytes,
            "max: xpass {} vs dctcp {}",
            xp.max_bytes,
            dc.max_bytes
        );
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Table 3"));
    }
}
