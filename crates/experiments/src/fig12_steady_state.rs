//! Fig 12 — steady-state behaviour of the credit feedback loop, produced by
//! iterating the §4 discrete model with the real Algorithm-1 code: the
//! credit sending rate converges to the fair share R* and keeps oscillating
//! within the D* = C·w_min·(1 − 1/N) band.

use expresspass::analysis::DiscreteModel;
use expresspass::XPassConfig;
use std::fmt;

/// Fig 12 configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Flows sharing the bottleneck.
    pub n_flows: usize,
    /// Bottleneck maximum credit rate (credits/s; 10 G default).
    pub max_rate: f64,
    /// Update periods to iterate.
    pub periods: usize,
    /// Feedback parameters.
    pub xpass: XPassConfig,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n_flows: 4,
            max_rate: 10e9 / (8.0 * 1622.0),
            periods: 200,
            xpass: XPassConfig::aggressive(),
        }
    }
}

/// Fig 12 result: the rate trace of one flow plus the analytic lines.
#[derive(Clone, Debug)]
pub struct Fig12 {
    /// Flow-0 credit rate per period.
    pub trace: Vec<f64>,
    /// Fair share R* = C/N.
    pub fair_share: f64,
    /// Steady-state oscillation bound D*.
    pub d_star: f64,
    /// Period at which flow 0 first came within 10 % of R*.
    pub converged_at: Option<usize>,
    /// Maximum |R(t) − R(t−1)| over the final 10 periods.
    pub late_oscillation: f64,
}

/// Run the discrete model.
pub fn run(cfg: &Config) -> Fig12 {
    let mut m = DiscreteModel::new(cfg.n_flows, cfg.max_rate, cfg.xpass);
    m.run(cfg.periods);
    let trace: Vec<f64> = m.history.iter().map(|r| r[0]).collect();
    let fair = m.fair_share();
    // The sustained operating point overshoots the fair share by the target
    // loss rate by design (§3.2): converge to (1+target)·C/N.
    let operating = fair * (1.0 + cfg.xpass.target_loss);
    let converged_at = trace
        .iter()
        .position(|&r| (r - operating).abs() <= 0.12 * operating);
    let t_end = m.steps();
    let late_oscillation = (t_end.saturating_sub(10)..=t_end)
        .filter(|&t| t >= 1)
        .map(|t| m.oscillation(0, t))
        .fold(0.0, f64::max);
    Fig12 {
        trace,
        fair_share: fair,
        d_star: m.d_star(),
        converged_at,
        late_oscillation,
    }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 12: steady-state feedback behaviour (discrete model)"
        )?;
        writeln!(f, "fair share R*      : {:.0} credits/s", self.fair_share)?;
        writeln!(f, "converged (10%) at : period {:?}", self.converged_at)?;
        writeln!(f, "D* bound           : {:.0} credits/s", self.d_star)?;
        writeln!(
            f,
            "late oscillation   : {:.0} credits/s",
            self.late_oscillation
        )?;
        // Compact sparkline of the trace relative to R*.
        let marks: String = self
            .trace
            .iter()
            .step_by((self.trace.len() / 60).max(1))
            .map(|&r| {
                let x = r / self.fair_share;
                if x < 0.5 {
                    '_'
                } else if x < 0.9 {
                    '.'
                } else if x < 1.1 {
                    '-'
                } else {
                    '^'
                }
            })
            .collect();
        writeln!(f, "rate/R* trace      : {marks}")
    }
}

use xpass_sim::json::Json;

impl Fig12 {
    /// Structured payload: the rate trace plus the analytic lines.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with(
                "trace",
                Json::Arr(self.trace.iter().map(|&r| Json::Num(r)).collect()),
            )
            .with("fair_share", Json::Num(self.fair_share))
            .with("d_star", Json::Num(self.d_star))
            .with(
                "converged_at",
                match self.converged_at {
                    Some(p) => Json::num_u64(p as u64),
                    None => Json::Null,
                },
            )
            .with("late_oscillation", Json::Num(self.late_oscillation))
    }
}

/// Registry adapter: drives Fig 12 through the [`crate::Experiment`] trait.
/// The discrete model is deterministic — no seed.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig12"
    }
    fn describe(&self) -> &str {
        "steady-state feedback model"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_and_stays_in_band() {
        let r = run(&Config::default());
        let at = r.converged_at.expect("must converge");
        assert!(at < 60, "converged at {at}");
        // Late oscillation within a small factor of D*.
        assert!(
            r.late_oscillation <= 3.0 * r.d_star + 1.0,
            "{} vs D* {}",
            r.late_oscillation,
            r.d_star
        );
        // Final rate near fair share.
        let last = *r.trace.last().unwrap();
        assert!((last - r.fair_share).abs() < 0.2 * r.fair_share);
    }

    #[test]
    fn more_flows_smaller_share() {
        let mut c = Config::default();
        let r4 = run(&c);
        c.n_flows = 16;
        let r16 = run(&c);
        assert!(r16.fair_share < r4.fair_share);
        assert!(r16.d_star > r4.d_star, "D* grows with (1-1/N)");
    }

    #[test]
    fn renders() {
        let s = run(&Config::default()).to_string();
        assert!(s.contains("Fig 12"));
        assert!(s.contains("fair share"));
    }
}
