//! Ablations over the reproduction's design choices: credit-drop policy,
//! routing mode, the §7 early CREDIT_STOP, and the w_min stability knob.
//!
//! These are not paper figures; they quantify the choices DESIGN.md makes
//! where the paper under-specifies the mechanism (drop randomization) or
//! sketches an extension (§7).

use crate::harness::text_table;
use expresspass::analysis::DiscreteModel;
use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::{NetConfig, RoutingMode};
use xpass_net::ids::HostId;
use xpass_net::network::Network;
use xpass_net::queue::CreditDropPolicy;
use xpass_net::topology::Topology;
use xpass_sim::stats::jain_fairness;
use xpass_sim::time::{Dur, SimTime};

/// Ablation configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Link speed.
    pub link_bps: u64,
    /// Flows for the drop-policy panel.
    pub flows: usize,
    /// Warmup / window for throughput panels.
    pub warmup: Dur,
    /// Measurement window.
    pub window: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            link_bps: 10_000_000_000,
            flows: 16,
            warmup: Dur::ms(10),
            window: Dur::ms(25),
            seed: 97,
        }
    }
}

/// One drop-policy row.
#[derive(Clone, Debug)]
pub struct DropPolicyRow {
    /// Policy under test.
    pub policy: &'static str,
    /// Bottleneck utilization.
    pub utilization: f64,
    /// Jain fairness over the window.
    pub fairness: f64,
}

/// One routing-mode row.
#[derive(Clone, Debug)]
pub struct RoutingRow {
    /// Mode under test.
    pub mode: &'static str,
    /// Mean FCT over the permutation (seconds).
    pub mean_fct: f64,
    /// Max switch queue (bytes).
    pub max_queue: u64,
}

/// One w_min row (discrete model).
#[derive(Clone, Copy, Debug)]
pub struct WminRow {
    /// w_min under test.
    pub w_min: f64,
    /// Late oscillation amplitude (credits/s).
    pub oscillation: f64,
    /// Analytic D* bound.
    pub d_star: f64,
}

/// Full ablation result.
#[derive(Clone, Debug)]
pub struct Ablations {
    /// Credit-drop policy panel.
    pub drop_policies: Vec<DropPolicyRow>,
    /// Routing-mode panel.
    pub routing: Vec<RoutingRow>,
    /// Early-stop panel: (wasted credits off, on).
    pub early_stop_waste: (u64, u64),
    /// w_min stability panel.
    pub w_min: Vec<WminRow>,
}

fn drop_policy_panel(cfg: &Config) -> Vec<DropPolicyRow> {
    let cases = [
        ("Tail", CreditDropPolicy::Tail),
        ("UniformRandom", CreditDropPolicy::UniformRandom),
        ("LongestQueueDrop", CreditDropPolicy::LongestQueueDrop),
    ];
    cases
        .into_iter()
        .map(|(name, policy)| {
            let topo = Topology::dumbbell(cfg.flows, cfg.link_bps, Dur::us(8));
            let mut net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
            net_cfg.credit_drop = policy;
            let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
            let flows: Vec<_> = (0..cfg.flows)
                .map(|i| {
                    net.add_flow(
                        HostId(i as u32),
                        HostId((cfg.flows + i) as u32),
                        1 << 30,
                        SimTime::ZERO + Dur::us((i as u64 * 37) % 500),
                    )
                })
                .collect();
            net.run_until(SimTime::ZERO + cfg.warmup);
            let before: Vec<u64> = flows.iter().map(|&f| net.delivered_bytes(f)).collect();
            net.run_until(SimTime::ZERO + cfg.warmup + cfg.window);
            let deltas: Vec<f64> = flows
                .iter()
                .zip(&before)
                .map(|(&f, &b)| (net.delivered_bytes(f) - b) as f64)
                .collect();
            DropPolicyRow {
                policy: name,
                utilization: deltas.iter().sum::<f64>() * 8.0
                    / cfg.window.as_secs_f64()
                    / cfg.link_bps as f64,
                fairness: jain_fairness(&deltas),
            }
        })
        .collect()
}

fn routing_panel(cfg: &Config) -> Vec<RoutingRow> {
    let cases = [
        ("EcmpSymmetric", RoutingMode::EcmpSymmetric),
        ("PacketSpray", RoutingMode::PacketSpray),
    ];
    cases
        .into_iter()
        .map(|(name, mode)| {
            let topo = Topology::fat_tree(4, cfg.link_bps, cfg.link_bps, Dur::us(2));
            let n = topo.n_hosts;
            let mut net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
            net_cfg.routing = mode;
            let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::default()));
            for i in 0..n {
                net.add_flow(
                    HostId(i as u32),
                    HostId(((i + n / 2) % n) as u32),
                    2_000_000,
                    SimTime::ZERO,
                );
            }
            net.run_until_done(SimTime::ZERO + Dur::secs(2));
            let recs = net.flow_records();
            let mean = recs
                .iter()
                .filter_map(|r| r.fct.map(|d| d.as_secs_f64()))
                .sum::<f64>()
                / recs.len() as f64;
            RoutingRow {
                mode: name,
                mean_fct: mean,
                max_queue: net.max_switch_queue_bytes(),
            }
        })
        .collect()
}

fn early_stop_panel(cfg: &Config) -> (u64, u64) {
    let run = |early: bool| -> u64 {
        let topo = Topology::dumbbell(4, cfg.link_bps, Dur::us(25));
        let net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
        let xp = if early {
            XPassConfig::aggressive().with_early_credit_stop()
        } else {
            XPassConfig::aggressive()
        };
        let mut net = Network::new(topo, net_cfg, xpass_factory(xp));
        for i in 0..4u32 {
            for k in 0..10u32 {
                net.add_flow(
                    HostId(i),
                    HostId(4 + i),
                    200_000,
                    SimTime::ZERO + Dur::us(k as u64 * 400),
                );
            }
        }
        net.run_until_done(SimTime::ZERO + Dur::secs(1));
        net.drain_until(net.now() + Dur::ms(5));
        net.counters().credits_wasted
    };
    (run(false), run(true))
}

fn w_min_panel() -> Vec<WminRow> {
    [0.005, 0.01, 0.05, 0.16]
        .into_iter()
        .map(|w_min| {
            let mut xp = XPassConfig::aggressive();
            xp.w_min = w_min;
            let mut m = DiscreteModel::new(8, 770_653.5, xp);
            m.run(400);
            let t = m.steps();
            let osc = (t - 8..=t).map(|t| m.oscillation(0, t)).fold(0.0, f64::max);
            WminRow {
                w_min,
                oscillation: osc,
                d_star: m.d_star(),
            }
        })
        .collect()
}

/// Run every ablation.
pub fn run(cfg: &Config) -> Ablations {
    Ablations {
        drop_policies: drop_policy_panel(cfg),
        routing: routing_panel(cfg),
        early_stop_waste: early_stop_panel(cfg),
        w_min: w_min_panel(),
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation A — credit drop policy (16 flows, one bottleneck):"
        )?;
        let rows: Vec<Vec<String>> = self
            .drop_policies
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    format!("{:.3}", r.utilization),
                    format!("{:.3}", r.fairness),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            text_table(&["policy", "utilization", "fairness"], &rows)
        )?;

        writeln!(
            f,
            "\nAblation B — routing mode (4-ary fat tree permutation):"
        )?;
        let rows: Vec<Vec<String>> = self
            .routing
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    format!("{:.3}ms", r.mean_fct * 1e3),
                    format!("{:.1}KB", r.max_queue as f64 / 1e3),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            text_table(&["mode", "mean FCT", "max queue"], &rows)
        )?;

        writeln!(
            f,
            "\nAblation C — §7 early CREDIT_STOP: wasted credits {} → {}",
            self.early_stop_waste.0, self.early_stop_waste.1
        )?;

        writeln!(
            f,
            "\nAblation D — w_min vs steady-state oscillation (model):"
        )?;
        let rows: Vec<Vec<String>> = self
            .w_min
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.w_min),
                    format!("{:.0}", r.oscillation),
                    format!("{:.0}", r.d_star),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            text_table(&["w_min", "late oscillation (cr/s)", "D* bound"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Ablations {
    /// Structured payload: one object per ablation panel.
    pub fn to_json(&self) -> Json {
        let drop_policies = self
            .drop_policies
            .iter()
            .map(|r| {
                Json::obj()
                    .with("policy", Json::str(r.policy))
                    .with("utilization", Json::Num(r.utilization))
                    .with("fairness", Json::Num(r.fairness))
            })
            .collect();
        let routing = self
            .routing
            .iter()
            .map(|r| {
                Json::obj()
                    .with("mode", Json::str(r.mode))
                    .with("mean_fct_s", Json::Num(r.mean_fct))
                    .with("max_queue_bytes", Json::num_u64(r.max_queue))
            })
            .collect();
        let w_min = self
            .w_min
            .iter()
            .map(|r| {
                Json::obj()
                    .with("w_min", Json::Num(r.w_min))
                    .with("oscillation", Json::Num(r.oscillation))
                    .with("d_star", Json::Num(r.d_star))
            })
            .collect();
        Json::obj()
            .with("drop_policies", Json::Arr(drop_policies))
            .with("routing", Json::Arr(routing))
            .with(
                "early_stop_waste",
                Json::obj()
                    .with("off", Json::num_u64(self.early_stop_waste.0))
                    .with("on", Json::num_u64(self.early_stop_waste.1)),
            )
            .with("w_min", Json::Arr(w_min))
    }
}

/// Registry adapter: drives the ablations through the
/// [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "ablations"
    }
    fn describe(&self) -> &str {
        "design-choice ablations"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_have_expected_orderings() {
        let cfg = Config {
            flows: 8,
            warmup: Dur::ms(8),
            window: Dur::ms(10),
            ..Config::default()
        };
        let r = run(&cfg);
        // Drop policy: randomized policies must beat plain droptail on
        // fairness.
        let tail = r.drop_policies.iter().find(|p| p.policy == "Tail").unwrap();
        let rand = r
            .drop_policies
            .iter()
            .find(|p| p.policy == "UniformRandom")
            .unwrap();
        // With realistic host-delay noise, droptail can already be fair at
        // mild flow counts; randomized dropping must never be worse. (The
        // Fig 6a experiment isolates the droptail pathology properly, with
        // perfect pacing.)
        assert!(
            rand.fairness >= tail.fairness - 0.03,
            "uniform {:.3} vs tail {:.3}",
            rand.fairness,
            tail.fairness
        );
        // Both routing modes keep bounded queues; FCTs within 2x.
        let ecmp = &r.routing[0];
        let spray = &r.routing[1];
        assert!(spray.max_queue < 50_000);
        assert!(spray.mean_fct < ecmp.mean_fct * 2.0);
        // Early stop reduces waste.
        assert!(r.early_stop_waste.1 < r.early_stop_waste.0);
        // w_min oscillation grows with w_min, tracking D*.
        assert!(r.w_min[0].oscillation <= r.w_min[3].oscillation);
    }

    #[test]
    fn renders() {
        let cfg = Config {
            flows: 4,
            warmup: Dur::ms(5),
            window: Dur::ms(5),
            ..Config::default()
        };
        let s = run(&cfg).to_string();
        assert!(s.contains("Ablation A"));
        assert!(s.contains("Ablation D"));
    }
}
