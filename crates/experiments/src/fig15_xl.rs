//! Fig 15 XL — flow scalability at datacenter fabric scale: a 3-tier Clos
//! at 10k+ hosts carrying 100k+ concurrent ExpressPass flows, exercising
//! the arena flow state, struct-of-arrays credit hot path, shared timer
//! wheels, and flat routing tables end-to-end.
//!
//! Where Fig 15 proper sweeps flow counts over a single dumbbell
//! bottleneck, this XL variant sweeps to fabric scale: a stride
//! permutation of long-running flows across every host of an
//! oversubscribed Clos, measured over a short steady window. The paper's
//! scalability claim (§5, Fig 15) is that credit-based control keeps
//! queues bounded and control per-flow cheap as the flow count grows; the
//! XL run demonstrates the reproduction holds that property at the
//! 10k–100k-host scales the Shah–Xie centralized-scheduling work assumes.
//!
//! The default configuration runs a 10 240-host fabric up to 131 072
//! concurrent flows at 1 Gbps hosts (scaled down to keep the event count
//! CI-friendly); `--paper-scale` stretches to the 65 536-host fabric with
//! 1 048 576 concurrent flows at 10 Gbps.

use crate::harness::{text_table, Scheme};
use std::fmt;
use xpass_net::ids::HostId;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

/// Fig 15 XL configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Clos pods.
    pub pods: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Hosts per ToR.
    pub hosts_per_tor: usize,
    /// Core switches (must be a multiple of `aggs_per_pod`).
    pub cores: usize,
    /// Concurrent-flow counts to sweep (each point starts this many
    /// long-running flows at once).
    pub flow_counts: Vec<usize>,
    /// Host and ToR-uplink speed.
    pub host_bps: u64,
    /// Agg/core speeds.
    pub up_bps: u64,
    /// Warmup before the measurement window.
    pub warmup: Dur,
    /// Measurement window.
    pub window: Dur,
    /// Per-flow size — large enough that no flow completes inside the
    /// window, so the started count **is** the concurrency.
    pub flow_bytes: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            // 16 pods × 16 ToRs × 40 hosts = 10 240 hosts, 448 switches.
            pods: 16,
            aggs_per_pod: 8,
            tors_per_pod: 16,
            hosts_per_tor: 40,
            cores: 64,
            flow_counts: vec![16_384, 131_072],
            host_bps: 1_000_000_000,
            up_bps: 1_000_000_000,
            warmup: Dur::us(300),
            window: Dur::us(700),
            flow_bytes: 100_000_000,
            seed: 71,
        }
    }
}

impl Config {
    /// The paper-scale stretch: 65 536 hosts, 1 048 576 concurrent flows,
    /// 10 Gbps links.
    pub fn paper() -> Config {
        Config {
            pods: 32,
            aggs_per_pod: 16,
            tors_per_pod: 32,
            hosts_per_tor: 64,
            cores: 128,
            flow_counts: vec![1_048_576],
            host_bps: 10_000_000_000,
            up_bps: 10_000_000_000,
            ..Config::default()
        }
    }
}

/// One measured sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Flows started.
    pub flows: usize,
    /// Flows still in flight at the end of the window (the concurrency).
    pub concurrent: usize,
    /// Aggregate goodput over the window (bits/sec).
    pub goodput_bps: f64,
    /// Maximum switch data queue (bytes).
    pub max_queue_bytes: u64,
    /// Data packets dropped.
    pub drops: u64,
    /// Engine events processed by the run.
    pub events: u64,
}

/// Fig 15 XL result.
#[derive(Clone, Debug)]
pub struct Fig15Xl {
    /// Fabric hosts.
    pub n_hosts: usize,
    /// Fabric switches.
    pub n_switches: usize,
    /// ToR switches.
    pub n_tors: usize,
    /// One point per swept flow count.
    pub points: Vec<Point>,
}

fn measure(cfg: &Config, n: usize) -> (Point, usize, usize, usize) {
    let topo = Topology::three_tier(
        cfg.pods,
        cfg.aggs_per_pod,
        cfg.tors_per_pod,
        cfg.hosts_per_tor,
        cfg.cores,
        cfg.host_bps,
        cfg.host_bps,
        cfg.up_bps,
        Dur::us(1),
    );
    let hosts = topo.n_hosts;
    let switches = topo.n_switches;
    let tors = topo.n_tors();
    let mut net =
        Scheme::XPass(expresspass::XPassConfig::aggressive()).build(topo, cfg.host_bps, cfg.seed);
    // Stride permutation: round r of host h talks to the host half the
    // fabric away, rotated by the round so repeat rounds pick distinct
    // (mostly inter-pod) peers. Starts are staggered a few µs to avoid a
    // synchronized SYN burst.
    let flows: Vec<_> = (0..n)
        .map(|i| {
            let src = i % hosts;
            let round = i / hosts;
            let mut dst = (src + hosts / 2 + round * 131) % hosts;
            if dst == src {
                dst = (dst + 1) % hosts;
            }
            let start = SimTime::ZERO + Dur::us((i as u64 * 13) % 100);
            net.add_flow(
                HostId(src as u32),
                HostId(dst as u32),
                cfg.flow_bytes,
                start,
            )
        })
        .collect();
    net.run_until(SimTime::ZERO + cfg.warmup);
    let before: Vec<u64> = flows.iter().map(|&f| net.delivered_bytes(f)).collect();
    net.run_until(SimTime::ZERO + cfg.warmup + cfg.window);
    let delivered: u64 = flows
        .iter()
        .zip(&before)
        .map(|(&f, &b)| net.delivered_bytes(f) - b)
        .sum();
    let concurrent = n - net.completed_count() - net.aborted_count();
    let point = Point {
        flows: n,
        concurrent,
        goodput_bps: delivered as f64 * 8.0 / cfg.window.as_secs_f64(),
        max_queue_bytes: net.max_switch_queue_bytes(),
        drops: net.total_data_drops(),
        events: net.engine_report().events_processed,
    };
    (point, hosts, switches, tors)
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Fig15Xl {
    let mut n_hosts = 0;
    let mut n_switches = 0;
    let mut n_tors = 0;
    let points = cfg
        .flow_counts
        .iter()
        .map(|&n| {
            let (p, h, s, t) = measure(cfg, n);
            n_hosts = h;
            n_switches = s;
            n_tors = t;
            p
        })
        .collect();
    Fig15Xl {
        n_hosts,
        n_switches,
        n_tors,
        points,
    }
}

impl fmt::Display for Fig15Xl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 15 XL: fabric-scale flow scalability ({} hosts, {} switches, {} ToRs)",
            self.n_hosts, self.n_switches, self.n_tors
        )?;
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.flows.to_string(),
                    p.concurrent.to_string(),
                    format!("{:.2}", p.goodput_bps / 1e9),
                    format!("{:.0}", p.max_queue_bytes as f64 / 1e3),
                    p.drops.to_string(),
                    format!("{:.1}", p.events as f64 / 1e6),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            text_table(
                &[
                    "flows",
                    "concurrent",
                    "goodput Gbps",
                    "max queue KB",
                    "drops",
                    "events M"
                ],
                &rows
            )
        )
    }
}

use xpass_sim::json::Json;

impl Fig15Xl {
    /// Structured payload: the fabric shape plus one object per sweep
    /// point.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .with("flows", Json::num_u64(p.flows as u64))
                    .with("concurrent", Json::num_u64(p.concurrent as u64))
                    .with("goodput_bps", Json::Num(p.goodput_bps))
                    .with("max_queue_bytes", Json::num_u64(p.max_queue_bytes))
                    .with("drops", Json::num_u64(p.drops))
                    .with("events", Json::num_u64(p.events))
            })
            .collect();
        Json::obj()
            .with("n_hosts", Json::num_u64(self.n_hosts as u64))
            .with("n_switches", Json::num_u64(self.n_switches as u64))
            .with("n_tors", Json::num_u64(self.n_tors as u64))
            .with("points", Json::Arr(points))
    }
}

/// Registry adapter: drives Fig 15 XL through the [`crate::Experiment`]
/// trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig15_xl"
    }
    fn describe(&self) -> &str {
        "fabric-scale flow scalability (3-tier Clos)"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn paper_scale_config(&mut self) -> bool {
        self.0 = Config::paper();
        true
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny fabric the unit tests can afford: 48 hosts, 4 pods.
    fn quick() -> Config {
        Config {
            pods: 4,
            aggs_per_pod: 2,
            tors_per_pod: 2,
            hosts_per_tor: 6,
            cores: 4,
            flow_counts: vec![16, 96],
            warmup: Dur::us(200),
            window: Dur::us(500),
            ..Config::default()
        }
    }

    #[test]
    fn all_flows_stay_concurrent_and_deliver() {
        let r = run(&quick());
        assert_eq!(r.n_hosts, 48);
        assert_eq!(r.n_tors, 8);
        for p in &r.points {
            assert_eq!(
                p.concurrent, p.flows,
                "N={}: long-running flows must not complete inside the window",
                p.flows
            );
            assert!(p.goodput_bps > 0.0, "N={}: no goodput", p.flows);
        }
    }

    #[test]
    fn renders() {
        let r = run(&quick());
        let s = r.to_string();
        assert!(s.contains("Fig 15 XL"), "{s}");
        assert!(s.contains("48 hosts"), "{s}");
    }
}
