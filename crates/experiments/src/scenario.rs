//! Declarative scenario files — JSON descriptions of a full simulation
//! (topology, schemes, workload, fault plan, invariants, measurement)
//! executed through the same [`Experiment`](crate::Experiment) interface as
//! the built-in paper reproductions: `xpass-repro run <file.json>`.
//!
//! Schema `xpass-scenario/v1` (field reference in `EXPERIMENTS.md`). The
//! committed `examples/scenarios/parking_lot.json` reproduces Fig 10
//! byte-for-byte; `examples/scenarios/fat_tree_shuffle_faults.json` shows a
//! configuration no built-in experiment expresses (DCTCP shuffle on a
//! fat tree with a core cable failing mid-run).
//!
//! A scenario selects:
//!
//! * `topology` — `dumbbell`, `chain`, `star`, `fat_tree`,
//!   `eval_fat_tree`, or `three_tier` (generalized Clos with `pods`,
//!   `aggs_per_pod`, `tors_per_pod`, `hosts_per_tor`, `cores`), with
//!   dimensions; one numeric dimension may be the string `"$sweep"` to
//!   range over `sweep.values` (for `three_tier`: one of `pods`,
//!   `tors_per_pod`, or `hosts_per_tor`).
//! * `series` — one labelled congestion-control scheme per table row
//!   (`xpass` with a `profile`, `dctcp`, `rcp`, `hull`, `dx`, `cubic`,
//!   `reno`, `naive_credit`, `ideal`).
//! * `workload` — `parking_lot`, `permutation`, `incast`, `shuffle`, or
//!   `poisson` (a Table-2 workload at a target load).
//! * `faults` — optional timed fault events resolved against the topology
//!   (`cable_down`/`cable_up`/`link_down`/`link_up`/`set_loss`/
//!   `host_pause`/`host_resume`), **or** a generated chaos schedule:
//!   `{"$chaos": {"seed": N, "intensity": X}}` samples a seeded random
//!   fault plan ([`chaos::generate`](crate::chaos::generate)) against each
//!   resolved topology, with every episode healing inside the measure
//!   horizon.
//! * `invariants` — optional monitors (`data_queue_bound_bytes`,
//!   `zero_data_loss`) installed into every run.
//! * `measure` — `min_link_utilization` (requires a swept chain; renders
//!   the Fig 10 table shape) or `fct` (flow-completion statistics per
//!   series).
//!
//! Every scenario is fully validated at load time — each sweep-resolved
//! topology is built and every fault reference resolved — so execution
//! cannot fail halfway through a run.

use crate::chaos::ChaosSpec;
use crate::fig10_parking_lot::min_chain_utilization;
use crate::harness::{fmt_secs, text_table, FctBuckets, Scheme};
use std::fmt;
use std::path::Path;
use xpass_net::faults::FaultPlan;
use xpass_net::health::InvariantSpec;
use xpass_net::ids::{HostId, NodeId, SwitchId};
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::json::Json;
use xpass_sim::time::{Dur, SimTime};
use xpass_sim::trace::TraceSink;
use xpass_workloads::{
    add_all, incast, parking_lot, permutation, shuffle, FlowSpec, PoissonWorkload, Workload,
};

/// The schema tag every scenario file must carry.
pub const SCHEMA: &str = "xpass-scenario/v1";

/// Why a scenario file failed to load or validate.
#[derive(Debug)]
pub struct ScenarioError {
    msg: String,
}

impl ScenarioError {
    fn new(msg: impl Into<String>) -> ScenarioError {
        ScenarioError { msg: msg.into() }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ScenarioError {}

// ---------------------------------------------------------------- parsing

/// Compact rendering of an offending JSON value for error messages, so a
/// type mismatch reports what the file actually said (`faults[2].at_ms:
/// must be a number, got "late"`). Long values are truncated — the path
/// is the locator, the value is just a hint.
fn got(v: &Json) -> String {
    let s = v.to_string();
    match s.char_indices().nth(40) {
        Some((i, _)) => format!("{}…", &s[..i]),
        None => s,
    }
}

fn req<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, ScenarioError> {
    j.get(key)
        .ok_or_else(|| ScenarioError::new(format!("{ctx}.{key}: missing required key")))
}

fn req_str<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a str, ScenarioError> {
    let v = req(j, key, ctx)?;
    v.as_str()
        .ok_or_else(|| ScenarioError::new(format!("{ctx}.{key}: must be a string, got {}", got(v))))
}

fn req_u64(j: &Json, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    let v = req(j, key, ctx)?;
    v.as_u64().ok_or_else(|| {
        ScenarioError::new(format!(
            "{ctx}.{key}: must be a non-negative integer, got {}",
            got(v)
        ))
    })
}

fn req_f64(j: &Json, key: &str, ctx: &str) -> Result<f64, ScenarioError> {
    let v = req(j, key, ctx)?;
    v.as_f64()
        .ok_or_else(|| ScenarioError::new(format!("{ctx}.{key}: must be a number, got {}", got(v))))
}

fn opt_u64(j: &Json, key: &str, ctx: &str) -> Result<Option<u64>, ScenarioError> {
    match j.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ScenarioError::new(format!(
                "{ctx}.{key}: must be a non-negative integer, got {}",
                got(v)
            ))
        }),
    }
}

fn opt_bool(j: &Json, key: &str, ctx: &str) -> Result<bool, ScenarioError> {
    match j.get(key) {
        None => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| {
            ScenarioError::new(format!("{ctx}.{key}: must be a boolean, got {}", got(v)))
        }),
    }
}

/// A topology dimension: a fixed integer, or the string `"$sweep"`.
#[derive(Clone, Copy, Debug)]
enum Dim {
    Fixed(u64),
    Sweep,
}

impl Dim {
    fn resolve(self, sweep: Option<u64>) -> u64 {
        match self {
            Dim::Fixed(v) => v,
            Dim::Sweep => sweep.expect("validated: sweep value present"),
        }
    }

    fn is_sweep(self) -> bool {
        matches!(self, Dim::Sweep)
    }
}

fn parse_dim(j: &Json, key: &str, ctx: &str) -> Result<Dim, ScenarioError> {
    let v = req(j, key, ctx)?;
    if let Some(n) = v.as_u64() {
        return Ok(Dim::Fixed(n));
    }
    if v.as_str() == Some("$sweep") {
        return Ok(Dim::Sweep);
    }
    Err(ScenarioError::new(format!(
        "{ctx}.{key}: must be an integer or the string \"$sweep\", got {}",
        got(v)
    )))
}

#[derive(Clone, Copy, Debug)]
enum TopoSpec {
    Dumbbell {
        pairs: Dim,
        prop: Dur,
    },
    Chain {
        bottlenecks: Dim,
        hosts_per_switch: u64,
        prop: Dur,
    },
    Star {
        hosts: Dim,
        prop: Dur,
    },
    FatTree {
        k: u64,
        prop: Dur,
    },
    EvalFatTree,
    ThreeTier {
        pods: Dim,
        aggs_per_pod: u64,
        tors_per_pod: Dim,
        hosts_per_tor: Dim,
        cores: u64,
        prop: Dur,
    },
}

impl TopoSpec {
    fn uses_sweep(&self) -> bool {
        match self {
            TopoSpec::Dumbbell { pairs, .. } => pairs.is_sweep(),
            TopoSpec::Chain { bottlenecks, .. } => bottlenecks.is_sweep(),
            TopoSpec::Star { hosts, .. } => hosts.is_sweep(),
            TopoSpec::FatTree { .. } | TopoSpec::EvalFatTree => false,
            TopoSpec::ThreeTier {
                pods,
                tors_per_pod,
                hosts_per_tor,
                ..
            } => pods.is_sweep() || tors_per_pod.is_sweep() || hosts_per_tor.is_sweep(),
        }
    }

    /// Bottleneck-link count when this is a chain, for the given sweep value.
    fn chain_bottlenecks(&self, sweep: Option<u64>) -> Option<u64> {
        match self {
            TopoSpec::Chain { bottlenecks, .. } => Some(bottlenecks.resolve(sweep)),
            _ => None,
        }
    }

    fn build(&self, link_bps: u64, sweep: Option<u64>) -> Topology {
        match *self {
            TopoSpec::Dumbbell { pairs, prop } => {
                Topology::dumbbell(pairs.resolve(sweep) as usize, link_bps, prop)
            }
            TopoSpec::Chain {
                bottlenecks,
                hosts_per_switch,
                prop,
            } => Topology::chain(
                bottlenecks.resolve(sweep) as usize + 1,
                hosts_per_switch as usize,
                link_bps,
                prop,
            ),
            TopoSpec::Star { hosts, prop } => {
                Topology::star(hosts.resolve(sweep) as usize, link_bps, prop)
            }
            TopoSpec::FatTree { k, prop } => {
                Topology::fat_tree(k as usize, link_bps, link_bps, prop)
            }
            TopoSpec::EvalFatTree => Topology::eval_fat_tree(link_bps),
            TopoSpec::ThreeTier {
                pods,
                aggs_per_pod,
                tors_per_pod,
                hosts_per_tor,
                cores,
                prop,
            } => Topology::three_tier(
                pods.resolve(sweep) as usize,
                aggs_per_pod as usize,
                tors_per_pod.resolve(sweep) as usize,
                hosts_per_tor.resolve(sweep) as usize,
                cores as usize,
                link_bps,
                link_bps,
                link_bps,
                prop,
            ),
        }
    }
}

fn parse_topology(j: &Json) -> Result<TopoSpec, ScenarioError> {
    let ctx = "topology";
    let prop = Dur::us(opt_u64(j, "prop_us", ctx)?.unwrap_or(1));
    match req_str(j, "kind", ctx)? {
        "dumbbell" => Ok(TopoSpec::Dumbbell {
            pairs: parse_dim(j, "pairs", ctx)?,
            prop,
        }),
        "chain" => Ok(TopoSpec::Chain {
            bottlenecks: parse_dim(j, "bottlenecks", ctx)?,
            hosts_per_switch: opt_u64(j, "hosts_per_switch", ctx)?.unwrap_or(2),
            prop,
        }),
        "star" => Ok(TopoSpec::Star {
            hosts: parse_dim(j, "hosts", ctx)?,
            prop,
        }),
        "fat_tree" => {
            let k = req_u64(j, "k", ctx)?;
            if k < 2 || k % 2 != 0 {
                return Err(ScenarioError::new(format!(
                    "{ctx}: fat_tree requires an even k >= 2, got {k}"
                )));
            }
            Ok(TopoSpec::FatTree { k, prop })
        }
        "eval_fat_tree" => Ok(TopoSpec::EvalFatTree),
        "three_tier" => {
            let pods = parse_dim(j, "pods", ctx)?;
            let tors_per_pod = parse_dim(j, "tors_per_pod", ctx)?;
            let hosts_per_tor = parse_dim(j, "hosts_per_tor", ctx)?;
            let n_sweeps = [pods, tors_per_pod, hosts_per_tor]
                .iter()
                .filter(|d| d.is_sweep())
                .count();
            if n_sweeps > 1 {
                return Err(ScenarioError::new(format!(
                    "{ctx}: at most one of pods|tors_per_pod|hosts_per_tor \
                     may be \"$sweep\", got {n_sweeps}"
                )));
            }
            let aggs_per_pod = req_u64(j, "aggs_per_pod", ctx)?;
            let cores = req_u64(j, "cores", ctx)?;
            if aggs_per_pod == 0 {
                return Err(ScenarioError::new(format!(
                    "{ctx}: three_tier requires aggs_per_pod >= 1, got 0"
                )));
            }
            if cores == 0 || cores % aggs_per_pod != 0 {
                return Err(ScenarioError::new(format!(
                    "{ctx}: three_tier cores ({cores}) must be a positive \
                     multiple of aggs_per_pod ({aggs_per_pod})"
                )));
            }
            if let Dim::Fixed(0) = pods {
                return Err(ScenarioError::new(format!(
                    "{ctx}: three_tier requires pods >= 1, got 0"
                )));
            }
            if let Dim::Fixed(0) = tors_per_pod {
                return Err(ScenarioError::new(format!(
                    "{ctx}: three_tier requires tors_per_pod >= 1, got 0"
                )));
            }
            if let Dim::Fixed(0) = hosts_per_tor {
                return Err(ScenarioError::new(format!(
                    "{ctx}: three_tier requires hosts_per_tor >= 1, got 0"
                )));
            }
            Ok(TopoSpec::ThreeTier {
                pods,
                aggs_per_pod,
                tors_per_pod,
                hosts_per_tor,
                cores,
                prop,
            })
        }
        other => Err(ScenarioError::new(format!(
            "{ctx}: unknown kind '{other}' \
             (expected dumbbell|chain|star|fat_tree|eval_fat_tree|three_tier)"
        ))),
    }
}

fn parse_scheme(j: &Json, ctx: &str) -> Result<Scheme, ScenarioError> {
    match req_str(j, "kind", ctx)? {
        "xpass" => match j.get("profile").and_then(Json::as_str).unwrap_or("default") {
            "default" => Ok(Scheme::XPass(expresspass::XPassConfig::default())),
            "aggressive" => Ok(Scheme::XPass(expresspass::XPassConfig::aggressive())),
            other => Err(ScenarioError::new(format!(
                "{ctx}: unknown xpass profile '{other}' (expected default|aggressive)"
            ))),
        },
        "dctcp" => Ok(Scheme::Dctcp),
        "rcp" => Ok(Scheme::Rcp),
        "hull" => Ok(Scheme::Hull),
        "dx" => Ok(Scheme::Dx),
        "cubic" => Ok(Scheme::Cubic),
        "reno" => Ok(Scheme::Reno),
        "naive_credit" => Ok(Scheme::NaiveCredit),
        "ideal" => Ok(Scheme::Ideal),
        other => Err(ScenarioError::new(format!(
            "{ctx}: unknown scheme kind '{other}' \
             (expected xpass|dctcp|rcp|hull|dx|cubic|reno|naive_credit|ideal)"
        ))),
    }
}

#[derive(Clone, Debug)]
struct SeriesSpec {
    label: String,
    scheme: Scheme,
}

#[derive(Clone, Copy, Debug)]
enum WorkloadSpec {
    ParkingLot {
        bytes: Option<u64>,
    },
    Permutation {
        bytes: u64,
    },
    Incast {
        bytes: u64,
    },
    Shuffle {
        tasks_per_host: u64,
        bytes_per_pair: u64,
    },
    Poisson {
        workload: Workload,
        load: f64,
        n_flows: u64,
    },
}

fn parse_workload(j: &Json) -> Result<WorkloadSpec, ScenarioError> {
    let ctx = "workload";
    match req_str(j, "kind", ctx)? {
        "parking_lot" => Ok(WorkloadSpec::ParkingLot {
            bytes: opt_u64(j, "bytes", ctx)?,
        }),
        "permutation" => Ok(WorkloadSpec::Permutation {
            bytes: req_u64(j, "bytes", ctx)?,
        }),
        "incast" => Ok(WorkloadSpec::Incast {
            bytes: req_u64(j, "bytes", ctx)?,
        }),
        "shuffle" => Ok(WorkloadSpec::Shuffle {
            tasks_per_host: req_u64(j, "tasks_per_host", ctx)?,
            bytes_per_pair: req_u64(j, "bytes_per_pair", ctx)?,
        }),
        "poisson" => {
            let workload = match req_str(j, "workload", ctx)? {
                "web_server" => Workload::WebServer,
                "web_search" => Workload::WebSearch,
                "cache_follower" => Workload::CacheFollower,
                "data_mining" => Workload::DataMining,
                other => {
                    return Err(ScenarioError::new(format!(
                        "{ctx}: unknown workload '{other}' \
                         (expected web_server|web_search|cache_follower|data_mining)"
                    )))
                }
            };
            let load = req_f64(j, "load", ctx)?;
            if !(load > 0.0 && load <= 1.0) {
                return Err(ScenarioError::new(format!(
                    "{ctx}: 'load' must be in (0, 1], got {load}"
                )));
            }
            let n_flows = req_u64(j, "n_flows", ctx)?;
            if n_flows == 0 {
                return Err(ScenarioError::new(format!("{ctx}: 'n_flows' must be >= 1")));
            }
            Ok(WorkloadSpec::Poisson {
                workload,
                load,
                n_flows,
            })
        }
        other => Err(ScenarioError::new(format!(
            "{ctx}: unknown kind '{other}' \
             (expected parking_lot|permutation|incast|shuffle|poisson)"
        ))),
    }
}

impl WorkloadSpec {
    fn generate(
        &self,
        topo: &Topology,
        link_bps: u64,
        seed: u64,
        chain_n: Option<u64>,
    ) -> Vec<FlowSpec> {
        match *self {
            WorkloadSpec::ParkingLot { bytes } => {
                let n = chain_n.expect("validated: parking_lot requires a chain topology");
                parking_lot(n as usize, bytes.unwrap_or((link_bps / 8) * 2))
            }
            WorkloadSpec::Permutation { bytes } => permutation(topo.n_hosts, bytes, SimTime::ZERO),
            WorkloadSpec::Incast { bytes } => {
                let senders: Vec<HostId> = (0..topo.n_hosts as u32).map(HostId).collect();
                incast(&senders, HostId(0), bytes, SimTime::ZERO)
            }
            WorkloadSpec::Shuffle {
                tasks_per_host,
                bytes_per_pair,
            } => {
                let mut rng = xpass_sim::rng::Rng::new(seed);
                shuffle(
                    topo.n_hosts,
                    tasks_per_host as usize,
                    bytes_per_pair,
                    &mut rng,
                )
            }
            WorkloadSpec::Poisson {
                workload,
                load,
                n_flows,
            } => PoissonWorkload::new(workload.dist(), load, n_flows as usize, seed).generate(topo),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum NodeRef {
    Switch(u64),
    Host(u64),
}

impl NodeRef {
    fn to_node(self) -> NodeId {
        match self {
            NodeRef::Switch(i) => NodeId::Switch(SwitchId(i as u32)),
            NodeRef::Host(i) => NodeId::Host(HostId(i as u32)),
        }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Switch(i) => write!(f, "switch {i}"),
            NodeRef::Host(i) => write!(f, "host {i}"),
        }
    }
}

fn parse_node_ref(j: &Json, key: &str, ctx: &str) -> Result<NodeRef, ScenarioError> {
    let v = req(j, key, ctx)?;
    if let Some(i) = v.get("switch").and_then(Json::as_u64) {
        return Ok(NodeRef::Switch(i));
    }
    if let Some(i) = v.get("host").and_then(Json::as_u64) {
        return Ok(NodeRef::Host(i));
    }
    Err(ScenarioError::new(format!(
        "{ctx}.{key}: must be an object {{\"switch\": N}} or {{\"host\": N}}, got {}",
        got(v)
    )))
}

#[derive(Clone, Copy, Debug)]
enum FaultAction {
    CableDown {
        a: NodeRef,
        b: NodeRef,
    },
    CableUp {
        a: NodeRef,
        b: NodeRef,
    },
    LinkDown {
        from: NodeRef,
        to: NodeRef,
    },
    LinkUp {
        from: NodeRef,
        to: NodeRef,
    },
    SetLoss {
        from: NodeRef,
        to: NodeRef,
        data: f64,
        credit: f64,
    },
    HostPause {
        host: u64,
    },
    HostResume {
        host: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct FaultSpec {
    at: Dur,
    action: FaultAction,
}

/// The scenario's fault schedule: an explicit event list, or a `$chaos`
/// generator spec sampled per resolved topology at build time.
#[derive(Clone, Debug)]
enum FaultsSpec {
    List(Vec<FaultSpec>),
    Chaos(ChaosSpec),
}

fn parse_fault(j: &Json, idx: usize) -> Result<FaultSpec, ScenarioError> {
    let ctx = format!("faults[{idx}]");
    let ctx = ctx.as_str();
    let at_ms = req_f64(j, "at_ms", ctx)?;
    if !(at_ms >= 0.0 && at_ms.is_finite()) {
        return Err(ScenarioError::new(format!(
            "{ctx}.at_ms: must be a finite non-negative number, got {at_ms}"
        )));
    }
    let at = Dur::from_secs_f64(at_ms * 1e-3);
    let host = |j: &Json| -> Result<u64, ScenarioError> { req_u64(j, "host", ctx) };
    let action = match req_str(j, "action", ctx)? {
        "cable_down" => FaultAction::CableDown {
            a: parse_node_ref(j, "a", ctx)?,
            b: parse_node_ref(j, "b", ctx)?,
        },
        "cable_up" => FaultAction::CableUp {
            a: parse_node_ref(j, "a", ctx)?,
            b: parse_node_ref(j, "b", ctx)?,
        },
        "link_down" => FaultAction::LinkDown {
            from: parse_node_ref(j, "from", ctx)?,
            to: parse_node_ref(j, "to", ctx)?,
        },
        "link_up" => FaultAction::LinkUp {
            from: parse_node_ref(j, "from", ctx)?,
            to: parse_node_ref(j, "to", ctx)?,
        },
        "set_loss" => {
            let data = req_f64(j, "data", ctx)?;
            let credit = req_f64(j, "credit", ctx)?;
            for (name, p) in [("data", data), ("credit", credit)] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(ScenarioError::new(format!(
                        "{ctx}.{name}: must be a probability in [0, 1], got {p}"
                    )));
                }
            }
            FaultAction::SetLoss {
                from: parse_node_ref(j, "from", ctx)?,
                to: parse_node_ref(j, "to", ctx)?,
                data,
                credit,
            }
        }
        "host_pause" => FaultAction::HostPause { host: host(j)? },
        "host_resume" => FaultAction::HostResume { host: host(j)? },
        other => {
            return Err(ScenarioError::new(format!(
                "{ctx}: unknown action '{other}' (expected cable_down|cable_up|\
                 link_down|link_up|set_loss|host_pause|host_resume)"
            )))
        }
    };
    Ok(FaultSpec { at, action })
}

/// Resolve a directed link between two node refs, with a helpful error.
fn resolve_dlink(
    topo: &Topology,
    from: NodeRef,
    to: NodeRef,
    ctx: &str,
) -> Result<xpass_net::ids::DLinkId, ScenarioError> {
    topo.dlink_between(from.to_node(), to.to_node())
        .ok_or_else(|| {
            ScenarioError::new(format!(
                "{ctx}: no link from {from} to {to} in the '{}' topology",
                topo.name
            ))
        })
}

fn build_fault_plan(topo: &Topology, faults: &[FaultSpec]) -> Result<FaultPlan, ScenarioError> {
    let mut plan = FaultPlan::new();
    for (i, f) in faults.iter().enumerate() {
        let ctx = format!("faults[{i}]");
        let ctx = ctx.as_str();
        let at = SimTime::ZERO + f.at;
        plan = match f.action {
            FaultAction::CableDown { a, b } => plan.cable_down(
                at,
                resolve_dlink(topo, a, b, ctx)?,
                resolve_dlink(topo, b, a, ctx)?,
            ),
            FaultAction::CableUp { a, b } => plan.cable_up(
                at,
                resolve_dlink(topo, a, b, ctx)?,
                resolve_dlink(topo, b, a, ctx)?,
            ),
            FaultAction::LinkDown { from, to } => {
                plan.link_down(at, resolve_dlink(topo, from, to, ctx)?)
            }
            FaultAction::LinkUp { from, to } => {
                plan.link_up(at, resolve_dlink(topo, from, to, ctx)?)
            }
            FaultAction::SetLoss {
                from,
                to,
                data,
                credit,
            } => plan.set_loss(at, resolve_dlink(topo, from, to, ctx)?, data, credit),
            FaultAction::HostPause { host } => {
                check_host(topo, host, ctx)?;
                plan.host_pause(at, HostId(host as u32))
            }
            FaultAction::HostResume { host } => {
                check_host(topo, host, ctx)?;
                plan.host_resume(at, HostId(host as u32))
            }
        };
    }
    Ok(plan)
}

fn check_host(topo: &Topology, host: u64, ctx: &str) -> Result<(), ScenarioError> {
    if (host as usize) < topo.n_hosts {
        Ok(())
    } else {
        Err(ScenarioError::new(format!(
            "{ctx}: host {host} out of range (topology '{}' has {} hosts)",
            topo.name, topo.n_hosts
        )))
    }
}

#[derive(Clone, Copy, Debug)]
enum MeasureSpec {
    MinLinkUtilization { warmup: Dur, window: Dur },
    Fct { cap: Dur },
}

fn parse_measure(j: &Json) -> Result<MeasureSpec, ScenarioError> {
    let ctx = "measure";
    match req_str(j, "kind", ctx)? {
        "min_link_utilization" => Ok(MeasureSpec::MinLinkUtilization {
            warmup: Dur::ms(req_u64(j, "warmup_ms", ctx)?),
            window: Dur::ms(req_u64(j, "window_ms", ctx)?),
        }),
        "fct" => Ok(MeasureSpec::Fct {
            cap: Dur::ms(req_u64(j, "cap_ms", ctx)?),
        }),
        other => Err(ScenarioError::new(format!(
            "{ctx}: unknown kind '{other}' (expected min_link_utilization|fct)"
        ))),
    }
}

#[derive(Clone, Debug)]
struct Sweep {
    label: String,
    values: Vec<u64>,
}

#[derive(Clone, Debug)]
struct Scenario {
    name: String,
    title: String,
    seed: u64,
    link_bps: u64,
    topo: TopoSpec,
    sweep: Option<Sweep>,
    series: Vec<SeriesSpec>,
    workload: WorkloadSpec,
    faults: FaultsSpec,
    invariants: Option<InvariantSpec>,
    measure: MeasureSpec,
}

/// A loaded, validated scenario, runnable through the
/// [`Experiment`](crate::Experiment) trait like any built-in experiment.
#[derive(Debug)]
pub struct ScenarioExperiment {
    scenario: Scenario,
    seed_override: Option<u64>,
}

/// Load and validate a scenario file.
pub fn load(path: &Path) -> Result<ScenarioExperiment, ScenarioError> {
    let src = std::fs::read_to_string(path).map_err(|e| {
        ScenarioError::new(format!("cannot read scenario file {}: {e}", path.display()))
    })?;
    parse_str(&src).map_err(|e| ScenarioError::new(format!("{}: {e}", path.display())))
}

/// Parse and validate a scenario from a JSON string.
pub fn parse_str(src: &str) -> Result<ScenarioExperiment, ScenarioError> {
    let j = xpass_sim::json::parse(src)
        .map_err(|e| ScenarioError::new(format!("invalid JSON: {e}")))?;
    let ctx = "scenario";

    let schema = req_str(&j, "schema", ctx)?;
    if schema != SCHEMA {
        return Err(ScenarioError::new(format!(
            "{ctx}: unsupported schema '{schema}' (this build understands '{SCHEMA}')"
        )));
    }
    let name = req_str(&j, "name", ctx)?.to_string();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(ScenarioError::new(format!(
            "{ctx}: 'name' must be non-empty and use only [A-Za-z0-9_-] \
             (it names the --json record file), got '{name}'"
        )));
    }
    let title = req_str(&j, "title", ctx)?.to_string();
    let seed = req_u64(&j, "seed", ctx)?;
    let link_bps = req_u64(&j, "link_bps", ctx)?;
    if link_bps == 0 {
        return Err(ScenarioError::new(format!("{ctx}: 'link_bps' must be > 0")));
    }

    let topo = parse_topology(req(&j, "topology", ctx)?)?;

    let sweep = match j.get("sweep") {
        None => None,
        Some(s) => {
            let label = req_str(s, "label", "sweep")?.to_string();
            let vals = req(s, "values", "sweep")?
                .as_array()
                .ok_or_else(|| ScenarioError::new("sweep: 'values' must be an array"))?;
            let values = vals
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        ScenarioError::new("sweep: 'values' must be non-negative integers")
                    })
                })
                .collect::<Result<Vec<u64>, _>>()?;
            if values.is_empty() {
                return Err(ScenarioError::new("sweep: 'values' must be non-empty"));
            }
            Some(Sweep { label, values })
        }
    };

    let series_j = req(&j, "series", ctx)?
        .as_array()
        .ok_or_else(|| ScenarioError::new(format!("{ctx}: 'series' must be an array")))?;
    if series_j.is_empty() {
        return Err(ScenarioError::new(format!(
            "{ctx}: 'series' must list at least one scheme"
        )));
    }
    let series = series_j
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let ctx = format!("series[{i}]");
            Ok(SeriesSpec {
                label: req_str(s, "label", &ctx)?.to_string(),
                scheme: parse_scheme(req(s, "scheme", &ctx)?, &ctx)?,
            })
        })
        .collect::<Result<Vec<SeriesSpec>, ScenarioError>>()?;

    let workload = parse_workload(req(&j, "workload", ctx)?)?;

    let faults = match j.get("faults") {
        None => FaultsSpec::List(Vec::new()),
        Some(f) => {
            if let Some(c) = f.get("$chaos") {
                let ctx = "faults.$chaos";
                let seed = req_u64(c, "seed", ctx)?;
                let intensity = req_f64(c, "intensity", ctx)?;
                if !(0.0..=1.0).contains(&intensity) {
                    return Err(ScenarioError::new(format!(
                        "{ctx}.intensity: must be in [0, 1], got {intensity}"
                    )));
                }
                FaultsSpec::Chaos(ChaosSpec { seed, intensity })
            } else {
                let list = f
                    .as_array()
                    .ok_or_else(|| {
                        ScenarioError::new(format!(
                            "{ctx}.faults: must be an array of fault events or a \
                             {{\"$chaos\": …}} object, got {}",
                            got(f)
                        ))
                    })?
                    .iter()
                    .enumerate()
                    .map(|(i, f)| parse_fault(f, i))
                    .collect::<Result<Vec<FaultSpec>, _>>()?;
                FaultsSpec::List(list)
            }
        }
    };

    let invariants = match j.get("invariants") {
        None => None,
        Some(inv) => Some(InvariantSpec {
            data_queue_bound_bytes: opt_u64(inv, "data_queue_bound_bytes", "invariants")?,
            zero_data_loss: opt_bool(inv, "zero_data_loss", "invariants")?,
        }),
    };

    let measure = parse_measure(req(&j, "measure", ctx)?)?;

    let scenario = Scenario {
        name,
        title,
        seed,
        link_bps,
        topo,
        sweep,
        series,
        workload,
        faults,
        invariants,
        measure,
    };
    validate(&scenario)?;
    Ok(ScenarioExperiment {
        scenario,
        seed_override: None,
    })
}

/// Cross-field validation: build every sweep-resolved topology and resolve
/// every fault reference, so [`ScenarioExperiment::run`] cannot fail.
fn validate(s: &Scenario) -> Result<(), ScenarioError> {
    match s.measure {
        MeasureSpec::MinLinkUtilization { .. } => {
            if s.sweep.is_none() || !s.topo.uses_sweep() {
                return Err(ScenarioError::new(
                    "measure min_link_utilization requires a 'sweep' and a topology \
                     dimension set to \"$sweep\"",
                ));
            }
            if !matches!(s.topo, TopoSpec::Chain { .. }) {
                return Err(ScenarioError::new(
                    "measure min_link_utilization requires a 'chain' topology \
                     (it reads the switch-to-switch bottleneck links)",
                ));
            }
        }
        MeasureSpec::Fct { .. } => {
            if s.sweep.is_some() && !s.topo.uses_sweep() {
                return Err(ScenarioError::new(
                    "a 'sweep' is declared but no topology dimension is \"$sweep\"",
                ));
            }
            if s.topo.uses_sweep() && s.sweep.is_none() {
                return Err(ScenarioError::new(
                    "topology references \"$sweep\" but the scenario declares no 'sweep'",
                ));
            }
        }
    }
    if matches!(s.workload, WorkloadSpec::ParkingLot { .. })
        && !matches!(s.topo, TopoSpec::Chain { .. })
    {
        return Err(ScenarioError::new(
            "workload parking_lot requires a 'chain' topology",
        ));
    }
    let sweep_values: Vec<Option<u64>> = match &s.sweep {
        Some(sw) => sw.values.iter().map(|&v| Some(v)).collect(),
        None => vec![None],
    };
    for &sv in &sweep_values {
        if matches!(s.topo, TopoSpec::Chain { .. }) && s.topo.chain_bottlenecks(sv) == Some(0) {
            return Err(ScenarioError::new(
                "topology: chain 'bottlenecks' must be >= 1",
            ));
        }
        if let TopoSpec::ThreeTier {
            pods,
            tors_per_pod,
            hosts_per_tor,
            ..
        } = s.topo
        {
            for (key, dim) in [
                ("pods", pods),
                ("tors_per_pod", tors_per_pod),
                ("hosts_per_tor", hosts_per_tor),
            ] {
                if dim.resolve(sv) == 0 {
                    return Err(ScenarioError::new(format!(
                        "topology: three_tier '{key}' must be >= 1",
                    )));
                }
            }
        }
        let topo = s.topo.build(s.link_bps, sv);
        if topo.n_hosts < 2 {
            return Err(ScenarioError::new(format!(
                "topology '{}' has {} hosts; at least 2 are required",
                topo.name, topo.n_hosts
            )));
        }
        match &s.faults {
            FaultsSpec::List(list) => {
                build_fault_plan(&topo, list)?;
            }
            FaultsSpec::Chaos(spec) => {
                if s.chaos_horizon() == Dur::ZERO {
                    return Err(ScenarioError::new(
                        "faults.$chaos: requires a positive measure horizon \
                         (warmup_ms + window_ms, or cap_ms, must be > 0)",
                    ));
                }
                // Sampling is cheap and cannot reference missing links, but
                // run it here so execution stays infallible by construction.
                let _ = crate::chaos::generate(&topo, s.chaos_horizon(), spec);
            }
        }
    }
    Ok(())
}

// -------------------------------------------------------------- execution

impl Scenario {
    /// The window generated `$chaos` faults start and heal inside: the
    /// measured portion of the run (faults after it would never be
    /// observed).
    fn chaos_horizon(&self) -> Dur {
        match self.measure {
            MeasureSpec::MinLinkUtilization { warmup, window } => warmup + window,
            MeasureSpec::Fct { cap } => cap,
        }
    }

    /// Build, fault, monitor, and load one network; `sink` is threaded
    /// through for tracing.
    fn build_net(
        &self,
        scheme: Scheme,
        seed: u64,
        sweep: Option<u64>,
        sink: Option<Box<dyn TraceSink>>,
    ) -> (Network, Vec<FlowSpec>) {
        let topo = self.topo.build(self.link_bps, sweep);
        let specs = self.workload.generate(
            &topo,
            self.link_bps,
            seed,
            self.topo.chain_bottlenecks(sweep),
        );
        let mut net = scheme.build(topo, self.link_bps, seed);
        let plan = match &self.faults {
            FaultsSpec::List(list) => build_fault_plan(net.topo(), list)
                .expect("validated: fault refs resolve in every topology"),
            FaultsSpec::Chaos(spec) => {
                crate::chaos::generate(net.topo(), self.chaos_horizon(), spec)
            }
        };
        if !plan.is_empty() {
            net.install_fault_plan(plan);
        }
        if let Some(spec) = self.invariants {
            net.install_invariants(spec);
        }
        if let Some(sink) = sink {
            net.install_trace_sink(sink);
        }
        add_all(&mut net, &specs);
        (net, specs)
    }

    fn run_min_util(&self, seed: u64, mut sink: Option<Box<dyn TraceSink>>) -> (String, Json) {
        let sweep = self.sweep.as_ref().expect("validated: sweep present");
        let (warmup, window) = match self.measure {
            MeasureSpec::MinLinkUtilization { warmup, window } => (warmup, window),
            MeasureSpec::Fct { .. } => unreachable!(),
        };
        let mut headers = vec!["scheme".to_string()];
        for v in &sweep.values {
            headers.push(format!("{}={v}", sweep.label));
        }
        let mut rows = Vec::new();
        let mut series_json = Vec::new();
        for s in &self.series {
            let mut row = vec![s.label.clone()];
            let mut points = Vec::new();
            for &v in &sweep.values {
                let (mut net, _) = self.build_net(s.scheme, seed, Some(v), sink.take());
                let n = self
                    .topo
                    .chain_bottlenecks(Some(v))
                    .expect("validated: chain topology");
                let u = min_chain_utilization(&mut net, n as usize, self.link_bps, warmup, window);
                sink = net.take_trace_sink();
                row.push(format!("{:.1}%", u * 100.0));
                points.push(
                    Json::obj()
                        .with("value", Json::num_u64(v))
                        .with("min_utilization", Json::Num(u)),
                );
            }
            rows.push(row);
            series_json.push(
                Json::obj()
                    .with("label", Json::str(&s.label))
                    .with("scheme", Json::str(s.scheme.name()))
                    .with("points", Json::Arr(points)),
            );
        }
        drop(sink); // flush
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let text = format!("{}\n{}", self.title, text_table(&hdr_refs, &rows));
        let json = Json::obj()
            .with("sweep_label", Json::str(&sweep.label))
            .with("series", Json::Arr(series_json));
        (text, json)
    }

    fn run_fct(&self, seed: u64, mut sink: Option<Box<dyn TraceSink>>) -> (String, Json) {
        let cap = match self.measure {
            MeasureSpec::Fct { cap } => cap,
            MeasureSpec::MinLinkUtilization { .. } => unreachable!(),
        };
        let sweep_values: Vec<Option<u64>> = match &self.sweep {
            Some(sw) => sw.values.iter().map(|&v| Some(v)).collect(),
            None => vec![None],
        };
        let mut rows = Vec::new();
        let mut series_json = Vec::new();
        for s in &self.series {
            for &sv in &sweep_values {
                let (mut net, specs) = self.build_net(s.scheme, seed, sv, sink.take());
                let last_start = specs.iter().map(|f| f.start).max().unwrap_or(SimTime::ZERO);
                net.run_until_done(last_start + cap);
                net.finish_stats();
                let fct = FctBuckets::from_records(&net.flow_records());
                let mut overall = fct.overall();
                let counters = net.counters().clone();
                let row_label = match (sv, &self.sweep) {
                    (Some(v), Some(sw)) => format!("{} {}={v}", s.label, sw.label),
                    _ => s.label.clone(),
                };
                rows.push(vec![
                    row_label,
                    overall.count().to_string(),
                    fct.unfinished().to_string(),
                    fmt_secs(overall.median()),
                    fmt_secs(overall.p99()),
                    fmt_secs(overall.max()),
                    counters.data_dropped.to_string(),
                ]);
                let mut entry = Json::obj()
                    .with("label", Json::str(&s.label))
                    .with("scheme", Json::str(s.scheme.name()));
                if let (Some(v), Some(sw)) = (sv, &self.sweep) {
                    entry = entry
                        .with("sweep_label", Json::str(&sw.label))
                        .with("sweep_value", Json::num_u64(v));
                }
                series_json.push(
                    entry
                        .with("completed", Json::num_u64(overall.count() as u64))
                        .with("unfinished", Json::num_u64(fct.unfinished() as u64))
                        .with(
                            "fct",
                            Json::obj()
                                .with("p50_s", Json::Num(overall.median()))
                                .with("p99_s", Json::Num(overall.p99()))
                                .with("max_s", Json::Num(overall.max())),
                        )
                        .with(
                            "max_queue_bytes",
                            Json::num_u64(net.max_switch_queue_bytes()),
                        )
                        .with("counters", counters.to_json())
                        .with("engine", net.engine_report().to_json())
                        .with("health", net.health_report().to_json()),
                );
                sink = net.take_trace_sink();
            }
        }
        drop(sink); // flush
        let text = format!(
            "{}\n{}",
            self.title,
            text_table(
                &["scheme", "flows", "unfin", "p50", "p99", "max", "drops"],
                &rows
            )
        );
        let json = Json::obj().with("series", Json::Arr(series_json));
        (text, json)
    }
}

impl crate::Experiment for ScenarioExperiment {
    fn name(&self) -> &str {
        &self.scenario.name
    }
    fn describe(&self) -> &str {
        &self.scenario.title
    }
    fn set_seed(&mut self, seed: u64) {
        self.seed_override = Some(seed);
    }
    fn traces(&self) -> bool {
        true
    }
    fn run(&self, trace: Option<Box<dyn TraceSink>>) -> crate::ExperimentOutput {
        let seed = self.seed_override.unwrap_or(self.scenario.seed);
        let (text, json) = match self.scenario.measure {
            MeasureSpec::MinLinkUtilization { .. } => self.scenario.run_min_util(seed, trace),
            MeasureSpec::Fct { .. } => self.scenario.run_fct(seed, trace),
        };
        crate::ExperimentOutput::new(text, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiment;

    const MIN_UTIL: &str = r#"{
        "schema": "xpass-scenario/v1",
        "name": "parking_lot",
        "title": "Fig 10: min link utilization on the parking lot",
        "seed": 23,
        "link_bps": 10000000000,
        "topology": {"kind": "chain", "bottlenecks": "$sweep",
                     "hosts_per_switch": 2, "prop_us": 1},
        "sweep": {"label": "N", "values": [2]},
        "series": [
            {"label": "w/ feedback", "scheme": {"kind": "xpass", "profile": "aggressive"}},
            {"label": "naive", "scheme": {"kind": "naive_credit"}}
        ],
        "workload": {"kind": "parking_lot"},
        "measure": {"kind": "min_link_utilization", "warmup_ms": 4, "window_ms": 4}
    }"#;

    #[test]
    fn min_util_scenario_matches_fig10_row() {
        let exp = parse_str(MIN_UTIL).unwrap();
        assert_eq!(exp.name(), "parking_lot");
        let out = exp.run(None);
        // Same number as the Fig 10 module at N=2 / seed 23.
        let cfg = crate::fig10_parking_lot::Config {
            bottlenecks: vec![2],
            ..Default::default()
        };
        let fig10 = crate::fig10_parking_lot::run(&cfg);
        assert_eq!(out.text, fig10.to_string());
        let j = xpass_sim::json::parse(&out.json.to_string()).unwrap();
        let series = j.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(
            series[0].get("scheme").unwrap().as_str(),
            Some("ExpressPass")
        );
        let u = series[0].get("points").unwrap().as_array().unwrap()[0]
            .get("min_utilization")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(u, fig10.series[0].points[0].min_utilization);
    }

    #[test]
    fn fct_scenario_with_fault_runs() {
        let src = r#"{
            "schema": "xpass-scenario/v1",
            "name": "star_incast",
            "title": "incast on a star with a host pause",
            "seed": 7,
            "link_bps": 10000000000,
            "topology": {"kind": "star", "hosts": 4, "prop_us": 1},
            "series": [
                {"label": "ExpressPass", "scheme": {"kind": "xpass"}},
                {"label": "DCTCP", "scheme": {"kind": "dctcp"}}
            ],
            "workload": {"kind": "incast", "bytes": 200000},
            "faults": [
                {"at_ms": 0.2, "action": "host_pause", "host": 1},
                {"at_ms": 0.5, "action": "host_resume", "host": 1}
            ],
            "invariants": {"zero_data_loss": false},
            "measure": {"kind": "fct", "cap_ms": 50}
        }"#;
        let exp = parse_str(src).unwrap();
        assert!(exp.traces());
        let out = exp.run(None);
        assert!(out.text.starts_with("incast on a star with a host pause\n"));
        let j = xpass_sim::json::parse(&out.json.to_string()).unwrap();
        let series = j.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2);
        for s in series {
            assert_eq!(s.get("unfinished").unwrap().as_u64(), Some(0));
            // The pause/resume pair was applied in every run.
            assert_eq!(
                s.get("counters")
                    .unwrap()
                    .get("faults_injected")
                    .unwrap()
                    .as_u64(),
                Some(2)
            );
        }
    }

    #[test]
    fn seed_override_changes_seeded_runs() {
        let mut exp = parse_str(MIN_UTIL).unwrap();
        exp.set_seed(99);
        // Runs, and still renders the same table shape.
        let out = exp.run(None);
        assert!(out.text.contains("N=2"));
    }

    const CHAOS_FCT: &str = r#"{
        "schema": "xpass-scenario/v1",
        "name": "chaos_dumbbell",
        "title": "chaos schedule on a dumbbell",
        "seed": 3,
        "link_bps": 10000000000,
        "topology": {"kind": "dumbbell", "pairs": 2, "prop_us": 1},
        "series": [{"label": "ExpressPass", "scheme": {"kind": "xpass", "profile": "aggressive"}}],
        "workload": {"kind": "permutation", "bytes": 6000000},
        "faults": {"$chaos": {"seed": 11, "intensity": 0.5}},
        "measure": {"kind": "fct", "cap_ms": 6}
    }"#;

    #[test]
    fn chaos_faults_generate_and_run() {
        let exp = parse_str(CHAOS_FCT).unwrap();
        let out = exp.run(None);
        let j = xpass_sim::json::parse(&out.json.to_string()).unwrap();
        let series = j.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 1);
        // The generated schedule was actually installed and applied.
        let injected = series[0]
            .get("counters")
            .unwrap()
            .get("faults_injected")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(injected > 0, "chaos plan injected no faults");
        // Same file, same schedule: the plan is a pure function of the spec.
        // Counters capture every applied fault and delivered byte; the
        // engine report also carries wall-clock fields, so compare these.
        let again = parse_str(CHAOS_FCT).unwrap().run(None);
        let j2 = xpass_sim::json::parse(&again.json.to_string()).unwrap();
        let counters = |j: &Json| {
            j.get("series").unwrap().as_array().unwrap()[0]
                .get("counters")
                .unwrap()
                .to_string()
        };
        assert_eq!(counters(&j), counters(&j2));
    }

    #[test]
    fn helpful_errors() {
        let cases: &[(&str, &str)] = &[
            ("{", "invalid JSON"),
            (r#"{"schema": "nope/v1"}"#, "unsupported schema"),
            (
                r#"{"schema": "xpass-scenario/v1", "name": "a b"}"#,
                "'name' must be non-empty",
            ),
            (
                r#"{"schema": "xpass-scenario/v1", "name": "x", "title": "t",
                    "seed": true}"#,
                "scenario.seed: must be a non-negative integer, got true",
            ),
        ];
        for (src, want) in cases {
            let err = parse_str(src).unwrap_err().to_string();
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
        // Unresolvable fault link: hosts are not directly connected.
        let src = r#"{
            "schema": "xpass-scenario/v1",
            "name": "bad",
            "title": "t",
            "seed": 1,
            "link_bps": 1000000000,
            "topology": {"kind": "star", "hosts": 3},
            "series": [{"label": "x", "scheme": {"kind": "dctcp"}}],
            "workload": {"kind": "permutation", "bytes": 1000},
            "faults": [{"at_ms": 1, "action": "link_down",
                        "from": {"host": 0}, "to": {"host": 1}}],
            "measure": {"kind": "fct", "cap_ms": 10}
        }"#;
        let err = parse_str(src).unwrap_err().to_string();
        assert!(err.contains("no link from host 0 to host 1"), "{err}");
        // Sweep required for min_link_utilization.
        let src = r#"{
            "schema": "xpass-scenario/v1",
            "name": "bad2",
            "title": "t",
            "seed": 1,
            "link_bps": 1000000000,
            "topology": {"kind": "chain", "bottlenecks": 2},
            "series": [{"label": "x", "scheme": {"kind": "dctcp"}}],
            "workload": {"kind": "parking_lot"},
            "measure": {"kind": "min_link_utilization", "warmup_ms": 1, "window_ms": 1}
        }"#;
        let err = parse_str(src).unwrap_err().to_string();
        assert!(err.contains("requires a 'sweep'"), "{err}");
    }

    const THREE_TIER_SWEEP: &str = r#"{
        "schema": "xpass-scenario/v1",
        "name": "clos_sweep",
        "title": "permutation across a growing Clos",
        "seed": 5,
        "link_bps": 10000000000,
        "topology": {"kind": "three_tier", "pods": "$sweep", "aggs_per_pod": 1,
                     "tors_per_pod": 1, "hosts_per_tor": 2, "cores": 2,
                     "prop_us": 1},
        "sweep": {"label": "pods", "values": [2, 3]},
        "series": [{"label": "ExpressPass", "scheme": {"kind": "xpass", "profile": "aggressive"}}],
        "workload": {"kind": "permutation", "bytes": 100000},
        "measure": {"kind": "fct", "cap_ms": 20}
    }"#;

    #[test]
    fn three_tier_fct_sweep_runs_one_row_per_value() {
        let exp = parse_str(THREE_TIER_SWEEP).unwrap();
        let out = exp.run(None);
        // One table row per sweep value, labelled with it.
        assert!(out.text.contains("ExpressPass pods=2"), "{}", out.text);
        assert!(out.text.contains("ExpressPass pods=3"), "{}", out.text);
        let j = xpass_sim::json::parse(&out.json.to_string()).unwrap();
        let series = j.get("series").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2);
        for (entry, want) in series.iter().zip([2u64, 3]) {
            assert_eq!(entry.get("sweep_label").unwrap().as_str(), Some("pods"));
            assert_eq!(entry.get("sweep_value").unwrap().as_u64(), Some(want));
            assert_eq!(entry.get("unfinished").unwrap().as_u64(), Some(0));
            // pods × tors_per_pod × hosts_per_tor flows in a permutation.
            assert_eq!(
                entry.get("completed").unwrap().as_u64(),
                Some(want * 2),
                "pods={want}"
            );
        }
    }

    #[test]
    fn three_tier_parse_and_validation_errors() {
        let base = r#"{
            "schema": "xpass-scenario/v1",
            "name": "tt",
            "title": "t",
            "seed": 1,
            "link_bps": 1000000000,
            "topology": TOPO,
            SWEEP
            "series": [{"label": "x", "scheme": {"kind": "dctcp"}}],
            "workload": {"kind": "permutation", "bytes": 1000},
            "measure": {"kind": "fct", "cap_ms": 10}
        }"#;
        let no_sweep = |topo: &str| base.replace("TOPO", topo).replace("SWEEP", "");
        let with_sweep = |topo: &str| {
            base.replace("TOPO", topo)
                .replace("SWEEP", r#""sweep": {"label": "n", "values": [2]},"#)
        };
        let cases: &[(String, &str)] = &[
            (
                with_sweep(
                    r#"{"kind": "three_tier", "pods": "$sweep", "aggs_per_pod": 1,
                       "tors_per_pod": "$sweep", "hosts_per_tor": 2, "cores": 1,
                       "prop_us": 1}"#,
                ),
                "at most one of pods|tors_per_pod|hosts_per_tor may be \"$sweep\", got 2",
            ),
            (
                no_sweep(
                    r#"{"kind": "three_tier", "pods": 2, "aggs_per_pod": 0,
                       "tors_per_pod": 1, "hosts_per_tor": 2, "cores": 2,
                       "prop_us": 1}"#,
                ),
                "three_tier requires aggs_per_pod >= 1, got 0",
            ),
            (
                no_sweep(
                    r#"{"kind": "three_tier", "pods": 2, "aggs_per_pod": 2,
                       "tors_per_pod": 1, "hosts_per_tor": 2, "cores": 3,
                       "prop_us": 1}"#,
                ),
                "three_tier cores (3) must be a positive multiple of aggs_per_pod (2)",
            ),
            (
                no_sweep(
                    r#"{"kind": "three_tier", "pods": 0, "aggs_per_pod": 1,
                       "tors_per_pod": 1, "hosts_per_tor": 2, "cores": 1,
                       "prop_us": 1}"#,
                ),
                "three_tier requires pods >= 1, got 0",
            ),
            (
                no_sweep(
                    r#"{"kind": "three_tier", "pods": 2, "aggs_per_pod": 1,
                       "hosts_per_tor": 2, "cores": 1, "prop_us": 1}"#,
                ),
                "topology.tors_per_pod: missing required key",
            ),
            (
                no_sweep(
                    r#"{"kind": "three_tier", "pods": "$sweep", "aggs_per_pod": 1,
                       "tors_per_pod": 1, "hosts_per_tor": 2, "cores": 1,
                       "prop_us": 1}"#,
                ),
                "topology references \"$sweep\" but the scenario declares no 'sweep'",
            ),
            (
                with_sweep(
                    r#"{"kind": "three_tier", "pods": 2, "aggs_per_pod": 1,
                       "tors_per_pod": 1, "hosts_per_tor": 2, "cores": 1,
                       "prop_us": 1}"#,
                ),
                "a 'sweep' is declared but no topology dimension is \"$sweep\"",
            ),
        ];
        for (src, want) in cases {
            let err = parse_str(src).unwrap_err().to_string();
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
    }

    /// Errors name the JSON path of the offending field and quote the value.
    #[test]
    fn errors_carry_json_path_and_value() {
        let base = r#"{
            "schema": "xpass-scenario/v1",
            "name": "p",
            "title": "t",
            "seed": 1,
            "link_bps": 1000000000,
            "topology": {"kind": "star", "hosts": 3},
            "series": [{"label": "x", "scheme": {"kind": "dctcp"}}],
            "workload": {"kind": "permutation", "bytes": 1000},
            "measure": {"kind": "fct", "cap_ms": 10},
            "faults": FAULTS
        }"#;
        let cases: &[(&str, &str)] = &[
            (
                r#"[{"at_ms": 1, "action": "host_pause", "host": 1},
                    {"at_ms": "late", "action": "host_pause", "host": 1}]"#,
                r#"faults[1].at_ms: must be a number, got "late""#,
            ),
            (
                r#"[{"at_ms": 1, "action": "set_loss", "data": 1.5, "credit": 0,
                    "from": {"host": 0}, "to": {"switch": 0}}]"#,
                "faults[0].data: must be a probability in [0, 1], got 1.5",
            ),
            (
                r#"[{"at_ms": 1, "action": "link_down", "from": 7, "to": {"host": 1}}]"#,
                r#"faults[0].from: must be an object {"switch": N} or {"host": N}, got 7"#,
            ),
            (
                r#"{"$chaos": {"seed": 1, "intensity": 2.0}}"#,
                "faults.$chaos.intensity: must be in [0, 1], got 2",
            ),
            (
                r#"{"$chaos": {"intensity": 0.5}}"#,
                "faults.$chaos.seed: missing required key",
            ),
            ("true", "scenario.faults: must be an array of fault events"),
        ];
        for (faults, want) in cases {
            let src = base.replace("FAULTS", faults);
            let err = parse_str(&src).unwrap_err().to_string();
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
        // Long offending values are truncated so errors stay one line.
        let src = base.replace(
            "FAULTS",
            &format!(
                r#"[{{"at_ms": "{}", "action": "host_pause", "host": 0}}]"#,
                "x".repeat(200)
            ),
        );
        let err = parse_str(&src).unwrap_err().to_string();
        assert!(
            err.contains("faults[0].at_ms") && err.contains('…'),
            "{err}"
        );
        assert!(err.len() < 120, "not truncated: {err}");
    }
}
