//! Shared experiment machinery: scheme selection, FCT bucketing,
//! convergence detection, and text-table rendering.

use expresspass::netcalc::{buffer_bounds, HierTopo, LinkClass, NetCalcParams};
use expresspass::{xpass_factory, XPassConfig};
use xpass_baselines::{
    cubic_factory, dctcp_factory, dx_factory, hull_factory, ideal_factory, naive_credit_factory,
    rcp_factory, reno_factory, MaxMinOracle,
};
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::endpoint::EndpointFactory;
use xpass_net::health::{HealthReport, InvariantSpec};
use xpass_net::ids::FlowId;
use xpass_net::network::{Counters, FlowRecord, Network};
use xpass_net::topology::Topology;
use xpass_sim::profile::{self, EngineReport};
use xpass_sim::stats::Percentiles;
use xpass_sim::time::{Dur, SimTime};
use xpass_sim::trace::TraceSink;
use xpass_workloads;

/// A congestion-control scheme under test.
#[derive(Clone, Copy, Debug)]
pub enum Scheme {
    /// ExpressPass with the given parameters.
    XPass(XPassConfig),
    /// DCTCP (ECN threshold K scaled to link speed).
    Dctcp,
    /// RCP explicit rates.
    Rcp,
    /// HULL phantom queues.
    Hull,
    /// DX delay feedback.
    Dx,
    /// TCP CUBIC.
    Cubic,
    /// TCP Reno.
    Reno,
    /// Credits at maximum rate, no feedback (§2's naïve scheme).
    NaiveCredit,
    /// Omniscient max-min rate oracle (§2's ideal rate control).
    Ideal,
}

impl Scheme {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::XPass(_) => "ExpressPass",
            Scheme::Dctcp => "DCTCP",
            Scheme::Rcp => "RCP",
            Scheme::Hull => "HULL",
            Scheme::Dx => "DX",
            Scheme::Cubic => "CUBIC",
            Scheme::Reno => "Reno",
            Scheme::NaiveCredit => "NaiveCredit",
            Scheme::Ideal => "Ideal",
        }
    }

    /// The paper's five-way FCT comparison set (Fig 19, Table 3).
    pub fn comparison_set() -> Vec<Scheme> {
        vec![
            Scheme::XPass(XPassConfig::default()),
            Scheme::Rcp,
            Scheme::Dctcp,
            Scheme::Dx,
            Scheme::Hull,
        ]
    }

    /// Network configuration for this scheme at a given link speed.
    pub fn net_config(&self, link_bps: u64) -> NetConfig {
        let cfg = match self {
            Scheme::XPass(_) | Scheme::NaiveCredit => NetConfig::expresspass(),
            Scheme::Dctcp => NetConfig::dctcp(link_bps),
            Scheme::Rcp => NetConfig::rcp(),
            Scheme::Hull => NetConfig::hull(link_bps),
            Scheme::Dx | Scheme::Cubic | Scheme::Reno | Scheme::Ideal => NetConfig::default(),
        };
        let mut cfg = cfg.with_queue_for_speed(link_bps);
        // ~1 µs mean host delay (the paper's simulation setting) with a
        // ±0.5 µs spread: real hosts are never perfectly deterministic, and
        // a little delay noise prevents artificial phase locks (e.g. an
        // ack-clocked sender monopolizing every drain slot of a full
        // drop-tail queue forever).
        cfg.host_delay = HostDelayModel::hardware();
        cfg
    }

    /// Endpoint factory for this scheme.
    pub fn factory(&self, link_bps: u64) -> EndpointFactory {
        match self {
            Scheme::XPass(x) => xpass_factory(*x),
            Scheme::Dctcp => dctcp_factory(link_bps),
            Scheme::Rcp => rcp_factory(),
            Scheme::Hull => hull_factory(link_bps),
            Scheme::Dx => dx_factory(),
            Scheme::Cubic => cubic_factory(),
            Scheme::Reno => reno_factory(),
            Scheme::NaiveCredit => naive_credit_factory(),
            Scheme::Ideal => ideal_factory(1e9),
        }
    }

    /// Build a ready-to-run network for this scheme (installs the max-min
    /// oracle controller for [`Scheme::Ideal`]).
    pub fn build(&self, topo: Topology, link_bps: u64, seed: u64) -> Network {
        let cfg = self.net_config(link_bps).with_seed(seed);
        let mut net = Network::new(topo, cfg, self.factory(link_bps));
        if matches!(self, Scheme::Ideal) {
            net.set_controller(Box::new(MaxMinOracle::new(0.95)));
        }
        net
    }
}

/// The paper's flow-size buckets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SizeBucket {
    /// 0–10 KB.
    S,
    /// 10–100 KB.
    M,
    /// 100 KB–1 MB.
    L,
    /// > 1 MB.
    Xl,
}

impl SizeBucket {
    /// Bucket of a flow size.
    pub fn of(bytes: u64) -> SizeBucket {
        if bytes <= 10_000 {
            SizeBucket::S
        } else if bytes <= 100_000 {
            SizeBucket::M
        } else if bytes <= 1_000_000 {
            SizeBucket::L
        } else {
            SizeBucket::Xl
        }
    }

    /// All buckets, in order.
    pub fn all() -> [SizeBucket; 4] {
        [SizeBucket::S, SizeBucket::M, SizeBucket::L, SizeBucket::Xl]
    }

    /// Bucket label as in the paper ("S", "M", "L", "XL").
    pub fn label(&self) -> &'static str {
        match self {
            SizeBucket::S => "S",
            SizeBucket::M => "M",
            SizeBucket::L => "L",
            SizeBucket::Xl => "XL",
        }
    }
}

/// FCT statistics per size bucket.
#[derive(Clone, Debug, Default)]
pub struct FctBuckets {
    per_bucket: [Percentiles; 4],
    unfinished: usize,
}

impl FctBuckets {
    /// Aggregate FCTs from completed flow records.
    pub fn from_records(records: &[FlowRecord]) -> FctBuckets {
        let mut b = FctBuckets::default();
        for r in records {
            match r.fct {
                Some(fct) => {
                    let idx = match SizeBucket::of(r.size_bytes) {
                        SizeBucket::S => 0,
                        SizeBucket::M => 1,
                        SizeBucket::L => 2,
                        SizeBucket::Xl => 3,
                    };
                    b.per_bucket[idx].add(fct.as_secs_f64());
                }
                None => b.unfinished += 1,
            }
        }
        b
    }

    fn idx(bucket: SizeBucket) -> usize {
        match bucket {
            SizeBucket::S => 0,
            SizeBucket::M => 1,
            SizeBucket::L => 2,
            SizeBucket::Xl => 3,
        }
    }

    /// Average FCT (seconds) in a bucket.
    pub fn avg(&self, bucket: SizeBucket) -> f64 {
        self.per_bucket[Self::idx(bucket)].mean()
    }

    /// 99th-percentile FCT (seconds) in a bucket.
    pub fn p99(&mut self, bucket: SizeBucket) -> f64 {
        self.per_bucket[Self::idx(bucket)].p99()
    }

    /// Flows counted in a bucket.
    pub fn count(&self, bucket: SizeBucket) -> usize {
        self.per_bucket[Self::idx(bucket)].count()
    }

    /// Flows that never finished (should be zero in healthy runs).
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// FCT percentiles over all buckets combined. Exact: merges the raw
    /// samples of every bucket (quantiles of the union, not a union of
    /// quantiles).
    pub fn overall(&self) -> Percentiles {
        let mut all = Percentiles::new();
        for b in &self.per_bucket {
            all.merge(b);
        }
        all
    }
}

/// Detect when a tracked flow's throughput converged to a band around the
/// fair share: the first sample time at which the rolling mean over
/// `window` samples lies within `tol` of `fair_gbps` (the rolling mean
/// absorbs the deliberate rate oscillation of the feedback loops).
/// Returns time since `t0`.
pub fn convergence_time(
    net: &Network,
    flow: FlowId,
    t0: SimTime,
    fair_gbps: f64,
    tol: f64,
    window: usize,
) -> Option<Dur> {
    let series = net.flow_series(flow)?;
    let samples: Vec<(SimTime, f64)> = series
        .samples
        .iter()
        .filter(|&&(t, _)| t >= t0)
        .copied()
        .collect();
    convergence_time_samples(&samples, t0, fair_gbps, tol, window)
}

/// Core of [`convergence_time`], operating on an explicit `(time, gbps)`
/// sample slice (samples before `t0` must already be excluded).
pub fn convergence_time_samples(
    samples: &[(SimTime, f64)],
    t0: SimTime,
    fair_gbps: f64,
    tol: f64,
    window: usize,
) -> Option<Dur> {
    if window == 0 || samples.len() < window {
        return None;
    }
    // Sustained convergence: find the LAST window whose mean is outside the
    // band; convergence is the start of the next window. A transient
    // crossing during ramp-up therefore does not count.
    let n_windows = samples.len() - window + 1;
    let in_band = |i: usize| {
        let mean: f64 = samples[i..i + window].iter().map(|&(_, v)| v).sum::<f64>() / window as f64;
        (mean - fair_gbps).abs() <= tol * fair_gbps
    };
    if !in_band(n_windows - 1) {
        return None; // not converged by the end of the observation
    }
    let mut first_sustained = n_windows - 1;
    while first_sustained > 0 && in_band(first_sustained - 1) {
        first_sustained -= 1;
    }
    Some(samples[first_sustained].0.since(t0))
}

/// One realistic-workload simulation (the §6.3 setup): Poisson arrivals of
/// a Table-2 workload on the 192-host 3:1 fat tree, one scheme, one load.
/// Shared by Figs 18–21 and Table 3.
#[derive(Clone, Debug)]
pub struct RealisticRun {
    /// Flow-size workload.
    pub workload: xpass_workloads::Workload,
    /// Target ToR-uplink load.
    pub load: f64,
    /// Flows to simulate (paper: 100k; scaled defaults use fewer).
    pub n_flows: usize,
    /// Link speed (all tiers; the paper compares 10 G vs 40 G).
    pub link_bps: u64,
    /// Scheme under test.
    pub scheme: Scheme,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of a [`RealisticRun`].
#[derive(Clone, Debug)]
pub struct RealisticResult {
    /// FCT statistics per size bucket.
    pub fct: FctBuckets,
    /// Mean of per-switch-port time-weighted queue occupancy (bytes).
    pub avg_queue_bytes: f64,
    /// Maximum instantaneous switch queue (bytes).
    pub max_queue_bytes: u64,
    /// Credits sent (credit schemes only).
    pub credits_sent: u64,
    /// Credits wasted at senders (credit schemes only).
    pub credits_wasted: u64,
    /// Data packets dropped.
    pub data_drops: u64,
    /// Flows that did not complete within the run cap.
    pub unfinished: usize,
    /// Full global packet/credit counters.
    pub counters: Counters,
    /// Engine profile: events processed (per kind), peak heap depth,
    /// wall-clock throughput.
    pub engine: EngineReport,
    /// Invariant-monitor outcome. For [`Scheme::XPass`] runs the Table-1
    /// data-queue bound and the zero-data-loss claim are monitored;
    /// `monitored` is false for the baselines.
    pub health: HealthReport,
}

/// The Table-1 network-calculus invariant spec for [`Topology::eval_fat_tree`]
/// at `link_bps` (uniform tier speeds, 4 µs propagation) with the scheme's
/// net-config host-delay and credit-queue parameters: monitor every
/// switch-egress data queue against the worst port-class buffer bound, and
/// assert zero data loss.
pub fn eval_fat_tree_invariants(link_bps: u64, cfg: &NetConfig) -> InvariantSpec {
    let link = LinkClass {
        speed_bps: link_bps,
        prop: Dur::us(4),
    };
    let topo = HierTopo {
        name: "eval fat tree".to_string(),
        host_link: link,
        tor_agg: link,
        agg_core: link,
        // eval_fat_tree: 6 hosts per ToR, 2 uplinks per ToR (3:1).
        tor_down_ports: 6,
        tor_up_ports: 2,
    };
    let p = NetCalcParams {
        credit_queue: cfg.credit_queue_pkts,
        dhost_min: cfg.host_delay.min,
        dhost_max: cfg.host_delay.max,
        switch_latency: Dur::ZERO,
    };
    let b = buffer_bounds(&topo, &p);
    let bound = b
        .tor_down
        .buffer_bytes
        .max(b.tor_up.buffer_bytes)
        .max(b.core.buffer_bytes);
    InvariantSpec {
        data_queue_bound_bytes: Some(bound),
        zero_data_loss: true,
    }
}

impl RealisticRun {
    /// Execute the run.
    pub fn run(&self) -> RealisticResult {
        self.run_traced(None).0
    }

    /// Execute the run with an optional trace sink installed for its
    /// duration. The sink is returned (flushed) so callers can thread one
    /// sink through a sequence of runs into a single output stream.
    /// ExpressPass runs additionally monitor the Table-1 queue bound and
    /// zero-data-loss invariants ([`eval_fat_tree_invariants`]).
    pub fn run_traced(
        &self,
        sink: Option<Box<dyn TraceSink>>,
    ) -> (RealisticResult, Option<Box<dyn TraceSink>>) {
        let setup = profile::span("setup");
        let topo = Topology::eval_fat_tree(self.link_bps);
        let mut net = self.scheme.build(topo.clone(), self.link_bps, self.seed);
        if let Some(sink) = sink {
            net.install_trace_sink(sink);
        }
        if matches!(self.scheme, Scheme::XPass(_)) {
            let cfg = self.scheme.net_config(self.link_bps);
            net.install_invariants(eval_fat_tree_invariants(self.link_bps, &cfg));
        }
        let wl = xpass_workloads::PoissonWorkload::new(
            self.workload.dist(),
            self.load,
            self.n_flows,
            self.seed ^ 0xABCD,
        );
        let specs = wl.generate(&topo);
        xpass_workloads::add_all(&mut net, &specs);
        let last_start = specs.last().unwrap().start;
        drop(setup);
        {
            let _run = profile::span("run");
            net.run_until_done(last_start + Dur::secs(10));
        }
        net.finish_stats();
        let fct = FctBuckets::from_records(&net.flow_records());
        let mut qsum = 0.0;
        let mut nports = 0usize;
        for p in net.ports() {
            if matches!(
                net.topo().dlinks[p.dlink.0 as usize].from,
                xpass_net::ids::NodeId::Switch(_)
            ) {
                qsum += p.data.stats.occupancy.mean();
                nports += 1;
            }
        }
        let result = RealisticResult {
            unfinished: fct.unfinished(),
            avg_queue_bytes: if nports > 0 {
                qsum / nports as f64
            } else {
                0.0
            },
            max_queue_bytes: net.max_switch_queue_bytes(),
            credits_sent: net.counters().credits_sent,
            credits_wasted: net.counters().credits_wasted,
            data_drops: net.counters().data_dropped,
            counters: net.counters().clone(),
            engine: net.engine_report(),
            health: net.health_report(),
            fct,
        };
        (result, net.take_trace_sink())
    }
}

/// Cumulative-average variant of [`convergence_time`]: the last time the
/// running average throughput since `t0` enters the band and stays there.
/// The cumulative average is smooth by construction, which makes this
/// metric robust for loss-based protocols whose instantaneous rate is a
/// deep sawtooth (TCP CUBIC/Reno); it slightly over-estimates convergence
/// time because early slow samples keep dragging on the average.
pub fn convergence_time_cumulative(
    net: &Network,
    flow: FlowId,
    t0: SimTime,
    fair_gbps: f64,
    tol: f64,
) -> Option<Dur> {
    let series = net.flow_series(flow)?;
    let samples: Vec<(SimTime, f64)> = series
        .samples
        .iter()
        .filter(|&&(t, _)| t >= t0)
        .copied()
        .collect();
    convergence_time_cumulative_samples(&samples, t0, fair_gbps, tol)
}

/// Core of [`convergence_time_cumulative`], operating on an explicit
/// `(time, gbps)` sample slice (samples before `t0` must already be
/// excluded).
pub fn convergence_time_cumulative_samples(
    samples: &[(SimTime, f64)],
    t0: SimTime,
    fair_gbps: f64,
    tol: f64,
) -> Option<Dur> {
    if samples.is_empty() {
        return None;
    }
    let mut cum = Vec::with_capacity(samples.len());
    let mut acc = 0.0;
    for (i, &(t, v)) in samples.iter().enumerate() {
        acc += v;
        cum.push((t, acc / (i + 1) as f64));
    }
    let in_band = |v: f64| (v - fair_gbps).abs() <= tol * fair_gbps;
    if !in_band(cum.last().unwrap().1) {
        return None;
    }
    let mut first = cum.len() - 1;
    while first > 0 && in_band(cum[first - 1].1) {
        first -= 1;
    }
    Some(cum[first].0.since(t0))
}

/// Render rows as a fixed-width text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "{}\n",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format seconds with an adaptive unit (for FCT tables).
pub fn fmt_secs(s: f64) -> String {
    if s <= 0.0 {
        "-".into()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}s", s)
    }
}

/// Format bytes with an adaptive unit.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{:.0}B", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpass_net::ids::HostId;

    #[test]
    fn size_buckets() {
        assert_eq!(SizeBucket::of(1), SizeBucket::S);
        assert_eq!(SizeBucket::of(10_000), SizeBucket::S);
        assert_eq!(SizeBucket::of(10_001), SizeBucket::M);
        assert_eq!(SizeBucket::of(100_001), SizeBucket::L);
        assert_eq!(SizeBucket::of(2_000_000), SizeBucket::Xl);
    }

    #[test]
    fn fct_bucketing() {
        let recs = vec![
            FlowRecord {
                id: FlowId(0),
                src: HostId(0),
                dst: HostId(1),
                size_bytes: 5_000,
                start: SimTime::ZERO,
                fct: Some(Dur::us(100)),
                credits_sent: 0,
                credits_wasted: 0,
                outcome: None,
            },
            FlowRecord {
                id: FlowId(1),
                src: HostId(0),
                dst: HostId(1),
                size_bytes: 5_000_000,
                start: SimTime::ZERO,
                fct: Some(Dur::ms(5)),
                credits_sent: 0,
                credits_wasted: 0,
                outcome: None,
            },
            FlowRecord {
                id: FlowId(2),
                src: HostId(0),
                dst: HostId(1),
                size_bytes: 500,
                start: SimTime::ZERO,
                fct: None,
                credits_sent: 0,
                credits_wasted: 0,
                outcome: None,
            },
        ];
        let mut b = FctBuckets::from_records(&recs);
        assert_eq!(b.count(SizeBucket::S), 1);
        assert_eq!(b.count(SizeBucket::Xl), 1);
        assert_eq!(b.unfinished(), 1);
        assert!((b.avg(SizeBucket::S) - 100e-6).abs() < 1e-12);
        assert!((b.p99(SizeBucket::Xl) - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn schemes_build_networks() {
        let speed = 10_000_000_000;
        for scheme in [
            Scheme::XPass(XPassConfig::default()),
            Scheme::Dctcp,
            Scheme::Rcp,
            Scheme::Hull,
            Scheme::Dx,
            Scheme::Cubic,
            Scheme::Reno,
            Scheme::NaiveCredit,
            Scheme::Ideal,
        ] {
            let topo = Topology::dumbbell(2, speed, Dur::us(1));
            let net = scheme.build(topo, speed, 1);
            assert_eq!(net.flow_count(), 0);
            // Credit class only for the credit schemes.
            let has_credit = net.port(xpass_net::ids::DLinkId(0)).credit.is_some();
            match scheme {
                Scheme::XPass(_) | Scheme::NaiveCredit => assert!(has_credit),
                _ => assert!(!has_credit),
            }
        }
    }

    #[test]
    fn table_rendering_aligns() {
        let t = text_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("a    bbbb"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn overall_is_exact_union_of_buckets() {
        let mk = |size: u64, fct_us: u64| FlowRecord {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(1),
            size_bytes: size,
            start: SimTime::ZERO,
            fct: Some(Dur::us(fct_us)),
            credits_sent: 0,
            credits_wasted: 0,
            outcome: None,
        };
        // Two S flows and two XL flows with well-separated FCTs: the exact
        // overall median must interpolate between the 2nd and 3rd sample,
        // which a quantile-of-quantiles resampling would miss.
        let recs = vec![
            mk(100, 10),
            mk(200, 20),
            mk(2_000_000, 1000),
            mk(3_000_000, 2000),
        ];
        let b = FctBuckets::from_records(&recs);
        let mut all = b.overall();
        assert_eq!(all.count(), 4);
        let mut direct = Percentiles::new();
        for us in [10, 20, 1000, 2000] {
            direct.add(Dur::us(us).as_secs_f64());
        }
        assert_eq!(all.quantile(0.5), direct.quantile(0.5));
        assert_eq!(all.quantile(0.99), direct.quantile(0.99));
        assert_eq!(all.min(), Dur::us(10).as_secs_f64());
        assert_eq!(all.max(), Dur::us(2000).as_secs_f64());
    }

    #[test]
    fn convergence_fewer_samples_than_window() {
        let s: Vec<(SimTime, f64)> = (0..3).map(|i| (SimTime(i), 1.0)).collect();
        assert_eq!(
            convergence_time_samples(&s, SimTime::ZERO, 1.0, 0.1, 4),
            None
        );
        assert_eq!(
            convergence_time_samples(&[], SimTime::ZERO, 1.0, 0.1, 1),
            None
        );
        assert_eq!(
            convergence_time_cumulative_samples(&[], SimTime::ZERO, 1.0, 0.1),
            None
        );
    }

    #[test]
    fn convergence_never_converged() {
        // Steady throughput far below the fair share: no window is in band.
        let s: Vec<(SimTime, f64)> = (0..20).map(|i| (SimTime(i * 100), 0.2)).collect();
        assert_eq!(
            convergence_time_samples(&s, SimTime::ZERO, 1.0, 0.1, 4),
            None
        );
        assert_eq!(
            convergence_time_cumulative_samples(&s, SimTime::ZERO, 1.0, 0.1),
            None
        );
    }

    #[test]
    fn convergence_in_band_from_first_window() {
        // In band from the very first sample: convergence at the first
        // sample time, i.e. zero delay after t0.
        let s: Vec<(SimTime, f64)> = (0..10).map(|i| (SimTime(i * 100), 1.0)).collect();
        assert_eq!(
            convergence_time_samples(&s, SimTime::ZERO, 1.0, 0.1, 4),
            Some(Dur::ZERO)
        );
        assert_eq!(
            convergence_time_cumulative_samples(&s, SimTime::ZERO, 1.0, 0.1),
            Some(Dur::ZERO)
        );
        // Ramp-up then sustained band entry: convergence at the start of
        // the first sustained in-band window, not the transient.
        let mut ramp: Vec<(SimTime, f64)> = vec![
            (SimTime(0), 0.0),
            (SimTime(100), 1.0), // transient spike, not sustained
            (SimTime(200), 0.0),
            (SimTime(300), 0.1),
        ];
        ramp.extend((4..14).map(|i| (SimTime(i * 100), 1.0)));
        let got = convergence_time_samples(&ramp, SimTime::ZERO, 1.0, 0.05, 2).unwrap();
        assert_eq!(got, Dur(400));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(0.0), "-");
        assert_eq!(fmt_secs(50e-6), "50.0us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_bytes(500.0), "500B");
        assert_eq!(fmt_bytes(1_500.0), "1.5KB");
        assert_eq!(fmt_bytes(2_000_000.0), "2.00MB");
    }
}
