//! Fig 15 — flow scalability: N long-running flow pairs over one
//! bottleneck; utilization, Jain fairness, and maximum queue versus N, for
//! ExpressPass, DCTCP, and RCP.
//!
//! Paper shape: ExpressPass ~95 % utilization with near-perfect fairness
//! and a tiny bounded queue; DCTCP at 100 % utilization but fairness
//! collapsing beyond ~64 flows (min window 2) with a queue that tracks the
//! flow count; RCP fair but overflowing the queue beyond 32 flows.

use crate::harness::{text_table, Scheme};
use std::fmt;
use xpass_net::ids::HostId;
use xpass_net::topology::Topology;
use xpass_sim::stats::jain_fairness;
use xpass_sim::time::{Dur, SimTime};

/// Fig 15 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Flow counts (paper: 4–1024 in ns-2).
    pub flow_counts: Vec<usize>,
    /// Link speed.
    pub link_bps: u64,
    /// Warmup.
    pub warmup: Dur,
    /// Measurement window (paper uses 100 ms fairness intervals; the
    /// scaled default shortens it).
    pub window: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            flow_counts: vec![4, 16, 64, 256],
            link_bps: 10_000_000_000,
            warmup: Dur::ms(10),
            window: Dur::ms(25),
            seed: 41,
        }
    }
}

/// One measured cell.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Concurrent flows.
    pub flows: usize,
    /// Bottleneck utilization (goodput / capacity).
    pub utilization: f64,
    /// Jain fairness over the window.
    pub fairness: f64,
    /// Maximum switch queue (bytes).
    pub max_queue_bytes: u64,
    /// Data packets dropped.
    pub drops: u64,
}

/// One scheme's series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme name.
    pub scheme: &'static str,
    /// Points per flow count.
    pub points: Vec<Point>,
}

/// Fig 15 result.
#[derive(Clone, Debug)]
pub struct Fig15 {
    /// ExpressPass, DCTCP, RCP.
    pub series: Vec<Series>,
}

fn measure(cfg: &Config, scheme: Scheme, n: usize) -> Point {
    let topo = Topology::dumbbell(n, cfg.link_bps, Dur::us(8));
    let mut net = scheme.build(topo, cfg.link_bps, cfg.seed);
    let bytes = (cfg.link_bps / 8) * 2;
    let flows: Vec<_> = (0..n)
        .map(|i| {
            // Unsynchronized long-running flows: tiny staggered starts.
            let start = SimTime::ZERO + Dur::us((i as u64 * 37) % 500);
            net.add_flow(HostId(i as u32), HostId((n + i) as u32), bytes, start)
        })
        .collect();
    net.run_until(SimTime::ZERO + cfg.warmup);
    let before: Vec<u64> = flows.iter().map(|&f| net.delivered_bytes(f)).collect();
    net.run_until(SimTime::ZERO + cfg.warmup + cfg.window);
    let deltas: Vec<f64> = flows
        .iter()
        .zip(&before)
        .map(|(&f, &b)| (net.delivered_bytes(f) - b) as f64)
        .collect();
    let goodput: f64 = deltas.iter().sum::<f64>() * 8.0 / cfg.window.as_secs_f64();
    Point {
        flows: n,
        utilization: goodput / cfg.link_bps as f64,
        fairness: jain_fairness(&deltas),
        max_queue_bytes: net.max_switch_queue_bytes(),
        drops: net.total_data_drops(),
    }
}

/// Run the three-scheme sweep.
pub fn run(cfg: &Config) -> Fig15 {
    let schemes = [
        Scheme::XPass(expresspass::XPassConfig::aggressive()),
        Scheme::Dctcp,
        Scheme::Rcp,
    ];
    Fig15 {
        series: schemes
            .into_iter()
            .map(|s| Series {
                scheme: s.name(),
                points: cfg
                    .flow_counts
                    .iter()
                    .map(|&n| measure(cfg, s, n))
                    .collect(),
            })
            .collect(),
    }
}

impl fmt::Display for Fig15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 15: flow scalability (utilization / fairness / max queue KB / drops)"
        )?;
        let mut headers = vec!["scheme".to_string()];
        for p in &self.series[0].points {
            headers.push(format!("N={}", p.flows));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|s| {
                let mut row = vec![s.scheme.to_string()];
                row.extend(s.points.iter().map(|p| {
                    format!(
                        "{:.2}/{:.2}/{:.0}K/{}",
                        p.utilization,
                        p.fairness,
                        p.max_queue_bytes as f64 / 1e3,
                        p.drops
                    )
                }));
                row
            })
            .collect();
        write!(f, "{}", text_table(&hdr_refs, &rows))
    }
}

use xpass_sim::json::Json;

impl Fig15 {
    /// Structured payload: utilization/fairness/queue/drops per flow count
    /// for every scheme series.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .with("flows", Json::num_u64(p.flows as u64))
                            .with("utilization", Json::Num(p.utilization))
                            .with("fairness", Json::Num(p.fairness))
                            .with("max_queue_bytes", Json::num_u64(p.max_queue_bytes))
                            .with("drops", Json::num_u64(p.drops))
                    })
                    .collect();
                Json::obj()
                    .with("scheme", Json::str(s.scheme))
                    .with("points", Json::Arr(points))
            })
            .collect();
        Json::obj().with("series", Json::Arr(series))
    }
}

/// Registry adapter: drives Fig 15 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig15"
    }
    fn describe(&self) -> &str {
        "flow scalability"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            flow_counts: vec![4, 64],
            ..Config::default()
        }
    }

    #[test]
    fn expresspass_utilization_near_95_percent_of_payload() {
        let r = run(&quick());
        let xp = &r.series[0].points;
        // Payload ceiling: 0.9482 × 1460/1538 ≈ 0.90 of line rate. Our
        // feedback oscillates more than the paper's (uniform-random credit
        // drops are noisier than testbed droptail), costing a few percent.
        assert!(
            xp[0].utilization > 0.72,
            "N=4 utilization {:.3}",
            xp[0].utilization
        );
        assert!(xp[0].fairness > 0.95, "N=4 fairness {:.3}", xp[0].fairness);
        // N=64 is the sub-credit-per-RTT regime (§3.4): fairness degrades.
        assert!(
            xp[1].utilization > 0.72,
            "N=64 utilization {:.3}",
            xp[1].utilization
        );
        assert!(xp[1].fairness > 0.4, "N=64 fairness {:.3}", xp[1].fairness);
        for p in xp {
            assert_eq!(p.drops, 0, "N={}: drops", p.flows);
        }
    }

    #[test]
    fn expresspass_queue_stays_bounded_as_flows_grow() {
        let r = run(&quick());
        let xp = &r.series[0].points;
        let dctcp = &r.series[1].points;
        // ExpressPass queue does not track flow count; DCTCP's does.
        assert!(
            xp[1].max_queue_bytes < 60_000,
            "xpass queue {}",
            xp[1].max_queue_bytes
        );
        assert!(
            dctcp[1].max_queue_bytes > xp[1].max_queue_bytes,
            "dctcp {} vs xpass {}",
            dctcp[1].max_queue_bytes,
            xp[1].max_queue_bytes
        );
    }

    #[test]
    fn dctcp_full_utilization() {
        let r = run(&quick());
        let dctcp = &r.series[1].points;
        assert!(dctcp[0].utilization > 0.85, "{:.3}", dctcp[0].utilization);
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 15"));
    }
}
