//! Chaos engineering: seeded random fault schedules and the `chaos_sweep`
//! experiment.
//!
//! The fault layer (PR 1) replays hand-written schedules; the invariant
//! monitors (PR 2) check what a scenario author thought to enable. This
//! module machine-generates the failure timing instead: [`generate`]
//! samples a [`FaultPlan`] — cable down/up with freeze-or-flush, per-link
//! loss and corruption, host pause/resume — against any topology, fully
//! determined by a seed, with every fault healed before the horizon so
//! liveness is always *eventually* restored.
//!
//! [`chaos_sweep`](Exp) runs N derived seeds through the parallel runner
//! and asserts the full robustness invariant set per seed:
//!
//! * **conservation** — the byte/packet ledger balances
//!   ([`xpass_net::ledger`]);
//! * **zero data loss + Table-1 queue bound** — in *clean regimes*
//!   (schedules with no `LinkDown`: a frozen port legitimately accumulates
//!   arrivals above the bound, and flushes drop data by design);
//! * **liveness** — every flow terminates `Completed` or `Aborted` (never
//!   hung or left stalled), and the simulation watchdog
//!   ([`xpass_sim::watchdog`]) never trips.
//!
//! The sweep report is deterministic: same base seed ⇒ byte-identical JSON
//! for any `--scheduler` / `--jobs` combination. The per-run watchdog
//! therefore arms only *event* budgets — a wall-clock budget would trip
//! depending on machine speed and leak nondeterminism into the report.

use crate::harness::text_table;
use crate::parallel;
use expresspass::netcalc::{buffer_bounds, HierTopo, LinkClass, NetCalcParams};
use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::NetConfig;
use xpass_net::faults::{FaultKind, FaultPlan};
use xpass_net::health::InvariantSpec;
use xpass_net::ids::HostId;
use xpass_net::network::{FlowOutcome, Network};
use xpass_net::topology::Topology;
use xpass_sim::json::Json;
use xpass_sim::rng::Rng;
use xpass_sim::time::{Dur, SimTime};
use xpass_sim::watchdog::WatchdogSpec;

/// Seed salt for the schedule-generator RNG, so chaos sampling never
/// correlates with the traffic or fault-decision RNG streams.
pub const CHAOS_RNG_SALT: u64 = 0xC4A0_5C4E_DBAD_D1CE;

/// Parameters of one generated fault schedule.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// Generator seed: the schedule is a pure function of (topology,
    /// horizon, seed, intensity).
    pub seed: u64,
    /// How hard to shake, in `[0, 1]`: scales the number of fault episodes
    /// and the loss/corruption probabilities. Clamped.
    pub intensity: f64,
}

/// Sample a random fault schedule against `topo`. Every episode starts and
/// heals strictly inside `[0, horizon)`: links come back up, loss and
/// corruption clear, hosts resume — a generated schedule can delay flows
/// but never permanently partition them.
pub fn generate(topo: &Topology, horizon: Dur, spec: &ChaosSpec) -> FaultPlan {
    assert!(horizon > Dur::ZERO, "chaos horizon must be positive");
    let intensity = spec.intensity.clamp(0.0, 1.0);
    let mut rng = Rng::new(spec.seed ^ CHAOS_RNG_SALT);
    let mut plan = FaultPlan::new();
    // Cables are consecutive dlink pairs by construction (TopoBuilder
    // pushes both directions together); fail both directions so the
    // credit/data paths stay symmetric (§3.1).
    let n_cables = topo.dlinks.len() / 2;
    let n_dlinks = topo.dlinks.len();
    let n_hosts = topo.n_hosts;
    let episodes = 1 + (intensity * 7.0) as u64;
    let h = horizon.0;
    for _ in 0..episodes {
        // Start in the first 60 % of the horizon, heal by 95 % of it.
        let at_ps = rng.range_u64(h / 50, h * 3 / 5);
        let clear_ps = (at_ps + rng.range_u64(h / 100, h / 5)).min(h * 19 / 20);
        let at = SimTime(at_ps);
        let clear = SimTime(clear_ps);
        match rng.below(4) {
            0 => {
                let c = rng.below(n_cables as u64) as u32;
                let (ab, ba) = (
                    xpass_net::ids::DLinkId(2 * c),
                    xpass_net::ids::DLinkId(2 * c + 1),
                );
                plan = if rng.chance(0.5) {
                    // Hard port reset: both backlogs flushed.
                    plan.link_down_flush(at, ab).link_down_flush(at, ba)
                } else {
                    // Lossless pause: backlogs freeze until link-up.
                    plan.cable_down(at, ab, ba)
                };
                plan = plan.cable_up(clear, ab, ba);
            }
            1 => {
                let dl = xpass_net::ids::DLinkId(rng.below(n_dlinks as u64) as u32);
                let data = intensity * rng.f64() * 0.5;
                let credit = intensity * rng.f64() * 0.9;
                plan = plan
                    .set_loss(at, dl, data, credit)
                    .set_loss(clear, dl, 0.0, 0.0);
            }
            2 => {
                let dl = xpass_net::ids::DLinkId(rng.below(n_dlinks as u64) as u32);
                let prob = intensity * rng.f64() * 0.3;
                plan = plan.set_corrupt(at, dl, prob).set_corrupt(clear, dl, 0.0);
            }
            _ => {
                let host = HostId(rng.below(n_hosts as u64) as u32);
                plan = plan.host_pause(at, host).host_resume(clear, host);
            }
        }
    }
    plan
}

/// A schedule is *clean* when it contains no `LinkDown`: those are the only
/// generated faults that legitimately break the queue-bound / zero-loss
/// claims (frozen ports accumulate arrivals without draining; flushes drop
/// data by design). Loss, corruption, and host pauses only ever *remove*
/// traffic from the credit loop, so the paper's invariants must survive
/// them.
pub fn is_clean(plan: &FaultPlan) -> bool {
    !plan
        .events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
}

/// Chaos-sweep configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Derived seeds to sweep.
    pub n_seeds: usize,
    /// Sender/receiver pairs across the dumbbell bottleneck.
    pub n_pairs: usize,
    /// Link speed everywhere.
    pub speed_bps: u64,
    /// Fault-schedule horizon: all faults heal before this.
    pub horizon: Dur,
    /// Hard completion cap per run (liveness deadline).
    pub cap: Dur,
    /// Chaos intensity in `[0, 1]`.
    pub intensity: f64,
    /// Application bytes per flow.
    pub flow_bytes: u64,
    /// Watchdog: total event budget per run.
    pub max_events: u64,
    /// Watchdog: same-instant event budget per run (livelock detector).
    pub max_events_per_instant: u64,
    /// Worker threads for the inner per-seed fan-out.
    pub jobs: usize,
    /// Base seed; per-run seeds are derived SplitMix-style.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n_seeds: 64,
            n_pairs: 2,
            speed_bps: 10_000_000_000,
            horizon: Dur::ms(8),
            cap: Dur::ms(400),
            intensity: 0.7,
            // ≈ 6.4 ms of bottleneck traffic across the pairs, so flows
            // span the fault window instead of finishing before it.
            flow_bytes: 4_000_000,
            max_events: 50_000_000,
            max_events_per_instant: 1_000_000,
            jobs: 4,
            seed: 77,
        }
    }
}

/// Derive the k-th sweep seed from the base seed (SplitMix increment keeps
/// neighbouring runs decorrelated).
fn derive_seed(base: u64, k: usize) -> u64 {
    base.wrapping_add((k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Table-1 bound for the dumbbell's worst switch-egress port, from the same
/// Eq-1 machinery as the fat-tree experiments: the bottleneck egress
/// aggregates `n_pairs` host loops (ToR-from-below class), the far-side
/// host ports are the from-above class.
fn dumbbell_bound(n_pairs: usize, speed_bps: u64, prop: Dur, cfg: &NetConfig) -> u64 {
    let link = LinkClass { speed_bps, prop };
    let topo = HierTopo {
        name: "chaos dumbbell".to_string(),
        host_link: link,
        tor_agg: link,
        agg_core: link,
        tor_down_ports: n_pairs,
        tor_up_ports: 1,
    };
    let p = NetCalcParams {
        credit_queue: cfg.credit_queue_pkts,
        dhost_min: cfg.host_delay.min,
        dhost_max: cfg.host_delay.max,
        switch_latency: Dur::ZERO,
    };
    let b = buffer_bounds(&topo, &p);
    b.tor_down.buffer_bytes.max(b.tor_up.buffer_bytes)
}

/// Outcome of one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct SeedReport {
    /// The derived run seed.
    pub seed: u64,
    /// No `LinkDown` in the schedule (queue/loss invariants asserted).
    pub clean: bool,
    /// Fault events applied.
    pub faults_injected: u64,
    /// Conservation ledger balanced at teardown.
    pub balanced: bool,
    /// Signed packet imbalance (0 when balanced).
    pub imbalance_pkts: i64,
    /// Switch-egress enqueues above the Table-1 bound.
    pub queue_violations: u64,
    /// Switch-egress data tail-drops.
    pub loss_violations: u64,
    /// Flows that finished.
    pub completed: usize,
    /// Flows whose endpoints gave up.
    pub aborted: usize,
    /// Flows still live (or stalled) at the cap — liveness failures.
    pub unfinished: usize,
    /// Watchdog trip reason, when the run was aborted as stuck.
    pub watchdog: Option<&'static str>,
    /// Packets lost to faults (wire losses, flushes, dead ends).
    pub pkts_lost_to_faults: u64,
    /// Packets CRC-dropped by injected corruption.
    pub pkts_corrupted: u64,
}

impl SeedReport {
    /// Did this run hold its full assertion set?
    pub fn ok(&self) -> bool {
        let invariants_ok =
            !self.clean || (self.queue_violations == 0 && self.loss_violations == 0);
        self.balanced && self.unfinished == 0 && self.watchdog.is_none() && invariants_ok
    }

    fn to_json(&self) -> Json {
        Json::obj()
            // Hex string: derived seeds use the full u64 range, which JSON
            // numbers (exact only to 2^53) cannot hold.
            .with("seed", Json::str(format!("{:#x}", self.seed)))
            .with("clean", Json::Bool(self.clean))
            .with("faults_injected", Json::num_u64(self.faults_injected))
            .with("balanced", Json::Bool(self.balanced))
            .with("imbalance_pkts", Json::Num(self.imbalance_pkts as f64))
            .with("queue_violations", Json::num_u64(self.queue_violations))
            .with("loss_violations", Json::num_u64(self.loss_violations))
            .with("completed", Json::num_u64(self.completed as u64))
            .with("aborted", Json::num_u64(self.aborted as u64))
            .with("unfinished", Json::num_u64(self.unfinished as u64))
            .with(
                "watchdog",
                match self.watchdog {
                    Some(r) => Json::str(r),
                    None => Json::Null,
                },
            )
            .with(
                "pkts_lost_to_faults",
                Json::num_u64(self.pkts_lost_to_faults),
            )
            .with("pkts_corrupted", Json::num_u64(self.pkts_corrupted))
            .with("ok", Json::Bool(self.ok()))
    }
}

/// Run one seed of the sweep.
fn run_seed(cfg: &Config, k: usize) -> SeedReport {
    let seed = derive_seed(cfg.seed, k);
    let prop = Dur::us(1);
    let topo = Topology::dumbbell(cfg.n_pairs, cfg.speed_bps, prop);
    let plan = generate(
        &topo,
        cfg.horizon,
        &ChaosSpec {
            seed,
            intensity: cfg.intensity,
        },
    );
    let clean = is_clean(&plan);
    let net_cfg = NetConfig::expresspass().with_seed(seed);
    let bound = dumbbell_bound(cfg.n_pairs, cfg.speed_bps, prop, &net_cfg);
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    net.install_ledger();
    net.install_watchdog(WatchdogSpec {
        max_events: Some(cfg.max_events),
        // Never arm a wall budget here: a trip would depend on machine
        // speed and break the byte-identical report guarantee.
        max_wall: None,
        max_events_per_instant: Some(cfg.max_events_per_instant),
    });
    net.install_invariants(InvariantSpec {
        data_queue_bound_bytes: Some(bound),
        zero_data_loss: true,
    });
    for i in 0..cfg.n_pairs {
        net.add_flow(
            HostId(i as u32),
            HostId((cfg.n_pairs + i) as u32),
            cfg.flow_bytes,
            SimTime::ZERO,
        );
    }
    net.install_fault_plan(plan);
    net.set_phase("chaos");
    net.run_until_done(SimTime::ZERO + cfg.cap);
    let health = net.health_report();
    let ledger = health.ledger.clone().expect("ledger installed");
    let records = net.flow_records();
    let terminated = records
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                Some(FlowOutcome::Completed) | Some(FlowOutcome::Aborted)
            )
        })
        .count();
    SeedReport {
        seed,
        clean,
        faults_injected: net.counters().faults_injected,
        balanced: ledger.balanced(),
        imbalance_pkts: ledger.imbalance_pkts(),
        queue_violations: health.queue_violations,
        loss_violations: health.loss_violations,
        completed: net.completed_count(),
        aborted: net.aborted_count(),
        unfinished: records.len() - terminated,
        watchdog: net.watchdog_report().map(|r| r.reason.name()),
        pkts_lost_to_faults: net.counters().pkts_lost_to_faults,
        pkts_corrupted: net.counters().pkts_corrupted,
    }
}

/// The whole sweep's outcome.
#[derive(Clone, Debug)]
pub struct ChaosSweep {
    /// Per-seed reports, in seed-index order.
    pub reports: Vec<SeedReport>,
    /// Seeds whose schedule was clean (no `LinkDown`).
    pub clean_seeds: usize,
    /// Seeds that failed their assertion set.
    pub violations: usize,
}

/// Run the sweep. The inner fan-out inherits the caller's thread-scoped
/// scheduler kind and merges in input order, so the report is byte-stable
/// for any scheduler/job configuration.
pub fn run(cfg: &Config) -> ChaosSweep {
    let scheduler = xpass_sim::event::thread_scheduler();
    let reports = parallel::run_indexed((0..cfg.n_seeds).collect(), cfg.jobs, scheduler, |_, k| {
        run_seed(cfg, k)
    });
    let clean_seeds = reports.iter().filter(|r| r.clean).count();
    let violations = reports.iter().filter(|r| !r.ok()).count();
    ChaosSweep {
        reports,
        clean_seeds,
        violations,
    }
}

impl ChaosSweep {
    /// All seeds held their assertion set.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    /// Structured payload: summary plus the full per-seed array.
    pub fn to_json(&self) -> Json {
        let seeds: Vec<Json> = self.reports.iter().map(SeedReport::to_json).collect();
        Json::obj()
            .with("n_seeds", Json::num_u64(self.reports.len() as u64))
            .with("clean_seeds", Json::num_u64(self.clean_seeds as u64))
            .with("violations", Json::num_u64(self.violations as u64))
            .with(
                "total_faults",
                Json::num_u64(self.reports.iter().map(|r| r.faults_injected).sum()),
            )
            .with("ok", Json::Bool(self.ok()))
            .with("seeds", Json::Arr(seeds))
    }
}

impl fmt::Display for ChaosSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chaos sweep: {} generated fault schedules ({} clean), {} violation(s)",
            self.reports.len(),
            self.clean_seeds,
            self.violations
        )?;
        let total_faults: u64 = self.reports.iter().map(|r| r.faults_injected).sum();
        let total_lost: u64 = self.reports.iter().map(|r| r.pkts_lost_to_faults).sum();
        let total_corrupt: u64 = self.reports.iter().map(|r| r.pkts_corrupted).sum();
        let completed: usize = self.reports.iter().map(|r| r.completed).sum();
        let aborted: usize = self.reports.iter().map(|r| r.aborted).sum();
        let unfinished: usize = self.reports.iter().map(|r| r.unfinished).sum();
        let unbalanced = self.reports.iter().filter(|r| !r.balanced).count();
        let tripped = self.reports.iter().filter(|r| r.watchdog.is_some()).count();
        let rows = vec![
            vec![
                "all seeds".into(),
                format!("{total_faults} faults"),
                format!("{unbalanced} unbalanced"),
                format!("{tripped} watchdog trips"),
                format!("{completed} completed / {aborted} aborted / {unfinished} hung"),
            ],
            vec![
                "fault losses".into(),
                format!("{total_lost} lost"),
                format!("{total_corrupt} corrupted"),
                "-".into(),
                "-".into(),
            ],
        ];
        write!(
            f,
            "{}",
            text_table(
                &["Scope", "Faults", "Conservation", "Watchdog", "Liveness"],
                &rows
            )
        )?;
        // Worst offenders, if any.
        for r in self.reports.iter().filter(|r| !r.ok()).take(5) {
            writeln!(
                f,
                "VIOLATION seed {}: balanced={} queue={} loss={} unfinished={} watchdog={:?}",
                r.seed, r.balanced, r.queue_violations, r.loss_violations, r.unfinished, r.watchdog
            )?;
        }
        Ok(())
    }
}

/// Registry adapter: drives the chaos sweep through the
/// [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "chaos_sweep"
    }
    fn describe(&self) -> &str {
        "chaos: random fault schedules vs conservation + liveness"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Config {
        Config {
            n_seeds: 8,
            ..Config::default()
        }
    }

    #[test]
    fn generated_schedules_are_deterministic_and_heal() {
        let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
        let spec = ChaosSpec {
            seed: 42,
            intensity: 0.8,
        };
        let a = generate(&topo, Dur::ms(10), &spec);
        let b = generate(&topo, Dur::ms(10), &spec);
        assert_eq!(a.events, b.events, "same seed, same schedule");
        assert!(!a.is_empty());
        // Every disturbance heals strictly inside the horizon.
        let horizon = SimTime::ZERO + Dur::ms(10);
        let mut down = std::collections::HashSet::new();
        let mut paused = std::collections::HashSet::new();
        let mut events = a.events.clone();
        events.sort_by_key(|e| e.at);
        for e in &events {
            assert!(e.at < horizon, "fault at {:?} past horizon", e.at);
            match e.kind {
                FaultKind::LinkDown { dlink, .. } => {
                    down.insert(dlink);
                }
                FaultKind::LinkUp { dlink } => {
                    down.remove(&dlink);
                }
                FaultKind::HostPause { host } => {
                    paused.insert(host);
                }
                FaultKind::HostResume { host } => {
                    paused.remove(&host);
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "links left down: {down:?}");
        assert!(paused.is_empty(), "hosts left paused: {paused:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
        let a = generate(
            &topo,
            Dur::ms(10),
            &ChaosSpec {
                seed: 1,
                intensity: 0.8,
            },
        );
        let b = generate(
            &topo,
            Dur::ms(10),
            &ChaosSpec {
                seed: 2,
                intensity: 0.8,
            },
        );
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn zero_intensity_still_generates_one_mild_episode() {
        let topo = Topology::dumbbell(2, 10_000_000_000, Dur::us(1));
        let p = generate(
            &topo,
            Dur::ms(10),
            &ChaosSpec {
                seed: 9,
                intensity: 0.0,
            },
        );
        assert!(!p.is_empty());
    }

    #[test]
    fn sweep_holds_all_invariants() {
        let r = run(&quick_cfg());
        assert_eq!(r.reports.len(), 8);
        for s in &r.reports {
            assert!(
                s.ok(),
                "seed {} failed: balanced={} queue={} loss={} unfinished={} watchdog={:?}",
                s.seed,
                s.balanced,
                s.queue_violations,
                s.loss_violations,
                s.unfinished,
                s.watchdog
            );
            assert!(s.faults_injected > 0, "schedule was empty");
        }
        assert!(r.ok());
    }

    #[test]
    fn sweep_report_is_job_count_invariant() {
        let mut cfg = quick_cfg();
        cfg.jobs = 1;
        let serial = run(&cfg);
        cfg.jobs = 4;
        let par = run(&cfg);
        assert_eq!(serial.reports, par.reports);
        assert_eq!(
            serial.to_json().to_string(),
            par.to_json().to_string(),
            "sweep JSON must be byte-identical across job counts"
        );
    }
}
