//! Deterministic parallel experiment execution.
//!
//! A tiny scoped-thread work pool: each job owns one input, runs the
//! supplied closure on its own worker thread (one simulation engine per
//! experiment/seed — engines are single-threaded and share nothing), and
//! writes its result into the slot matching the input's index. Results are
//! therefore merged in **input order**, never completion order, so output
//! is byte-identical for any `jobs` setting — thread scheduling can change
//! only wall-clock time.
//!
//! Scheduler choice ([`SchedulerKind`]) is thread-scoped state in
//! `xpass-sim`; the pool stamps the requested kind onto every worker (and
//! onto the calling thread for the inline `jobs <= 1` path) so a run under
//! `--scheduler heap --jobs 8` really does use the heap everywhere.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use xpass_sim::event::{set_thread_scheduler, SchedulerKind};

/// Run `f(index, input)` for every input and return the results in input
/// order. `jobs <= 1` runs inline (no threads spawned); otherwise up to
/// `jobs` scoped worker threads pull inputs from a shared queue.
pub fn run_indexed<T, R, F>(inputs: Vec<T>, jobs: usize, scheduler: SchedulerKind, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = inputs.len();
    if jobs <= 1 || n <= 1 {
        set_thread_scheduler(scheduler);
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new(inputs.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                set_thread_scheduler(scheduler);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = slots.lock().unwrap()[i].take().expect("job taken twice");
                    let r = f(i, input);
                    results.lock().unwrap()[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker died before finishing its job"))
        .collect()
}

/// Outcome of one isolated job run by [`run_isolated`].
#[derive(Debug)]
pub struct JobResult<R> {
    /// The job's return value, or the panic message when it unwound.
    pub result: Result<R, String>,
    /// Wall-clock time the job took.
    pub wall: Duration,
    /// True when the job finished but blew through the wall-clock budget.
    /// Budgets are post-hoc — a scoped thread cannot be killed, so an
    /// over-budget job still runs to completion (true in-run hang
    /// protection is the simulator watchdog); the flag lets the driver
    /// report it and fail the batch.
    pub over_budget: bool,
}

impl<R> JobResult<R> {
    /// Did this job finish normally and within budget?
    pub fn ok(&self) -> bool {
        self.result.is_ok() && !self.over_budget
    }
}

/// Like [`run_indexed`], but each job is isolated: a panicking job is
/// caught and reported as `Err(message)` in its slot instead of tearing
/// down the whole batch, and each job's wall-clock time is measured
/// against an optional `budget`. Results remain in input order.
pub fn run_isolated<T, R, F>(
    inputs: Vec<T>,
    jobs: usize,
    scheduler: SchedulerKind,
    budget: Option<Duration>,
    f: F,
) -> Vec<JobResult<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_indexed(inputs, jobs, scheduler, |i, x| {
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| f(i, x))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            }
        });
        let wall = start.elapsed();
        JobResult {
            result,
            wall,
            over_budget: budget.is_some_and(|b| wall > b),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_job_count() {
        let inputs: Vec<u64> = (0..37).collect();
        let serial = run_indexed(inputs.clone(), 1, SchedulerKind::Calendar, |i, x| {
            (i, x * x)
        });
        for jobs in [2, 4, 16, 64] {
            let par = run_indexed(inputs.clone(), jobs, SchedulerKind::Calendar, |i, x| {
                (i, x * x)
            });
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn workers_inherit_the_requested_scheduler() {
        use xpass_sim::event::{thread_scheduler, EventQueue};
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let got = run_indexed(vec![(); 8], 4, kind, |_, _| {
                assert_eq!(thread_scheduler(), kind);
                EventQueue::<()>::new().scheduler()
            });
            assert!(got.iter().all(|&k| k == kind));
        }
    }

    #[test]
    fn more_jobs_than_inputs_is_fine() {
        let r = run_indexed(vec![1, 2], 16, SchedulerKind::Calendar, |_, x| x + 1);
        assert_eq!(r, vec![2, 3]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let r: Vec<u32> = run_indexed(Vec::<u32>::new(), 4, SchedulerKind::Calendar, |_, x| x);
        assert!(r.is_empty());
    }

    #[test]
    fn a_panicking_job_does_not_sink_the_batch() {
        // Quiet the default panic hook: the unwinds here are deliberate.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = run_isolated(vec![1, 2, 3], 4, SchedulerKind::Calendar, None, |_, x| {
            if x == 2 {
                panic!("boom on {x}");
            }
            x * 10
        });
        std::panic::set_hook(prev);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].result.as_ref().unwrap(), &10);
        assert_eq!(r[1].result.as_ref().unwrap_err(), "boom on 2");
        assert!(!r[1].ok());
        assert_eq!(r[2].result.as_ref().unwrap(), &30);
        assert!(r[0].ok() && r[2].ok());
    }

    #[test]
    fn over_budget_jobs_are_flagged_but_complete() {
        let budget = Some(Duration::from_nanos(1));
        let r = run_isolated(vec![0u64; 2], 1, SchedulerKind::Calendar, budget, |_, _| {
            // Any real work exceeds a 1 ns budget.
            std::thread::sleep(Duration::from_millis(2));
            7u64
        });
        assert!(r.iter().all(|j| j.result.is_ok()), "jobs still complete");
        assert!(r.iter().all(|j| j.over_budget && !j.ok()));
    }

    #[test]
    fn in_budget_jobs_are_ok() {
        let budget = Some(Duration::from_secs(3600));
        let r = run_isolated(vec![1u32], 1, SchedulerKind::Calendar, budget, |_, x| x);
        assert!(r[0].ok());
        assert!(r[0].wall <= Duration::from_secs(3600));
    }
}
