//! Deterministic parallel experiment execution.
//!
//! A tiny scoped-thread work pool: each job owns one input, runs the
//! supplied closure on its own worker thread (one simulation engine per
//! experiment/seed — engines are single-threaded and share nothing), and
//! writes its result into the slot matching the input's index. Results are
//! therefore merged in **input order**, never completion order, so output
//! is byte-identical for any `jobs` setting — thread scheduling can change
//! only wall-clock time.
//!
//! Scheduler choice ([`SchedulerKind`]) is thread-scoped state in
//! `xpass-sim`; the pool stamps the requested kind onto every worker (and
//! onto the calling thread for the inline `jobs <= 1` path) so a run under
//! `--scheduler heap --jobs 8` really does use the heap everywhere.
//!
//! The checkpoint ([`xpass_sim::checkpoint`]) and live-metrics
//! ([`xpass_sim::metrics`]) runtimes are thread-scoped the same way: the
//! pool captures the caller's contexts and installs the per-job child
//! scope (`child_of(parent, i)`) around every job, on whichever thread
//! happens to run it — so a `--jobs N` batch publishes per-job series and
//! checkpoints under per-job directories. With no context installed — the
//! default — this costs nothing. [`run_isolated`] additionally
//! auto-resumes a panicked job once from its latest checkpoint.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use xpass_sim::checkpoint;
use xpass_sim::event::{set_thread_scheduler, SchedulerKind};
use xpass_sim::metrics;

/// The caller's thread-scoped contexts, captured once per batch and
/// re-installed (as per-job child scopes) around every job.
struct ParentScopes {
    ckpt: Option<checkpoint::Ctx>,
    metrics: Option<metrics::Ctx>,
}

impl ParentScopes {
    fn capture() -> ParentScopes {
        ParentScopes {
            ckpt: checkpoint::current(),
            metrics: metrics::current(),
        }
    }
}

/// Run `job` with the checkpoint and metrics scopes for fan-out index `i`
/// installed, restoring the thread's previous contexts afterwards. No
/// context on the caller → no context in the job (the zero-cost default).
fn with_job_scope<R>(parent: &ParentScopes, i: usize, job: impl FnOnce() -> R) -> R {
    let prev_ckpt = parent
        .ckpt
        .as_ref()
        .map(|p| checkpoint::swap(Some(checkpoint::child_of(p, i as u64))));
    let prev_metrics = parent
        .metrics
        .as_ref()
        .map(|p| metrics::swap(Some(metrics::child_of(p, i as u64))));
    let r = job();
    if let Some(prev) = prev_ckpt {
        checkpoint::swap(prev);
    }
    if let Some(prev) = prev_metrics {
        metrics::swap(prev);
    }
    r
}

/// Run `f(index, input)` for every input and return the results in input
/// order. `jobs <= 1` runs inline (no threads spawned); otherwise up to
/// `jobs` scoped worker threads pull inputs from a shared queue.
pub fn run_indexed<T, R, F>(inputs: Vec<T>, jobs: usize, scheduler: SchedulerKind, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = inputs.len();
    let parent = ParentScopes::capture();
    if jobs <= 1 || n <= 1 {
        set_thread_scheduler(scheduler);
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, x)| with_job_scope(&parent, i, || f(i, x)))
            .collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new(inputs.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                set_thread_scheduler(scheduler);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = slots.lock().unwrap()[i].take().expect("job taken twice");
                    let r = with_job_scope(&parent, i, || f(i, input));
                    results.lock().unwrap()[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker died before finishing its job"))
        .collect()
}

/// Outcome of one isolated job run by [`run_isolated`].
#[derive(Debug)]
pub struct JobResult<R> {
    /// The job's return value, or the panic message when it unwound.
    pub result: Result<R, String>,
    /// Wall-clock time the job took.
    pub wall: Duration,
    /// True when the job finished but blew through the wall-clock budget.
    /// Budgets are post-hoc — a scoped thread cannot be killed, so an
    /// over-budget job still runs to completion (true in-run hang
    /// protection is the simulator watchdog); the flag lets the driver
    /// report it and fail the batch.
    pub over_budget: bool,
    /// Newest checkpoint written in this job's scope, when checkpointing
    /// was on. Reported in the failure summary so a killed batch can be
    /// resumed by hand, and used by the in-process auto-resume.
    pub last_checkpoint: Option<PathBuf>,
    /// True when the job panicked and was re-run from its latest
    /// checkpoint (whether or not the re-run then succeeded).
    pub resumed: bool,
}

impl<R> JobResult<R> {
    /// Did this job finish normally and within budget?
    pub fn ok(&self) -> bool {
        self.result.is_ok() && !self.over_budget
    }
}

/// One guarded attempt at a job: the panic message becomes `Err`.
fn attempt<T, R>(f: &(impl Fn(usize, T) -> R + Sync), i: usize, x: T) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(i, x))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

/// Like [`run_indexed`], but each job is isolated: a panicking job is
/// caught and reported as `Err(message)` in its slot instead of tearing
/// down the whole batch, and each job's wall-clock time is measured
/// against an optional `budget`. Results remain in input order.
///
/// When checkpointing is on and a job panics after writing at least one
/// snapshot, the job is re-run **once** with that snapshot armed as a
/// resume image: the re-run replays the experiment's deterministic setup
/// and overlays the saved state mid-flight, so a transient crash costs
/// only the work since the last checkpoint. The original panic message is
/// kept if the re-run fails too.
pub fn run_isolated<T, R, F>(
    inputs: Vec<T>,
    jobs: usize,
    scheduler: SchedulerKind,
    budget: Option<Duration>,
    f: F,
) -> Vec<JobResult<R>>
where
    T: Send + Clone,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_indexed(inputs, jobs, scheduler, |i, x| {
        let start = Instant::now();
        let mut result = attempt(&f, i, x.clone());
        let mut resumed = false;
        if result.is_err() {
            if let Some(img) =
                checkpoint::latest_checkpoint().and_then(|p| checkpoint::load_image(&p).ok())
            {
                // Fresh scope state (the net-index counters restart at 0,
                // as in the original attempt), then arm the image so the
                // network it targets restores at the recorded run call.
                checkpoint::swap(checkpoint::current());
                metrics::swap(metrics::current());
                checkpoint::arm_resume(img);
                resumed = true;
                result = attempt(&f, i, x).or(result);
            }
        }
        let wall = start.elapsed();
        JobResult {
            result,
            wall,
            over_budget: budget.is_some_and(|b| wall > b),
            last_checkpoint: checkpoint::latest_checkpoint(),
            resumed,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_job_count() {
        let inputs: Vec<u64> = (0..37).collect();
        let serial = run_indexed(inputs.clone(), 1, SchedulerKind::Calendar, |i, x| {
            (i, x * x)
        });
        for jobs in [2, 4, 16, 64] {
            let par = run_indexed(inputs.clone(), jobs, SchedulerKind::Calendar, |i, x| {
                (i, x * x)
            });
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn workers_inherit_the_requested_scheduler() {
        use xpass_sim::event::{thread_scheduler, EventQueue};
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let got = run_indexed(vec![(); 8], 4, kind, |_, _| {
                assert_eq!(thread_scheduler(), kind);
                EventQueue::<()>::new().scheduler()
            });
            assert!(got.iter().all(|&k| k == kind));
        }
    }

    #[test]
    fn more_jobs_than_inputs_is_fine() {
        let r = run_indexed(vec![1, 2], 16, SchedulerKind::Calendar, |_, x| x + 1);
        assert_eq!(r, vec![2, 3]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let r: Vec<u32> = run_indexed(Vec::<u32>::new(), 4, SchedulerKind::Calendar, |_, x| x);
        assert!(r.is_empty());
    }

    #[test]
    fn a_panicking_job_does_not_sink_the_batch() {
        // Quiet the default panic hook: the unwinds here are deliberate.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = run_isolated(vec![1, 2, 3], 4, SchedulerKind::Calendar, None, |_, x| {
            if x == 2 {
                panic!("boom on {x}");
            }
            x * 10
        });
        std::panic::set_hook(prev);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].result.as_ref().unwrap(), &10);
        assert_eq!(r[1].result.as_ref().unwrap_err(), "boom on 2");
        assert!(!r[1].ok());
        assert_eq!(r[2].result.as_ref().unwrap(), &30);
        assert!(r[0].ok() && r[2].ok());
    }

    #[test]
    fn over_budget_jobs_are_flagged_but_complete() {
        let budget = Some(Duration::from_nanos(1));
        let r = run_isolated(vec![0u64; 2], 1, SchedulerKind::Calendar, budget, |_, _| {
            // Any real work exceeds a 1 ns budget.
            std::thread::sleep(Duration::from_millis(2));
            7u64
        });
        assert!(r.iter().all(|j| j.result.is_ok()), "jobs still complete");
        assert!(r.iter().all(|j| j.over_budget && !j.ok()));
    }

    #[test]
    fn in_budget_jobs_are_ok() {
        let budget = Some(Duration::from_secs(3600));
        let r = run_isolated(vec![1u32], 1, SchedulerKind::Calendar, budget, |_, x| x);
        assert!(r[0].ok());
        assert!(r[0].wall <= Duration::from_secs(3600));
        assert!(r[0].last_checkpoint.is_none(), "no checkpointing was on");
        assert!(!r[0].resumed);
    }

    #[test]
    fn workers_inherit_scoped_checkpoint_contexts() {
        use xpass_sim::checkpoint::CheckpointConfig;
        use xpass_sim::time::{Dur, SimTime};
        let dir = std::env::temp_dir().join(format!("xpass-par-scope-{}", std::process::id()));
        checkpoint::install(
            Some(CheckpointConfig {
                every: Dur::ms(1),
                dir: dir.clone(),
                keep: 2,
            }),
            None,
        );
        // 3 jobs on 3 workers: each must see its own scope, not the
        // caller's and not another job's.
        run_indexed(vec![(); 3], 3, SchedulerKind::Calendar, |_, _| {
            let mut hook = checkpoint::register_network().expect("scope on worker");
            hook.on_run_call();
            hook.write(SimTime(1), b"s");
        });
        for i in 0..3 {
            let d = dir.join(format!("scope-{i}")).join("net0");
            assert!(d.is_dir(), "missing per-job snapshot dir {}", d.display());
        }
        checkpoint::clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicked_job_auto_resumes_from_its_checkpoint() {
        use xpass_sim::checkpoint::CheckpointConfig;
        use xpass_sim::time::{Dur, SimTime};
        let dir = std::env::temp_dir().join(format!("xpass-par-resume-{}", std::process::id()));
        checkpoint::install(
            Some(CheckpointConfig {
                every: Dur::ms(1),
                dir: dir.clone(),
                keep: 2,
            }),
            None,
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // First attempt: checkpoint mid-"run", then die. The harness must
        // re-run the job with the image armed, and the retry's first run
        // call then sees the saved state instead of starting over.
        let r = run_isolated(vec![()], 1, SchedulerKind::Calendar, None, |_, _| {
            let mut hook = checkpoint::register_network().expect("hook");
            match hook.on_run_call() {
                Some(state) => String::from_utf8(state).unwrap(),
                None => {
                    hook.write(SimTime(1), b"mid-run state");
                    panic!("crash after the checkpoint");
                }
            }
        });
        std::panic::set_hook(prev);
        assert_eq!(r[0].result.as_ref().unwrap(), "mid-run state");
        assert!(r[0].resumed, "retry must go through the resume path");
        assert!(r[0].last_checkpoint.is_some());
        checkpoint::clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_job_without_checkpoints_fails_plainly() {
        checkpoint::clear();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = run_isolated(vec![()], 1, SchedulerKind::Calendar, None, |_, _| {
            panic!("no safety net");
        });
        std::panic::set_hook(prev);
        assert_eq!(r[0].result.as_ref().unwrap_err(), "no safety net");
        assert!(!r[0].resumed);
        assert!(r[0].last_checkpoint.is_none());
    }
}
