//! Deterministic parallel experiment execution.
//!
//! A tiny scoped-thread work pool: each job owns one input, runs the
//! supplied closure on its own worker thread (one simulation engine per
//! experiment/seed — engines are single-threaded and share nothing), and
//! writes its result into the slot matching the input's index. Results are
//! therefore merged in **input order**, never completion order, so output
//! is byte-identical for any `jobs` setting — thread scheduling can change
//! only wall-clock time.
//!
//! Scheduler choice ([`SchedulerKind`]) is thread-scoped state in
//! `xpass-sim`; the pool stamps the requested kind onto every worker (and
//! onto the calling thread for the inline `jobs <= 1` path) so a run under
//! `--scheduler heap --jobs 8` really does use the heap everywhere.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xpass_sim::event::{set_thread_scheduler, SchedulerKind};

/// Run `f(index, input)` for every input and return the results in input
/// order. `jobs <= 1` runs inline (no threads spawned); otherwise up to
/// `jobs` scoped worker threads pull inputs from a shared queue.
pub fn run_indexed<T, R, F>(inputs: Vec<T>, jobs: usize, scheduler: SchedulerKind, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = inputs.len();
    if jobs <= 1 || n <= 1 {
        set_thread_scheduler(scheduler);
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new(inputs.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                set_thread_scheduler(scheduler);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = slots.lock().unwrap()[i].take().expect("job taken twice");
                    let r = f(i, input);
                    results.lock().unwrap()[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker died before finishing its job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_job_count() {
        let inputs: Vec<u64> = (0..37).collect();
        let serial = run_indexed(inputs.clone(), 1, SchedulerKind::Calendar, |i, x| {
            (i, x * x)
        });
        for jobs in [2, 4, 16, 64] {
            let par = run_indexed(inputs.clone(), jobs, SchedulerKind::Calendar, |i, x| {
                (i, x * x)
            });
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn workers_inherit_the_requested_scheduler() {
        use xpass_sim::event::{thread_scheduler, EventQueue};
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let got = run_indexed(vec![(); 8], 4, kind, |_, _| {
                assert_eq!(thread_scheduler(), kind);
                EventQueue::<()>::new().scheduler()
            });
            assert!(got.iter().all(|&k| k == kind));
        }
    }

    #[test]
    fn more_jobs_than_inputs_is_fine() {
        let r = run_indexed(vec![1, 2], 16, SchedulerKind::Calendar, |_, x| x + 1);
        assert_eq!(r, vec![2, 3]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let r: Vec<u32> = run_indexed(Vec::<u32>::new(), 4, SchedulerKind::Calendar, |_, x| x);
        assert!(r.is_empty());
    }
}
