//! Fig 13 — convergence behaviour: five flows arrive and depart over time
//! on one 10 G bottleneck; we record per-flow throughput and the bottleneck
//! queue. ExpressPass shows stable plateaus at each fair share and a
//! near-empty queue; DCTCP shows noisy shares and a standing queue.

use crate::harness::Scheme;
use std::fmt;
use xpass_net::ids::{FlowId, HostId, NodeId, SwitchId};
use xpass_net::topology::Topology;
use xpass_sim::stats::TimeSeries;
use xpass_sim::time::{Dur, SimTime};

/// Fig 13 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Link speed.
    pub link_bps: u64,
    /// Interval between flow arrivals (each flow also departs after
    /// `5 × stagger` — the testbed used 2 s steps; scaled default 2 ms).
    pub stagger: Dur,
    /// Throughput/queue sample interval.
    pub sample: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            link_bps: 10_000_000_000,
            stagger: Dur::ms(2),
            sample: Dur::us(100),
            seed: 37,
        }
    }
}

/// Fig 13 result for one scheme.
#[derive(Clone, Debug)]
pub struct Fig13 {
    /// Scheme name.
    pub scheme: &'static str,
    /// Per-flow throughput series (Gbps).
    pub flows: Vec<TimeSeries>,
    /// Bottleneck queue series (bytes).
    pub queue: TimeSeries,
    /// Max bottleneck queue over the run (bytes).
    pub max_queue_bytes: u64,
    /// Mean aggregate throughput during the full-load phase (Gbps).
    pub full_load_gbps: f64,
}

/// Run the five-flow scenario for one scheme.
pub fn run(cfg: &Config, scheme: Scheme) -> Fig13 {
    let topo = Topology::dumbbell(5, cfg.link_bps, Dur::us(1));
    let mut net = scheme.build(topo, cfg.link_bps, cfg.seed);
    net.set_sample_interval(cfg.sample);
    let bottleneck = net
        .topo()
        .dlink_between(NodeId::Switch(SwitchId(0)), NodeId::Switch(SwitchId(1)))
        .unwrap();
    net.track_port(bottleneck);
    // Flow i arrives at i×stagger and carries enough bytes to outlive the
    // run; all five overlap in the middle.
    let horizon = cfg.stagger * 10;
    let bytes = (cfg.link_bps as f64 / 8.0 * horizon.as_secs_f64()) as u64;
    let mut ids: Vec<FlowId> = Vec::new();
    for i in 0..5u32 {
        let f = net.add_flow(
            HostId(i),
            HostId(5 + i),
            bytes / 3,
            SimTime::ZERO + cfg.stagger * i as u64,
        );
        net.track_flow(f);
        ids.push(f);
    }
    net.run_until(SimTime::ZERO + horizon);
    net.finish_stats();
    // Aggregate throughput while all five flows are active.
    let t0 = SimTime::ZERO + cfg.stagger * 4;
    let t1 = SimTime::ZERO + cfg.stagger * 5;
    let mut agg = 0.0;
    let mut n = 0usize;
    for &f in &ids {
        let s = net.flow_series(f).unwrap();
        let vals: Vec<f64> = s
            .samples
            .iter()
            .filter(|&&(t, _)| t >= t0 && t < t1)
            .map(|&(_, v)| v)
            .collect();
        if !vals.is_empty() {
            agg += vals.iter().sum::<f64>() / vals.len() as f64;
            n += 1;
        }
    }
    let _ = n;
    Fig13 {
        scheme: scheme.name(),
        flows: ids
            .iter()
            .map(|&f| net.flow_series(f).unwrap().clone())
            .collect(),
        queue: net.port_series(bottleneck).unwrap().clone(),
        max_queue_bytes: net.port(bottleneck).data.stats.max_bytes,
        full_load_gbps: agg,
    }
}

/// Run both schemes (ExpressPass, DCTCP) as the figure does.
pub fn run_both(cfg: &Config) -> (Fig13, Fig13) {
    (
        run(cfg, Scheme::XPass(expresspass::XPassConfig::aggressive())),
        run(cfg, Scheme::Dctcp),
    )
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 13 [{}]:", self.scheme)?;
        writeln!(
            f,
            "  aggregate @ full load: {:.2} Gbps; max queue: {:.1} KB",
            self.full_load_gbps,
            self.max_queue_bytes as f64 / 1e3
        )?;
        // Sparkline of the queue series.
        let max = self
            .queue
            .samples
            .iter()
            .map(|&(_, v)| v)
            .fold(1.0, f64::max);
        let line: String = self
            .queue
            .samples
            .iter()
            .step_by((self.queue.samples.len() / 60).max(1))
            .map(|&(_, v)| match (v / max * 4.0) as usize {
                0 => '_',
                1 => '.',
                2 => '-',
                3 => '=',
                _ => '#',
            })
            .collect();
        writeln!(f, "  queue trace: {line}")
    }
}

use xpass_sim::json::Json;

fn series_json(s: &TimeSeries) -> Json {
    Json::Arr(
        s.samples
            .iter()
            .map(|&(t, v)| {
                Json::obj()
                    .with("t", Json::Num(t.as_secs_f64()))
                    .with("v", Json::Num(v))
            })
            .collect(),
    )
}

impl Fig13 {
    /// Structured payload: per-flow throughput series, the queue series,
    /// and the headline numbers.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("scheme", Json::str(self.scheme))
            .with(
                "flows",
                Json::Arr(self.flows.iter().map(series_json).collect()),
            )
            .with("queue", series_json(&self.queue))
            .with("max_queue_bytes", Json::num_u64(self.max_queue_bytes))
            .with("full_load_gbps", Json::Num(self.full_load_gbps))
    }
}

/// Registry adapter: drives Fig 13 (both schemes) through the
/// [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig13"
    }
    fn describe(&self) -> &str {
        "five staggered flows trace"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let (a, b) = run_both(&self.0);
        crate::ExperimentOutput::new(
            format!("{a}\n{b}"),
            Json::obj().with("runs", Json::Arr(vec![a.to_json(), b.to_json()])),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xpass_stable_small_queue_high_utilization() {
        let r = run(
            &Config::default(),
            Scheme::XPass(expresspass::XPassConfig::aggressive()),
        );
        // Paper: max 18KB queue on the testbed; allow some slack.
        assert!(
            r.max_queue_bytes < 40_000,
            "max queue {} bytes",
            r.max_queue_bytes
        );
        // Aggregate throughput ≈ 94.8% × payload efficiency ≈ 9.0 Gbps.
        assert!(
            r.full_load_gbps > 7.5,
            "aggregate {:.2} Gbps",
            r.full_load_gbps
        );
    }

    #[test]
    fn dctcp_builds_much_larger_queue() {
        let cfg = Config::default();
        let (xp, dc) = run_both(&cfg);
        // Paper: 240.7KB vs 18KB max queue.
        assert!(
            dc.max_queue_bytes > 3 * xp.max_queue_bytes,
            "dctcp {} vs xpass {}",
            dc.max_queue_bytes,
            xp.max_queue_bytes
        );
        assert!(dc.full_load_gbps > 7.5);
    }

    #[test]
    fn renders() {
        let r = run(
            &Config::default(),
            Scheme::XPass(expresspass::XPassConfig::aggressive()),
        );
        assert!(r.to_string().contains("queue trace"));
    }
}
