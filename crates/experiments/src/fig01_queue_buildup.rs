//! Fig 1 — data queue length under partition/aggregate traffic, for (a)
//! the hypothetical ideal rate control, (b) DCTCP, and (c) the credit-based
//! scheme.
//!
//! A master continuously fans 200 B requests out to `fan_out` worker tasks
//! (multiple tasks per host when the fan-out exceeds the host count) and
//! each responds with 1000 B. Even with oracle-perfect per-flow rates, the
//! responses of *different* flows arrive in bursts, so the queue at the
//! master's ToR downlink grows with the fan-out — only credit scheduling
//! bounds it.
//!
//! The paper runs an 8-ary fat tree; the scaled default uses a 4-ary tree
//! and fan-outs up to 256 (`paper_scale()` restores 8-ary / 2048).

use crate::harness::{text_table, Scheme};
use std::fmt;
use xpass_net::ids::{DLinkId, HostId, NodeId};
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};
use xpass_workloads::{patterns::start_partition_aggregate, PartitionAggregate};

/// Fig 1 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Fat-tree arity (paper: 8).
    pub fat_tree_k: usize,
    /// Fan-outs to sweep (paper: 32–2048).
    pub fan_outs: Vec<usize>,
    /// Request/response rounds per run.
    pub rounds: usize,
    /// Link speed.
    pub link_bps: u64,
    /// Queue-depth sample interval.
    pub sample: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            fat_tree_k: 4,
            fan_outs: vec![32, 64, 128, 256],
            rounds: 5,
            link_bps: 10_000_000_000,
            sample: Dur::us(5),
            seed: 31,
        }
    }
}

impl Config {
    /// The paper's full-scale configuration (8-ary fat tree, fan-out 2048).
    pub fn paper_scale() -> Config {
        Config {
            fat_tree_k: 8,
            fan_outs: vec![32, 64, 128, 256, 512, 1024, 2048],
            rounds: 10,
            ..Config::default()
        }
    }
}

/// Queue statistics for one (scheme, fan-out) cell, in packets.
#[derive(Clone, Copy, Debug)]
pub struct QueuePoint {
    /// Fan-out.
    pub fan_out: usize,
    /// Max sampled queue (packets).
    pub max_pkts: f64,
    /// Median sampled queue (packets).
    pub p50_pkts: f64,
    /// 75th percentile (packets).
    pub p75_pkts: f64,
}

/// One scheme's series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme name.
    pub scheme: &'static str,
    /// Points per fan-out.
    pub points: Vec<QueuePoint>,
}

/// Fig 1 result.
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// Ideal, DCTCP, credit-based series.
    pub series: Vec<Series>,
}

fn master_downlink(net: &Network, master: HostId) -> DLinkId {
    let topo = net.topo();
    topo.dlinks
        .iter()
        .position(|l| l.to == NodeId::Host(master))
        .map(|i| DLinkId(i as u32))
        .expect("master downlink")
}

fn measure(cfg: &Config, scheme: Scheme, fan_out: usize) -> QueuePoint {
    let topo = Topology::fat_tree(cfg.fat_tree_k, cfg.link_bps, cfg.link_bps, Dur::us(1));
    let n_hosts = topo.n_hosts;
    // Huge queues so queue *growth* is observable rather than truncated by
    // drops (the paper's Fig 1 shows queues up to 10k packets).
    let mut big = scheme.net_config(cfg.link_bps).with_seed(cfg.seed);
    big.switch_queue_bytes = 64 << 20;
    let mut net = Network::new(topo, big, scheme.factory(cfg.link_bps));
    if matches!(scheme, Scheme::Ideal) {
        net.set_controller(Box::new(xpass_baselines::MaxMinOracle::new(0.95)));
    }
    let master = HostId(0);
    // Worker tasks over all other hosts, wrapping when fan_out > hosts.
    let workers: Vec<HostId> = (1..n_hosts).map(|h| HostId(h as u32)).collect();
    net.set_sample_interval(cfg.sample);
    let dl = master_downlink(&net, master);
    net.track_port(dl);
    let app = PartitionAggregate::new(master, workers, fan_out, cfg.rounds);
    start_partition_aggregate(&mut net, app);
    net.run_until_done(SimTime::ZERO + Dur::secs(5));
    let series = net.port_series(dl).expect("tracked port");
    let mut pkts = xpass_sim::stats::Percentiles::new();
    for &(_, bytes) in &series.samples {
        pkts.add(bytes / 1078.0); // 1000B payload + overhead ≈ 1078B wire
    }
    // The sampler may miss the instantaneous peak; include the port's own
    // max-bytes counter.
    let max_bytes = net.port(dl).data.stats.max_bytes as f64;
    QueuePoint {
        fan_out,
        max_pkts: (max_bytes / 1078.0).max(pkts.max()),
        p50_pkts: pkts.median(),
        p75_pkts: pkts.quantile(0.75),
    }
}

/// Run all three schemes over the fan-out sweep.
pub fn run(cfg: &Config) -> Fig1 {
    let schemes = [
        ("Ideal", Scheme::Ideal),
        ("DCTCP", Scheme::Dctcp),
        (
            "Credit",
            Scheme::XPass(expresspass::XPassConfig::aggressive()),
        ),
    ];
    Fig1 {
        series: schemes
            .into_iter()
            .map(|(name, s)| Series {
                scheme: name,
                points: cfg.fan_outs.iter().map(|&fo| measure(cfg, s, fo)).collect(),
            })
            .collect(),
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["scheme".to_string()];
        for p in &self.series[0].points {
            headers.push(format!("fo={}", p.fan_out));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|s| {
                let mut row = vec![s.scheme.to_string()];
                row.extend(s.points.iter().map(|p| format!("{:.0}", p.max_pkts)));
                row
            })
            .collect();
        writeln!(
            f,
            "Fig 1: max data queue (packets) at the master's downlink"
        )?;
        write!(f, "{}", text_table(&hdr_refs, &rows))
    }
}

use xpass_sim::json::Json;

impl Fig1 {
    /// Structured payload: every series with its per-fan-out queue stats.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .with("fan_out", Json::num_u64(p.fan_out as u64))
                            .with("max_pkts", Json::Num(p.max_pkts))
                            .with("p50_pkts", Json::Num(p.p50_pkts))
                            .with("p75_pkts", Json::Num(p.p75_pkts))
                    })
                    .collect();
                Json::obj()
                    .with("scheme", Json::str(s.scheme))
                    .with("points", Json::Arr(points))
            })
            .collect();
        Json::obj().with("series", Json::Arr(series))
    }
}

/// Registry adapter: drives Fig 1 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig01"
    }
    fn describe(&self) -> &str {
        "queue build-up under partition/aggregate"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn paper_scale_config(&mut self) -> bool {
        self.0 = Config::paper_scale();
        true
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            fan_outs: vec![16, 64],
            rounds: 3,
            ..Config::default()
        }
    }

    #[test]
    fn ideal_queue_grows_with_fanout_credit_stays_bounded() {
        let r = run(&quick());
        let ideal = &r.series[0].points;
        let credit = &r.series[2].points;
        // Ideal rate control: max queue grows roughly with fan-out.
        assert!(
            ideal[1].max_pkts > ideal[0].max_pkts * 1.5,
            "ideal: {} → {}",
            ideal[0].max_pkts,
            ideal[1].max_pkts
        );
        // Credit scheme: bounded — far below ideal at the large fan-out.
        assert!(
            credit[1].max_pkts < ideal[1].max_pkts / 3.0,
            "credit {} vs ideal {}",
            credit[1].max_pkts,
            ideal[1].max_pkts
        );
        // And it barely grows between the two fan-outs.
        assert!(
            credit[1].max_pkts < credit[0].max_pkts * 3.0 + 10.0,
            "credit growth {} → {}",
            credit[0].max_pkts,
            credit[1].max_pkts
        );
    }

    #[test]
    fn dctcp_worse_than_ideal() {
        let r = run(&quick());
        let ideal = &r.series[0].points;
        let dctcp = &r.series[1].points;
        // DCTCP's convergence lag adds queueing over the ideal.
        assert!(
            dctcp[1].max_pkts >= ideal[1].max_pkts * 0.8,
            "dctcp {} vs ideal {}",
            dctcp[1].max_pkts,
            ideal[1].max_pkts
        );
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 1"));
    }
}
