//! Fig 8 — the initial-rate trade-off: (a) convergence time of a new flow
//! joining an existing one, versus α = initial_rate/max_rate; (b) credits
//! wasted by a single-packet flow in an idle network (RTT 100 µs), versus α.
//!
//! Small α saves credits on mice but slows ramp-up: the paper picks
//! α = w_init = 1/16 as the sweet spot (§6.3).

use crate::harness::{convergence_time, text_table};
use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::ids::HostId;
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

/// Fig 8 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// α values (paper: 1, 1/2, …, 1/32).
    pub alphas: Vec<f64>,
    /// Link speed.
    pub link_bps: u64,
    /// Per-link propagation chosen so RTT ≈ 100 µs (paper's Fig 8b).
    pub prop: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            alphas: vec![1.0, 0.5, 0.25, 0.125, 1.0 / 16.0, 1.0 / 32.0],
            link_bps: 10_000_000_000,
            prop: Dur::us(16),
            seed: 11,
        }
    }
}

/// One α row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Initial-rate fraction.
    pub alpha: f64,
    /// Convergence time of a joining flow, in RTTs (None = not converged).
    pub convergence_rtts: Option<f64>,
    /// Credits wasted by a 1-packet flow.
    pub wasted_credits: u64,
}

/// Fig 8 result.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// Rows in α order.
    pub rows: Vec<Row>,
    /// The base RTT used to normalize (seconds).
    pub rtt: f64,
}

fn xpass_net(cfg: &Config, alpha: f64, seed: u64, n_pairs: usize) -> Network {
    let topo = Topology::dumbbell(n_pairs, cfg.link_bps, cfg.prop);
    let mut net_cfg = NetConfig::expresspass().with_seed(seed);
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let xp = XPassConfig::default().with_alpha_winit(alpha, 0.5);
    Network::new(topo, net_cfg, xpass_factory(xp))
}

/// Run both panels.
pub fn run(cfg: &Config) -> Fig8 {
    // Base RTT: 3 hops × 2 × (prop + MTU serialization) + host delays.
    let rtt = 6.0 * (cfg.prop.as_secs_f64() + 1538.0 * 8.0 / cfg.link_bps as f64) + 2e-6;
    let mut rows = Vec::new();
    for &alpha in &cfg.alphas {
        // (a) convergence of a joining flow.
        let mut net = xpass_net(cfg, alpha, cfg.seed, 2);
        net.set_sample_interval(Dur::from_secs_f64(rtt));
        let bytes = cfg.link_bps / 8;
        net.add_flow(HostId(0), HostId(2), bytes, SimTime::ZERO);
        let join = SimTime::ZERO + Dur::ms(4);
        let late = net.add_flow(HostId(1), HostId(3), bytes, join);
        net.track_flow(late);
        net.run_until(join + Dur::ms(20));
        let fair = cfg.link_bps as f64 / 2.0 * 0.9482 * (1460.0 / 1538.0) / 1e9;
        let conv =
            convergence_time(&net, late, join, fair, 0.30, 15).map(|d| d.as_secs_f64() / rtt);

        // (b) credit waste of a single-packet flow in an idle network.
        let mut net = xpass_net(cfg, alpha, cfg.seed + 1, 1);
        net.add_flow(HostId(0), HostId(1), 1000, SimTime::ZERO);
        net.run_until_done(SimTime::ZERO + Dur::ms(50));
        net.drain_until(net.now() + Dur::ms(5));
        let wasted = net.counters().credits_wasted;

        rows.push(Row {
            alpha,
            convergence_rtts: conv,
            wasted_credits: wasted,
        });
    }
    Fig8 { rows, rtt }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("1/{:.0}", 1.0 / r.alpha),
                    r.convergence_rtts
                        .map(|c| format!("{c:.1}"))
                        .unwrap_or_else(|| "-".into()),
                    r.wasted_credits.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "Fig 8: initial-rate trade-off (RTT = {:.0}us)",
            self.rtt * 1e6
        )?;
        write!(
            f,
            "{}",
            text_table(
                &["init/max rate", "convergence (RTTs)", "wasted credits"],
                &rows
            )
        )
    }
}

use xpass_sim::json::Json;

impl Fig8 {
    /// Structured payload: per-α convergence (in RTTs) and credit waste.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .with("alpha", Json::Num(r.alpha))
                    .with(
                        "convergence_rtts",
                        crate::experiment::json_opt_f64(r.convergence_rtts),
                    )
                    .with("wasted_credits", Json::num_u64(r.wasted_credits))
            })
            .collect();
        Json::obj()
            .with("rtt_s", Json::Num(self.rtt))
            .with("rows", Json::Arr(rows))
    }
}

/// Registry adapter: drives Fig 8 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig08"
    }
    fn describe(&self) -> &str {
        "initial-rate trade-off"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_shapes() {
        let cfg = Config {
            alphas: vec![0.5, 1.0 / 32.0],
            ..Config::default()
        };
        let r = run(&cfg);
        let hi = &r.rows[0];
        let lo = &r.rows[1];
        // Larger α wastes more credits on a 1-packet flow...
        assert!(
            hi.wasted_credits > lo.wasted_credits,
            "waste: α=1/2 {} vs α=1/32 {}",
            hi.wasted_credits,
            lo.wasted_credits
        );
        // ...but converges in fewer RTTs.
        let c_hi = hi.convergence_rtts.expect("α=1/2 converges");
        let c_lo = lo.convergence_rtts.expect("α=1/32 converges");
        assert!(c_hi < c_lo, "convergence: {c_hi} vs {c_lo}");
    }

    #[test]
    fn waste_magnitude_reasonable() {
        // Paper Fig 8b: ~80 wasted credits at α=1, ~2 at 1/32 (100us RTT).
        let cfg = Config {
            alphas: vec![1.0],
            ..Config::default()
        };
        let r = run(&cfg);
        let w = r.rows[0].wasted_credits;
        assert!((20..200).contains(&w), "wasted {w}");
    }

    #[test]
    fn renders() {
        let cfg = Config {
            alphas: vec![0.5],
            ..Config::default()
        };
        assert!(run(&cfg).to_string().contains("Fig 8"));
    }
}
