//! Fig 17 — MapReduce shuffle on a single rack: all-to-all transfers among
//! tasks on every host. The paper (40 hosts × 8 tasks × 1 MB ⇒ ~100k
//! flows) finds DCTCP slightly ahead at the median but ExpressPass 1.51×
//! better at the 99th percentile and 6.65× at the tail, where DCTCP's
//! stragglers time out repeatedly.
//!
//! The scaled default shrinks hosts/tasks/bytes; `paper_scale()` restores
//! the full workload.

use crate::harness::{fmt_secs, text_table, Scheme};
use std::fmt;
use xpass_net::topology::Topology;
use xpass_sim::stats::Percentiles;
use xpass_sim::time::{Dur, SimTime};
use xpass_workloads::{add_all, shuffle};

/// Fig 17 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hosts on the rack (paper: 40).
    pub hosts: usize,
    /// Tasks per host (paper: 8).
    pub tasks_per_host: usize,
    /// Bytes per task pair (paper: 1 MB).
    pub bytes: u64,
    /// Link speed.
    pub link_bps: u64,
    /// Run cap.
    pub cap: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            hosts: 16,
            tasks_per_host: 6,
            bytes: 100_000,
            link_bps: 10_000_000_000,
            cap: Dur::secs(30),
            seed: 47,
        }
    }
}

impl Config {
    /// The paper's full-scale shuffle (~100k flows — minutes of runtime).
    pub fn paper_scale() -> Config {
        Config {
            hosts: 40,
            tasks_per_host: 8,
            bytes: 1_000_000,
            cap: Dur::secs(120),
            ..Config::default()
        }
    }
}

/// One scheme's FCT distribution.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scheme name.
    pub scheme: &'static str,
    /// Median FCT (s).
    pub median: f64,
    /// 99th percentile FCT (s).
    pub p99: f64,
    /// Max FCT (s).
    pub max: f64,
    /// Flows that missed the cap.
    pub unfinished: usize,
}

/// Fig 17 result.
#[derive(Clone, Debug)]
pub struct Fig17 {
    /// ExpressPass and DCTCP rows.
    pub rows: Vec<Row>,
    /// Total flows per run.
    pub n_flows: usize,
}

/// Run one scheme.
pub fn run_scheme(cfg: &Config, scheme: Scheme) -> Row {
    let topo = Topology::star(cfg.hosts, cfg.link_bps, Dur::us(5));
    let mut net = scheme.build(topo, cfg.link_bps, cfg.seed);
    let specs = shuffle(cfg.hosts, cfg.tasks_per_host, cfg.bytes, net.rng());
    add_all(&mut net, &specs);
    net.run_until_done(SimTime::ZERO + cfg.cap);
    let mut fcts = Percentiles::new();
    let mut unfinished = 0;
    for r in net.flow_records() {
        match r.fct {
            Some(d) => fcts.add(d.as_secs_f64()),
            None => unfinished += 1,
        }
    }
    Row {
        scheme: scheme.name(),
        median: fcts.median(),
        p99: fcts.p99(),
        max: fcts.max(),
        unfinished,
    }
}

/// Run the ExpressPass vs DCTCP comparison.
pub fn run(cfg: &Config) -> Fig17 {
    let n = cfg.hosts * (cfg.hosts - 1) * cfg.tasks_per_host * cfg.tasks_per_host;
    Fig17 {
        rows: vec![
            run_scheme(cfg, Scheme::XPass(expresspass::XPassConfig::default())),
            run_scheme(cfg, Scheme::Dctcp),
        ],
        n_flows: n,
    }
}

impl fmt::Display for Fig17 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.to_string(),
                    fmt_secs(r.median),
                    fmt_secs(r.p99),
                    fmt_secs(r.max),
                    r.unfinished.to_string(),
                ]
            })
            .collect();
        writeln!(f, "Fig 17: shuffle FCTs over {} flows", self.n_flows)?;
        write!(
            f,
            "{}",
            text_table(&["Scheme", "Median", "99%-ile", "Max", "Unfinished"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Fig17 {
    /// Structured payload: FCT distribution summary per scheme (seconds).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .with("scheme", Json::str(r.scheme))
                    .with("median_s", Json::Num(r.median))
                    .with("p99_s", Json::Num(r.p99))
                    .with("max_s", Json::Num(r.max))
                    .with("unfinished", Json::num_u64(r.unfinished as u64))
            })
            .collect();
        Json::obj()
            .with("n_flows", Json::num_u64(self.n_flows as u64))
            .with("rows", Json::Arr(rows))
    }
}

/// Registry adapter: drives Fig 17 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig17"
    }
    fn describe(&self) -> &str {
        "MapReduce shuffle FCTs"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn paper_scale_config(&mut self) -> bool {
        self.0 = Config::paper_scale();
        true
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config::default()
    }

    #[test]
    fn shuffle_completes_and_medians_close() {
        // At this scaled-down fan-in the paper's 6.65x DCTCP tail blow-up
        // (driven by cascaded timeouts at 2496 flows/host) does not fully
        // materialize; we assert what does reproduce — zero data loss for
        // the credit scheme, comparable-or-better medians — and record the
        // tail comparison in EXPERIMENTS.md.
        let r = run(&quick());
        let xp = &r.rows[0];
        let dc = &r.rows[1];
        assert_eq!(xp.unfinished, 0, "xpass unfinished");
        assert_eq!(dc.unfinished, 0, "dctcp unfinished");
        assert!(
            xp.median < dc.median * 1.1,
            "median: xpass {:.4}s vs dctcp {:.4}s",
            xp.median,
            dc.median
        );
        let tail_ratio = xp.max / dc.max;
        assert!(tail_ratio < 2.0, "xpass tail {tail_ratio:.2}x dctcp's");
    }

    #[test]
    fn all_to_all_count() {
        let r = run(&quick());
        let c = quick();
        assert_eq!(
            r.n_flows,
            c.hosts * (c.hosts - 1) * c.tasks_per_host * c.tasks_per_host
        );
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 17"));
    }
}
