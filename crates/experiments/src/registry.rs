//! The experiment registry: every paper artifact as a boxed
//! [`Experiment`](crate::Experiment) trait object, in the canonical CLI
//! order. The `xpass-repro` binary, the integration tests, and any future
//! driver all dispatch through this single list, so adding an experiment
//! module means adding exactly one line here.

use crate::Experiment;

/// Every registered experiment, in canonical order (the order `xpass-repro
/// all` runs and prints them).
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::<crate::fig01_queue_buildup::Exp>::default(),
        Box::<crate::fig02_naive_convergence::Exp>::default(),
        Box::<crate::table1_buffer_bounds::Exp>::default(),
        Box::<crate::fig05_buffer_breakdown::Exp>::default(),
        Box::<crate::fig06_jitter_fairness::Exp>::default(),
        Box::<crate::fig08_init_rate_tradeoff::Exp>::default(),
        Box::<crate::fig09_credit_queue_capacity::Exp>::default(),
        Box::<crate::fig10_parking_lot::Exp>::default(),
        Box::<crate::fig11_multi_bottleneck::Exp>::default(),
        Box::<crate::fig12_steady_state::Exp>::default(),
        Box::<crate::fig13_convergence_trace::Exp>::default(),
        Box::<crate::fig14_host_model::Exp>::default(),
        Box::<crate::fig15_flow_scalability::Exp>::default(),
        Box::<crate::fig15_xl::Exp>::default(),
        Box::<crate::fig16_convergence::Exp>::default(),
        Box::<crate::fig17_shuffle::Exp>::default(),
        Box::<crate::fig18_param_sensitivity::Exp>::default(),
        Box::<crate::fig19_fct::Exp>::default(),
        Box::<crate::fig20_credit_waste::Exp>::default(),
        Box::<crate::fig21_speedup::Exp>::default(),
        Box::<crate::table3_queue::Exp>::default(),
        Box::<crate::ablations::Exp>::default(),
        Box::<crate::fault_recovery::Exp>::default(),
        Box::<crate::chaos::Exp>::default(),
    ]
}

/// Look one experiment up by its registered name.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_and_unique_names() {
        let names: Vec<String> = all().iter().map(|e| e.name().to_string()).collect();
        assert_eq!(names.first().map(String::as_str), Some("fig01"));
        assert_eq!(names.last().map(String::as_str), Some("chaos_sweep"));
        assert_eq!(names.len(), 24);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate names: {names:?}");
    }

    #[test]
    fn find_hits_and_misses() {
        assert!(find("fig19").is_some());
        assert!(find("fig19").unwrap().traces());
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn describe_nonempty_everywhere() {
        for e in all() {
            assert!(!e.describe().is_empty(), "{} has no description", e.name());
        }
    }

    #[test]
    fn paper_scale_flags() {
        // Only the experiments the old CLI special-cased support it.
        let expect = ["fig01", "fig15_xl", "fig17", "fig19", "table3"];
        for mut e in all() {
            let name = e.name().to_string();
            assert_eq!(
                e.paper_scale_config(),
                expect.contains(&name.as_str()),
                "paper_scale mismatch for {name}"
            );
        }
    }
}
