//! Fig 6(b) / Fig 14 — host-model distributions: the credit-processing
//! delay CDF at the host (Fig 14a) and the inter-credit gap measured before
//! and after the NIC/switch metering (Fig 6b / 14b).
//!
//! The paper measured these on the SoftNIC testbed; here the host delay
//! comes from the configured [`HostDelayModel`] and the gaps are measured
//! in-simulator on a saturated single-flow run.

use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::ids::HostId;
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::rng::Rng;
use xpass_sim::stats::Cdf;
use xpass_sim::time::{Dur, SimTime};

/// Fig 14 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Host delay model under test (Fig 14a: the software implementation).
    pub host_delay: HostDelayModel,
    /// Link speed.
    pub link_bps: u64,
    /// Measurement duration.
    pub duration: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            host_delay: HostDelayModel::software(),
            link_bps: 10_000_000_000,
            duration: Dur::ms(20),
            seed: 7,
        }
    }
}

/// Fig 14 result.
#[derive(Clone, Debug)]
pub struct Fig14 {
    /// Host credit-processing delay CDF (seconds) — Fig 14a.
    pub host_delay_cdf: Cdf,
    /// Inter-credit gap CDF at the receiver NIC egress (TX) — Fig 6b/14b.
    pub tx_gap_cdf: Cdf,
    /// Inter-credit gap CDF after the bottleneck switch (RX side).
    pub rx_gap_cdf: Cdf,
    /// The ideal gap (one credit per 1622 byte-times), seconds.
    pub ideal_gap: f64,
    /// Standard deviation of the TX gap, seconds (paper: 772.52 ns).
    pub tx_gap_stddev: f64,
}

/// Run the measurement.
pub fn run(cfg: &Config) -> Fig14 {
    // Host-delay CDF directly from the model.
    let mut rng = Rng::new(cfg.seed);
    let mut delays = xpass_sim::stats::Percentiles::new();
    for _ in 0..100_000 {
        delays.add(
            rng.range_dur(cfg.host_delay.min, cfg.host_delay.max)
                .as_secs_f64(),
        );
    }

    // Saturated single flow; collect gaps at the host NIC egress and at the
    // switch egress toward the sender.
    let topo = Topology::dumbbell(1, cfg.link_bps, Dur::us(1));
    let mut net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
    net_cfg.host_delay = cfg.host_delay;
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    // Receiver is host 1; its uplink carries credits toward the switch.
    let tx_dlink = net.topo().host_uplink[1];
    net.collect_credit_gaps(tx_dlink);
    // The switch egress delivering credits to the sender host 0.
    let rx_dlink = {
        let topo = net.topo();
        let to_sender = xpass_net::ids::NodeId::Host(HostId(0));
        topo.dlinks
            .iter()
            .position(|l| l.to == to_sender)
            .map(|i| xpass_net::ids::DLinkId(i as u32))
            .expect("sender downlink")
    };
    net.collect_credit_gaps(rx_dlink);
    let size = cfg.link_bps / 8; // ~1s worth; run is time-capped
    net.add_flow(HostId(0), HostId(1), size, SimTime::ZERO);
    net.run_until(SimTime::ZERO + cfg.duration);

    let tx = net.credit_gaps_mut(tx_dlink).expect("tx gaps");
    let tx_gap_cdf = tx.cdf(200);
    let n = tx.count();
    let mean: f64 = (1..=n)
        .map(|i| tx.quantile(i as f64 / n as f64))
        .sum::<f64>()
        / n as f64;
    let var: f64 = (1..=n)
        .map(|i| {
            let v = tx.quantile(i as f64 / n as f64) - mean;
            v * v
        })
        .sum::<f64>()
        / n as f64;
    let rx_gap_cdf = net.credit_gaps_mut(rx_dlink).expect("rx gaps").cdf(200);

    Fig14 {
        host_delay_cdf: delays.cdf(200),
        tx_gap_cdf,
        rx_gap_cdf,
        ideal_gap: 1622.0 * 8.0 / cfg.link_bps as f64,
        tx_gap_stddev: var.sqrt(),
    }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 6b/14: host model distributions")?;
        writeln!(
            f,
            "host delay    p50={:.2}us p99={:.2}us max={:.2}us",
            self.host_delay_cdf.value_at(0.5) * 1e6,
            self.host_delay_cdf.value_at(0.99) * 1e6,
            self.host_delay_cdf.value_at(1.0) * 1e6
        )?;
        writeln!(
            f,
            "ideal gap     {:.3}us; TX gap p50={:.3}us p99={:.3}us (std {:.0}ns)",
            self.ideal_gap * 1e6,
            self.tx_gap_cdf.value_at(0.5) * 1e6,
            self.tx_gap_cdf.value_at(0.99) * 1e6,
            self.tx_gap_stddev * 1e9
        )?;
        writeln!(
            f,
            "RX gap        p50={:.3}us p99={:.3}us",
            self.rx_gap_cdf.value_at(0.5) * 1e6,
            self.rx_gap_cdf.value_at(0.99) * 1e6
        )
    }
}

use xpass_sim::json::Json;

fn cdf_json(cdf: &Cdf) -> Json {
    let qs = [0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];
    Json::Arr(
        qs.iter()
            .map(|&q| {
                Json::obj()
                    .with("q", Json::Num(q))
                    .with("v", Json::Num(cdf.value_at(q)))
            })
            .collect(),
    )
}

impl Fig14 {
    /// Structured payload: quantile summaries of the three CDFs plus the
    /// ideal gap and TX-gap standard deviation (seconds throughout).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("host_delay_cdf", cdf_json(&self.host_delay_cdf))
            .with("tx_gap_cdf", cdf_json(&self.tx_gap_cdf))
            .with("rx_gap_cdf", cdf_json(&self.rx_gap_cdf))
            .with("ideal_gap_s", Json::Num(self.ideal_gap))
            .with("tx_gap_stddev_s", Json::Num(self.tx_gap_stddev))
    }
}

/// Registry adapter: drives Fig 14 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig14"
    }
    fn describe(&self) -> &str {
        "host model distributions"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_center_on_ideal() {
        let cfg = Config {
            duration: Dur::ms(5),
            ..Config::default()
        };
        let r = run(&cfg);
        let p50 = r.tx_gap_cdf.value_at(0.5);
        // Median TX gap within 25% of the 1.2976us ideal.
        assert!(
            (p50 - r.ideal_gap).abs() < 0.25 * r.ideal_gap,
            "p50 {p50} vs ideal {}",
            r.ideal_gap
        );
        // RX (post-switch) gap is re-paced by the meter: still near ideal.
        let rx50 = r.rx_gap_cdf.value_at(0.5);
        assert!(
            (rx50 - r.ideal_gap).abs() < 0.25 * r.ideal_gap,
            "rx p50 {rx50}"
        );
    }

    #[test]
    fn host_delay_cdf_matches_model() {
        let cfg = Config {
            duration: Dur::ms(2),
            ..Config::default()
        };
        let r = run(&cfg);
        // Software model: 0.9..6.2us uniform.
        let p50 = r.host_delay_cdf.value_at(0.5) * 1e6;
        assert!((3.0..4.2).contains(&p50), "p50 {p50}us");
        let max = r.host_delay_cdf.value_at(1.0) * 1e6;
        assert!(max <= 6.3, "max {max}us");
    }

    #[test]
    fn jitter_visible_in_tx_spread() {
        let cfg = Config {
            duration: Dur::ms(5),
            ..Config::default()
        };
        let r = run(&cfg);
        // Pacing jitter + size randomization produce nonzero spread.
        assert!(r.tx_gap_stddev > 1e-9, "stddev {}", r.tx_gap_stddev);
    }

    #[test]
    fn renders() {
        let cfg = Config {
            duration: Dur::ms(2),
            ..Config::default()
        };
        let s = run(&cfg).to_string();
        assert!(s.contains("ideal gap"));
    }
}
