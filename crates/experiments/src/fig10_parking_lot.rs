//! Fig 10 — parking-lot utilization: Flow 0 spans N bottleneck links, one
//! cross-flow per link. Without feedback, credits over-admitted at early
//! links are dropped at later ones, leaving earlier links' reverse data
//! paths underutilized (83.3 % at N = 2, 60 % at N = 6). The credit
//! feedback loop restores ~98 %.

use crate::harness::{text_table, Scheme};
use std::fmt;
use xpass_net::ids::{NodeId, SwitchId};
use xpass_net::network::Network;
use xpass_net::topology::Topology;
use xpass_sim::json::Json;
use xpass_sim::time::{Dur, SimTime};
use xpass_workloads::{add_all, parking_lot};

/// Fig 10 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bottleneck counts to test (paper: 1–6).
    pub bottlenecks: Vec<usize>,
    /// Link speed.
    pub link_bps: u64,
    /// Warmup before measuring.
    pub warmup: Dur,
    /// Measurement window.
    pub window: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            bottlenecks: vec![1, 2, 3, 4, 5, 6],
            link_bps: 10_000_000_000,
            warmup: Dur::ms(4),
            window: Dur::ms(4),
            seed: 23,
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Number of bottleneck links.
    pub n: usize,
    /// Minimum per-link utilization, normalized by the max data rate.
    pub min_utilization: f64,
}

/// Fig 10 result for one scheme.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme name.
    pub scheme: &'static str,
    /// Utilization per bottleneck count.
    pub points: Vec<Point>,
}

/// Fig 10 result.
#[derive(Clone, Debug)]
pub struct Fig10 {
    /// Feedback (ExpressPass) and naïve series.
    pub series: Vec<Series>,
}

/// Warm a chain network up for `warmup`, then measure each of the `n`
/// switch-to-switch links over `window` and return the minimum utilization,
/// normalized by the maximum goodput-carrying data rate (1538/1622 of line
/// rate). Shared between this module and the scenario engine's
/// `min_link_utilization` measurement so both report identical numbers.
pub fn min_chain_utilization(
    net: &mut Network,
    n: usize,
    link_bps: u64,
    warmup: Dur,
    window: Dur,
) -> f64 {
    net.run_until(SimTime::ZERO + warmup);
    let links: Vec<_> = (0..n)
        .map(|i| {
            net.topo()
                .dlink_between(
                    NodeId::Switch(SwitchId(i as u32)),
                    NodeId::Switch(SwitchId((i + 1) as u32)),
                )
                .unwrap()
        })
        .collect();
    let before: Vec<u64> = links.iter().map(|&l| net.port(l).tx_data_bytes).collect();
    net.run_until(SimTime::ZERO + warmup + window);
    let max_data = link_bps as f64 * (1538.0 / 1622.0) / 8.0 * window.as_secs_f64();
    links
        .iter()
        .zip(before)
        .map(|(&l, b)| (net.port(l).tx_data_bytes - b) as f64 / max_data)
        .fold(f64::INFINITY, f64::min)
}

fn measure(cfg: &Config, scheme: Scheme, n: usize) -> f64 {
    // Chain of n+1 switches → n bottleneck links; 2 hosts per switch.
    let topo = Topology::chain(n + 1, 2, cfg.link_bps, Dur::us(1));
    let mut net = scheme.build(topo, cfg.link_bps, cfg.seed);
    let bytes = (cfg.link_bps / 8) * 2;
    add_all(&mut net, &parking_lot(n, bytes));
    min_chain_utilization(&mut net, n, cfg.link_bps, cfg.warmup, cfg.window)
}

/// Run both series.
pub fn run(cfg: &Config) -> Fig10 {
    let schemes = [
        (
            "w/ feedback",
            Scheme::XPass(expresspass::XPassConfig::aggressive()),
        ),
        ("naive", Scheme::NaiveCredit),
    ];
    let series = schemes
        .into_iter()
        .map(|(name, s)| Series {
            scheme: name,
            points: cfg
                .bottlenecks
                .iter()
                .map(|&n| Point {
                    n,
                    min_utilization: measure(cfg, s, n),
                })
                .collect(),
        })
        .collect();
    Fig10 { series }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["scheme".to_string()];
        for p in &self.series[0].points {
            headers.push(format!("N={}", p.n));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|s| {
                let mut row = vec![s.scheme.to_string()];
                row.extend(
                    s.points
                        .iter()
                        .map(|p| format!("{:.1}%", p.min_utilization * 100.0)),
                );
                row
            })
            .collect();
        writeln!(f, "Fig 10: min link utilization on the parking lot")?;
        write!(f, "{}", text_table(&hdr_refs, &rows))
    }
}

impl Fig10 {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .with("n", Json::num_u64(p.n as u64))
                            .with("min_utilization", Json::Num(p.min_utilization))
                    })
                    .collect();
                Json::obj()
                    .with("scheme", Json::str(s.scheme))
                    .with("points", Json::Arr(points))
            })
            .collect();
        Json::obj().with("series", Json::Arr(series))
    }
}

/// Registry adapter: drives Fig 10 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig10"
    }
    fn describe(&self) -> &str {
        "parking-lot utilization"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            bottlenecks: vec![2, 4],
            warmup: Dur::ms(4),
            window: Dur::ms(4),
            ..Config::default()
        }
    }

    #[test]
    fn feedback_beats_naive_and_stays_high() {
        let r = run(&quick());
        let fb = &r.series[0].points;
        let naive = &r.series[1].points;
        for (a, b) in fb.iter().zip(naive.iter()) {
            assert!(
                a.min_utilization > b.min_utilization,
                "N={}: feedback {:.3} vs naive {:.3}",
                a.n,
                a.min_utilization,
                b.min_utilization
            );
        }
        // Feedback holds ≥ 85% at every depth (paper: ~98%).
        for p in fb {
            assert!(
                p.min_utilization > 0.80,
                "N={}: {:.3}",
                p.n,
                p.min_utilization
            );
        }
    }

    #[test]
    fn naive_degrades_with_depth() {
        let r = run(&quick());
        let naive = &r.series[1].points;
        // The paper's analysis: 83.3% at N=2 falling toward 60% at N=6.
        assert!(
            naive.last().unwrap().min_utilization <= naive.first().unwrap().min_utilization + 0.02,
            "naive should not improve with depth: {naive:?}"
        );
        assert!(naive[0].min_utilization < 0.95);
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 10"));
    }
}
