//! # xpass-experiments — reproduction of every table and figure
//!
//! One module per experiment in the paper's evaluation. Each module
//! exposes a config struct (with a scaled `default()` that runs in seconds
//! and, where relevant, a `paper_scale()` with the paper's full
//! parameters), a `run()` returning typed rows, and `Display` rendering
//! that prints the same rows/series the paper reports.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig01_queue_buildup`] | Fig 1 — queue vs flow count, ideal/DCTCP/credit |
//! | [`fig02_naive_convergence`] | Fig 2 — naïve credit vs CUBIC vs DCTCP |
//! | [`table1_buffer_bounds`] | Table 1 — network-calculus buffer bounds |
//! | [`fig05_buffer_breakdown`] | Fig 5 — ToR buffer vs link speed |
//! | [`fig06_jitter_fairness`] | Fig 6a — pacing jitter vs fairness |
//! | [`fig14_host_model`] | Fig 6b / Fig 14 — credit gap & host delay CDFs |
//! | [`fig08_init_rate_tradeoff`] | Fig 8 — convergence vs credit waste |
//! | [`fig09_credit_queue_capacity`] | Fig 9 — credit queue size vs utilization |
//! | [`fig10_parking_lot`] | Fig 10 — multi-bottleneck utilization |
//! | [`fig11_multi_bottleneck`] | Fig 11 — multi-bottleneck fairness |
//! | [`fig12_steady_state`] | Fig 12 — feedback convergence trace (§4 model) |
//! | [`fig13_convergence_trace`] | Fig 13 — five staggered flows, queue trace |
//! | [`fig15_flow_scalability`] | Fig 15 — utilization/fairness/queue vs N |
//! | [`fig15_xl`] | Fig 15 XL — 100k+ concurrent flows on a 10k-host Clos |
//! | [`fig16_convergence`] | Fig 16 — convergence time at 10/100 G |
//! | [`fig17_shuffle`] | Fig 17 — shuffle FCT distribution |
//! | [`fig18_param_sensitivity`] | Fig 18 — 99 %-ile FCT vs (α, w_init) |
//! | [`fig19_fct`] | Fig 19 — FCT per size bucket, five schemes |
//! | [`fig20_credit_waste`] | Fig 20 — credit waste ratio |
//! | [`fig21_speedup`] | Fig 21 — 40 G over 10 G FCT speed-up |
//! | [`table3_queue`] | Table 3 — queue occupancy by scheme/workload/load |
//! | [`ablations`] | design-choice ablations (drop policy, routing, §7 features) |
//! | [`fault_recovery`] | robustness — re-convergence after injected faults |
//! | [`chaos`] | robustness — random fault schedules vs conservation + liveness |

//!
//! Every module also exposes an `Exp` adapter implementing the
//! [`Experiment`] trait; [`registry::all`] lists them in canonical order
//! and [`scenario`] executes declarative JSON scenario files through the
//! same interface.

#![warn(missing_docs)]
pub mod ablations;
pub mod chaos;
pub mod experiment;
pub mod fault_recovery;
pub mod fig01_queue_buildup;
pub mod fig02_naive_convergence;
pub mod fig05_buffer_breakdown;
pub mod fig06_jitter_fairness;
pub mod fig08_init_rate_tradeoff;
pub mod fig09_credit_queue_capacity;
pub mod fig10_parking_lot;
pub mod fig11_multi_bottleneck;
pub mod fig12_steady_state;
pub mod fig13_convergence_trace;
pub mod fig14_host_model;
pub mod fig15_flow_scalability;
pub mod fig15_xl;
pub mod fig16_convergence;
pub mod fig17_shuffle;
pub mod fig18_param_sensitivity;
pub mod fig19_fct;
pub mod fig20_credit_waste;
pub mod fig21_speedup;
pub mod harness;
pub mod parallel;
pub mod registry;
pub mod scenario;
pub mod table1_buffer_bounds;
pub mod table3_queue;

pub use experiment::{Experiment, ExperimentOutput};
pub use harness::{FctBuckets, Scheme, SizeBucket};
