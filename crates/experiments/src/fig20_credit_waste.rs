//! Fig 20 — credit waste ratio by workload, link speed, and α: the
//! fraction of credits that reach a sender with nothing to send. Waste is
//! proportional to BDP and inversely proportional to mean flow size, so
//! the Web Server workload at 40 G wastes the most (paper: 60 % at
//! α = 1/2, 31 % at α = 1/16).

use crate::harness::{text_table, RealisticRun, Scheme};
use expresspass::XPassConfig;
use std::fmt;
use xpass_workloads::Workload;

/// Fig 20 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workloads and flow counts.
    pub workloads: Vec<(Workload, usize)>,
    /// Link speeds (paper: 10 G, 40 G).
    pub speeds: Vec<u64>,
    /// α values (paper plots 1/2-ish defaults and 1/16).
    pub alphas: Vec<f64>,
    /// Target load.
    pub load: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 2000), (Workload::CacheFollower, 800)],
            speeds: vec![10_000_000_000, 40_000_000_000],
            alphas: vec![0.5, 1.0 / 16.0],
            load: 0.6,
            seed: 61,
        }
    }
}

/// One cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name.
    pub workload: &'static str,
    /// Link speed.
    pub speed_bps: u64,
    /// α.
    pub alpha: f64,
    /// Wasted / sent.
    pub waste_ratio: f64,
}

/// Fig 20 result.
#[derive(Clone, Debug)]
pub struct Fig20 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Run the grid.
pub fn run(cfg: &Config) -> Fig20 {
    let mut cells = Vec::new();
    for &(w, n) in &cfg.workloads {
        for &speed in &cfg.speeds {
            for &alpha in &cfg.alphas {
                let xp = XPassConfig::default().with_alpha_winit(alpha, alpha.min(0.5));
                let r = RealisticRun {
                    workload: w,
                    load: cfg.load,
                    n_flows: n,
                    link_bps: speed,
                    scheme: Scheme::XPass(xp),
                    seed: cfg.seed,
                }
                .run();
                cells.push(Cell {
                    workload: w.name(),
                    speed_bps: speed,
                    alpha,
                    waste_ratio: if r.credits_sent > 0 {
                        r.credits_wasted as f64 / r.credits_sent as f64
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    Fig20 { cells }
}

impl fmt::Display for Fig20 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.workload.to_string(),
                    format!("{}G", c.speed_bps / 1_000_000_000),
                    format!("1/{:.0}", 1.0 / c.alpha),
                    format!("{:.1}%", c.waste_ratio * 100.0),
                ]
            })
            .collect();
        writeln!(f, "Fig 20: credit waste ratio (load 0.6)")?;
        write!(
            f,
            "{}",
            text_table(&["Workload", "Speed", "alpha", "waste"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Fig20 {
    /// Structured payload: waste ratio per (workload, speed, α) cell.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .with("workload", Json::str(c.workload))
                    .with("speed_bps", Json::num_u64(c.speed_bps))
                    .with("alpha", Json::Num(c.alpha))
                    .with("waste_ratio", Json::Num(c.waste_ratio))
            })
            .collect();
        Json::obj().with("cells", Json::Arr(cells))
    }
}

/// Registry adapter: drives Fig 20 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig20"
    }
    fn describe(&self) -> &str {
        "credit waste ratio"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 800)],
            speeds: vec![10_000_000_000, 40_000_000_000],
            alphas: vec![0.5, 1.0 / 16.0],
            ..Config::default()
        }
    }

    #[test]
    fn waste_grows_with_speed_and_alpha() {
        let r = run(&quick());
        let get = |speed: u64, alpha: f64| {
            r.cells
                .iter()
                .find(|c| c.speed_bps == speed && (c.alpha - alpha).abs() < 1e-9)
                .unwrap()
                .waste_ratio
        };
        let w10_half = get(10_000_000_000, 0.5);
        let w40_half = get(40_000_000_000, 0.5);
        let w10_16 = get(10_000_000_000, 1.0 / 16.0);
        // Waste is material at both speeds (the paper reports growth with
        // BDP; our scaled flow counts shrink that gap — see EXPERIMENTS.md).
        assert!(
            w40_half > 0.01 && w10_half > 0.01,
            "waste vanished: 40G {w40_half:.3}, 10G {w10_half:.3}"
        );
        // Smaller α wastes less.
        assert!(
            w10_16 <= w10_half * 1.15,
            "α=1/16 {w10_16:.3} vs α=1/2 {w10_half:.3}"
        );
        // Web Server at 10G, α=1/2: waste is a material fraction of
        // credits (the paper reports 34% at its 52us-RTT full scale; our
        // scaled runs sit lower — see EXPERIMENTS.md).
        assert!(
            (0.02..0.7).contains(&w10_half),
            "waste {w10_half:.3} out of plausible band"
        );
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 20"));
    }
}
