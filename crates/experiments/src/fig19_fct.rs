//! Fig 19 — average and 99th-percentile FCT per flow-size bucket for the
//! realistic workloads at load 0.6, across the five schemes (ExpressPass,
//! RCP, DCTCP, DX, HULL) on the 192-host 3:1 fat tree.
//!
//! Paper shape: ExpressPass wins S and M buckets (1.3–5.1× faster average
//! than DCTCP, more at the tail); DCTCP/RCP win L and XL (ExpressPass pays
//! its ~5 % bandwidth reservation and credit waste).
//!
//! The scaled default runs fewer flows on the lighter workloads;
//! `paper_scale()` uses 100k flows including Data Mining.

use crate::harness::{fmt_secs, text_table, RealisticRun, Scheme, SizeBucket};
use std::fmt;
use xpass_net::health::HealthReport;
use xpass_net::network::Counters;
use xpass_sim::json::Json;
use xpass_sim::profile::EngineReport;
use xpass_sim::trace::TraceSink;
use xpass_workloads::Workload;

/// Fig 19 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workloads and per-workload flow counts.
    pub workloads: Vec<(Workload, usize)>,
    /// Target load.
    pub load: f64,
    /// Link speed.
    pub link_bps: u64,
    /// Schemes (defaults to the paper's five).
    pub schemes: Vec<Scheme>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workloads: vec![
                (Workload::WebServer, 3000),
                (Workload::CacheFollower, 1200),
                (Workload::WebSearch, 600),
            ],
            load: 0.6,
            link_bps: 10_000_000_000,
            schemes: Scheme::comparison_set(),
            seed: 53,
        }
    }
}

impl Config {
    /// The paper's configuration (100k flows, all heavy workloads).
    pub fn paper_scale() -> Config {
        Config {
            workloads: vec![
                (Workload::WebServer, 100_000),
                (Workload::CacheFollower, 100_000),
                (Workload::WebSearch, 100_000),
                (Workload::DataMining, 100_000),
            ],
            ..Config::default()
        }
    }
}

/// One (workload, scheme) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme name.
    pub scheme: &'static str,
    /// (avg, p99) per bucket, seconds.
    pub buckets: [(f64, f64); 4],
    /// Completed flows per bucket.
    pub counts: [usize; 4],
    /// (median, p99) FCT over all buckets combined, seconds.
    pub overall: (f64, f64),
    /// Unfinished flows.
    pub unfinished: usize,
    /// Mean time-weighted switch-egress queue occupancy, bytes.
    pub avg_queue_bytes: f64,
    /// Peak instantaneous switch queue, bytes.
    pub max_queue_bytes: u64,
    /// Global packet/credit counters for the run.
    pub counters: Counters,
    /// Engine profile for the run.
    pub engine: EngineReport,
    /// Invariant-monitor outcome (monitored for ExpressPass only).
    pub health: HealthReport,
}

impl Cell {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        let buckets = SizeBucket::all()
            .iter()
            .zip(self.buckets.iter().zip(self.counts.iter()))
            .map(|(b, (&(avg, p99), &count))| {
                Json::obj()
                    .with("bucket", Json::str(b.label()))
                    .with("avg_s", Json::Num(avg))
                    .with("p99_s", Json::Num(p99))
                    .with("count", Json::num_u64(count as u64))
            })
            .collect();
        Json::obj()
            .with("workload", Json::str(self.workload))
            .with("scheme", Json::str(self.scheme))
            .with("fct_buckets", Json::Arr(buckets))
            .with(
                "fct_overall",
                Json::obj()
                    .with("p50_s", Json::Num(self.overall.0))
                    .with("p99_s", Json::Num(self.overall.1)),
            )
            .with("unfinished", Json::num_u64(self.unfinished as u64))
            .with(
                "queue",
                Json::obj()
                    .with("avg_switch_bytes", Json::Num(self.avg_queue_bytes))
                    .with("max_switch_bytes", Json::num_u64(self.max_queue_bytes)),
            )
            .with("counters", self.counters.to_json())
            .with("engine", self.engine.to_json())
            .with("health", self.health.to_json())
    }
}

/// Fig 19 result.
#[derive(Clone, Debug)]
pub struct Fig19 {
    /// All cells.
    pub cells: Vec<Cell>,
}

impl Fig19 {
    /// Render the whole grid as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj().with(
            "cells",
            Json::Arr(self.cells.iter().map(Cell::to_json).collect()),
        )
    }
}

/// Run the grid.
pub fn run(cfg: &Config) -> Fig19 {
    run_traced(cfg, None).0
}

/// Run the grid with an optional trace sink threaded through every cell's
/// simulation (all cells append to the same stream, in grid order).
pub fn run_traced(
    cfg: &Config,
    mut sink: Option<Box<dyn TraceSink>>,
) -> (Fig19, Option<Box<dyn TraceSink>>) {
    let mut cells = Vec::new();
    for &(w, n) in &cfg.workloads {
        for &scheme in &cfg.schemes {
            let (r, returned) = RealisticRun {
                workload: w,
                load: cfg.load,
                n_flows: n,
                link_bps: cfg.link_bps,
                scheme,
                seed: cfg.seed,
            }
            .run_traced(sink.take());
            sink = returned;
            let mut fct = r.fct.clone();
            let buckets = SizeBucket::all().map(|b| (fct.avg(b), fct.p99(b)));
            let counts = SizeBucket::all().map(|b| fct.count(b));
            let mut overall = fct.overall();
            let overall = if overall.is_empty() {
                (0.0, 0.0)
            } else {
                (overall.median(), overall.p99())
            };
            cells.push(Cell {
                workload: w.name(),
                scheme: scheme.name(),
                buckets,
                counts,
                overall,
                unfinished: r.unfinished,
                avg_queue_bytes: r.avg_queue_bytes,
                max_queue_bytes: r.max_queue_bytes,
                counters: r.counters,
                engine: r.engine,
                health: r.health,
            });
        }
    }
    (Fig19 { cells }, sink)
}

impl fmt::Display for Fig19 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 19: avg / 99% FCT per size bucket (load 0.6)")?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let mut row = vec![c.workload.to_string(), c.scheme.to_string()];
                for (avg, p99) in c.buckets {
                    row.push(format!("{}/{}", fmt_secs(avg), fmt_secs(p99)));
                }
                row.push(c.unfinished.to_string());
                row
            })
            .collect();
        write!(
            f,
            "{}",
            text_table(&["Workload", "Scheme", "S", "M", "L", "XL", "unfin"], &rows)
        )
    }
}

/// Registry adapter: drives Fig 19 through the [`crate::Experiment`] trait.
/// The only experiment that records `--trace` events.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig19"
    }
    fn describe(&self) -> &str {
        "realistic-workload FCTs"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn paper_scale_config(&mut self) -> bool {
        self.0 = Config::paper_scale();
        true
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn traces(&self) -> bool {
        true
    }
    fn run(&self, trace: Option<Box<dyn TraceSink>>) -> crate::ExperimentOutput {
        let (r, sink) = run_traced(&self.0, trace);
        drop(sink); // flush
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 600)],
            schemes: vec![
                Scheme::XPass(expresspass::XPassConfig::default()),
                Scheme::Dctcp,
            ],
            ..Config::default()
        }
    }

    #[test]
    fn expresspass_wins_small_flows() {
        let r = run(&quick());
        let xp = &r.cells[0];
        let dc = &r.cells[1];
        assert_eq!(xp.unfinished, 0);
        assert_eq!(dc.unfinished, 0);
        // S-bucket average: ExpressPass at least comparable, typically
        // faster (paper: 1.3–5.1x faster).
        let (xp_s, _) = xp.buckets[0];
        let (dc_s, _) = dc.buckets[0];
        assert!(
            xp_s < dc_s * 1.3,
            "S avg: xpass {} vs dctcp {}",
            fmt_secs(xp_s),
            fmt_secs(dc_s)
        );
    }

    #[test]
    fn json_round_trip_cross_checks() {
        let r = run(&quick());
        let j = xpass_sim::json::parse(&r.to_json().to_string()).unwrap();
        let cells = j.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), r.cells.len());
        let c0 = &cells[0];
        assert_eq!(c0.get("scheme").unwrap().as_str(), Some("ExpressPass"));
        assert_eq!(
            c0.get("counters")
                .unwrap()
                .get("credits_sent")
                .unwrap()
                .as_u64(),
            Some(r.cells[0].counters.credits_sent)
        );
        assert_eq!(
            c0.get("engine")
                .unwrap()
                .get("events_processed")
                .unwrap()
                .as_u64(),
            Some(r.cells[0].engine.events_processed)
        );
        let buckets = c0.get("fct_buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].get("bucket").unwrap().as_str(), Some("S"));
        assert_eq!(
            buckets[0].get("avg_s").unwrap().as_f64(),
            Some(r.cells[0].buckets[0].0)
        );
        // The ExpressPass cell is invariant-monitored and healthy on the
        // stock config; the DCTCP baseline is not monitored.
        let health = c0.get("health").unwrap();
        assert_eq!(health.get("monitored").unwrap().as_bool(), Some(true));
        assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            cells[1]
                .get("health")
                .unwrap()
                .get("monitored")
                .unwrap()
                .as_bool(),
            Some(false)
        );
    }

    #[test]
    fn renders() {
        let r = run(&quick());
        let s = r.to_string();
        assert!(s.contains("Fig 19"));
        assert!(s.contains("ExpressPass"));
    }
}
