//! Fig 19 — average and 99th-percentile FCT per flow-size bucket for the
//! realistic workloads at load 0.6, across the five schemes (ExpressPass,
//! RCP, DCTCP, DX, HULL) on the 192-host 3:1 fat tree.
//!
//! Paper shape: ExpressPass wins S and M buckets (1.3–5.1× faster average
//! than DCTCP, more at the tail); DCTCP/RCP win L and XL (ExpressPass pays
//! its ~5 % bandwidth reservation and credit waste).
//!
//! The scaled default runs fewer flows on the lighter workloads;
//! `paper_scale()` uses 100k flows including Data Mining.

use crate::harness::{fmt_secs, text_table, RealisticRun, Scheme, SizeBucket};
use std::fmt;
use xpass_workloads::Workload;

/// Fig 19 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workloads and per-workload flow counts.
    pub workloads: Vec<(Workload, usize)>,
    /// Target load.
    pub load: f64,
    /// Link speed.
    pub link_bps: u64,
    /// Schemes (defaults to the paper's five).
    pub schemes: Vec<Scheme>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workloads: vec![
                (Workload::WebServer, 3000),
                (Workload::CacheFollower, 1200),
                (Workload::WebSearch, 600),
            ],
            load: 0.6,
            link_bps: 10_000_000_000,
            schemes: Scheme::comparison_set(),
            seed: 53,
        }
    }
}

impl Config {
    /// The paper's configuration (100k flows, all heavy workloads).
    pub fn paper_scale() -> Config {
        Config {
            workloads: vec![
                (Workload::WebServer, 100_000),
                (Workload::CacheFollower, 100_000),
                (Workload::WebSearch, 100_000),
                (Workload::DataMining, 100_000),
            ],
            ..Config::default()
        }
    }
}

/// One (workload, scheme) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme name.
    pub scheme: &'static str,
    /// (avg, p99) per bucket, seconds.
    pub buckets: [(f64, f64); 4],
    /// Unfinished flows.
    pub unfinished: usize,
}

/// Fig 19 result.
#[derive(Clone, Debug)]
pub struct Fig19 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Run the grid.
pub fn run(cfg: &Config) -> Fig19 {
    let mut cells = Vec::new();
    for &(w, n) in &cfg.workloads {
        for &scheme in &cfg.schemes {
            let r = RealisticRun {
                workload: w,
                load: cfg.load,
                n_flows: n,
                link_bps: cfg.link_bps,
                scheme,
                seed: cfg.seed,
            }
            .run();
            let mut fct = r.fct.clone();
            let buckets = SizeBucket::all().map(|b| (fct.avg(b), fct.p99(b)));
            cells.push(Cell {
                workload: w.name(),
                scheme: scheme.name(),
                buckets,
                unfinished: r.unfinished,
            });
        }
    }
    Fig19 { cells }
}

impl fmt::Display for Fig19 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 19: avg / 99% FCT per size bucket (load 0.6)")?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let mut row = vec![c.workload.to_string(), c.scheme.to_string()];
                for (avg, p99) in c.buckets {
                    row.push(format!("{}/{}", fmt_secs(avg), fmt_secs(p99)));
                }
                row.push(c.unfinished.to_string());
                row
            })
            .collect();
        write!(
            f,
            "{}",
            text_table(
                &["Workload", "Scheme", "S", "M", "L", "XL", "unfin"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 600)],
            schemes: vec![
                Scheme::XPass(expresspass::XPassConfig::default()),
                Scheme::Dctcp,
            ],
            ..Config::default()
        }
    }

    #[test]
    fn expresspass_wins_small_flows() {
        let r = run(&quick());
        let xp = &r.cells[0];
        let dc = &r.cells[1];
        assert_eq!(xp.unfinished, 0);
        assert_eq!(dc.unfinished, 0);
        // S-bucket average: ExpressPass at least comparable, typically
        // faster (paper: 1.3–5.1x faster).
        let (xp_s, _) = xp.buckets[0];
        let (dc_s, _) = dc.buckets[0];
        assert!(
            xp_s < dc_s * 1.3,
            "S avg: xpass {} vs dctcp {}",
            fmt_secs(xp_s),
            fmt_secs(dc_s)
        );
    }

    #[test]
    fn renders() {
        let r = run(&quick());
        let s = r.to_string();
        assert!(s.contains("Fig 19"));
        assert!(s.contains("ExpressPass"));
    }
}
