//! Fig 5 — maximum buffer required for a ToR switch in a 32-ary fat tree,
//! versus link speed, under two parameter sets: (a) the testbed's 8-credit
//! queues with ~5.3 µs host delay spread, and (b) a NIC-hardware
//! implementation with 4-credit queues and 1 µs spread.

use crate::harness::text_table;
use expresspass::netcalc::{tor_switch_total, HierTopo, NetCalcParams, TorBufferBreakdown};
use std::fmt;

/// One bar of Fig 5.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Speed label ("10/40", "40/100", "100/100").
    pub speeds: &'static str,
    /// Parameter-set label.
    pub params: &'static str,
    /// Buffer breakdown.
    pub breakdown: TorBufferBreakdown,
}

/// Fig 5 result.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// All bars, testbed set first.
    pub bars: Vec<Bar>,
}

/// Compute both panels.
pub fn run() -> Fig5 {
    let topos = [
        ("10/40", HierTopo::fat32_10_40()),
        ("40/100", HierTopo::fat32_40_100()),
        ("100/100", HierTopo::fat32_100_100()),
    ];
    let sets = [
        ("8cq,5.3us", NetCalcParams::testbed()),
        ("4cq,1us", NetCalcParams::nic_hardware()),
    ];
    let mut bars = Vec::new();
    for (pname, p) in sets {
        for (sname, topo) in &topos {
            bars.push(Bar {
                speeds: sname,
                params: pname,
                breakdown: tor_switch_total(topo, &p),
            });
        }
    }
    Fig5 { bars }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mb = |b: u64| format!("{:.2}MB", b as f64 / 1e6);
        let rows: Vec<Vec<String>> = self
            .bars
            .iter()
            .map(|b| {
                vec![
                    b.params.to_string(),
                    b.speeds.to_string(),
                    mb(b.breakdown.total_bytes),
                    mb(b.breakdown.data_bytes),
                    format!("{:.1}KB", b.breakdown.credit_static_bytes as f64 / 1e3),
                    mb(b.breakdown.host_spread_bytes),
                ]
            })
            .collect();
        writeln!(f, "Fig 5: max ToR buffer, 32-ary fat tree")?;
        write!(
            f,
            "{}",
            text_table(
                &[
                    "Params",
                    "Link/Core",
                    "Total",
                    "Data bound",
                    "Credit buf",
                    "Host-spread part"
                ],
                &rows
            )
        )
    }
}

use xpass_sim::json::Json;

impl Fig5 {
    /// Structured payload: one record per bar with the full breakdown.
    pub fn to_json(&self) -> Json {
        let bars = self
            .bars
            .iter()
            .map(|b| {
                Json::obj()
                    .with("speeds", Json::str(b.speeds))
                    .with("params", Json::str(b.params))
                    .with("total_bytes", Json::num_u64(b.breakdown.total_bytes))
                    .with("data_bytes", Json::num_u64(b.breakdown.data_bytes))
                    .with(
                        "credit_static_bytes",
                        Json::num_u64(b.breakdown.credit_static_bytes),
                    )
                    .with(
                        "host_spread_bytes",
                        Json::num_u64(b.breakdown.host_spread_bytes),
                    )
            })
            .collect();
        Json::obj().with("bars", Json::Arr(bars))
    }
}

/// Registry adapter: drives Fig 5 through the [`crate::Experiment`] trait.
/// The figure is analytic — no config, seed, or paper scale.
#[derive(Default)]
pub struct Exp;

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig05"
    }
    fn describe(&self) -> &str {
        "ToR buffer requirement vs link speed"
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run();
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_complete() {
        let r = run();
        assert_eq!(r.bars.len(), 6);
    }

    #[test]
    fn grows_with_speed_sublinearly() {
        let r = run();
        // Within the testbed set: 10/40 < 40/100 < 100/100... the paper
        // shows growth with speed; require monotone total.
        let t: Vec<u64> = r.bars[..3]
            .iter()
            .map(|b| b.breakdown.total_bytes)
            .collect();
        assert!(t[0] < t[1], "{t:?}");
        // 4x speed increase needs < 4x buffer (sublinear, §3.1).
        assert!((t[1] as f64) < (t[0] as f64) * 4.0, "{t:?}");
    }

    #[test]
    fn hardware_set_needs_less() {
        let r = run();
        for i in 0..3 {
            assert!(
                r.bars[3 + i].breakdown.total_bytes < r.bars[i].breakdown.total_bytes,
                "hardware set should shrink bar {i}"
            );
        }
    }

    #[test]
    fn magnitudes_match_figure() {
        // Fig 5a shows order-10MB totals for the testbed set at 10/40G.
        let r = run();
        let total = r.bars[0].breakdown.total_bytes;
        assert!(
            (2_000_000..40_000_000).contains(&total),
            "total {total} bytes"
        );
    }

    #[test]
    fn renders() {
        let s = run().to_string();
        assert!(s.contains("Fig 5"));
        assert!(s.contains("10/40"));
    }
}
