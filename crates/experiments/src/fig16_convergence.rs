//! Fig 16 — convergence time at 10 G and 100 G with 100 µs base RTT: a
//! second flow joins a saturated bottleneck; we count RTTs until fair
//! share.
//!
//! Paper shape: ExpressPass converges in ~3 RTTs (α = 1/2) or ~6 RTTs
//! (α = 1/16) **independent of link speed**; DCTCP needs ~260 RTTs at 10 G
//! and ~2350 at 100 G (convergence ∝ BDP); RCP ~3 RTTs at both.

use crate::harness::{convergence_time, text_table, Scheme};
use expresspass::XPassConfig;
use std::fmt;
use xpass_net::ids::HostId;
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

/// Fig 16 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Link speeds (paper: 10 G and 100 G).
    pub speeds: Vec<u64>,
    /// Base RTT (paper: 100 µs).
    pub base_rtt: Dur,
    /// Observation window after the join.
    pub window: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            speeds: vec![10_000_000_000, 100_000_000_000],
            base_rtt: Dur::us(100),
            window: Dur::ms(60),
            seed: 43,
        }
    }
}

/// One (scheme, speed) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Scheme label.
    pub scheme: String,
    /// Link speed.
    pub speed_bps: u64,
    /// Convergence time in RTTs (None = did not converge in the window).
    pub rtts: Option<f64>,
}

/// Fig 16 result.
#[derive(Clone, Debug)]
pub struct Fig16 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Measure one scheme at one speed.
pub fn measure(cfg: &Config, scheme: Scheme, label: &str, speed: u64) -> Cell {
    // Dumbbell with per-link propagation so the 6-hop RTT ≈ base_rtt.
    let prop = cfg.base_rtt / 6 / 2;
    let topo = Topology::dumbbell(2, speed, prop);
    let mut net = scheme.build(topo, speed, cfg.seed);
    net.set_sample_interval(cfg.base_rtt);
    let bytes = speed / 8; // 1 second of traffic: outlives the run
    net.add_flow(HostId(0), HostId(2), bytes, SimTime::ZERO);
    let join = SimTime::ZERO + Dur::ms(8);
    let late = net.add_flow(HostId(1), HostId(3), bytes, join);
    net.track_flow(late);
    net.run_until(join + cfg.window);
    let eff = match scheme {
        Scheme::XPass(_) | Scheme::NaiveCredit => 0.9482 * 1460.0 / 1538.0,
        _ => 1460.0 / 1538.0,
    };
    let fair = speed as f64 / 2.0 * eff / 1e9;
    let conv = convergence_time(&net, late, join, fair, 0.30, 15);
    Cell {
        scheme: label.to_string(),
        speed_bps: speed,
        rtts: conv.map(|d| d.as_secs_f64() / cfg.base_rtt.as_secs_f64()),
    }
}

/// Run the full grid.
pub fn run(cfg: &Config) -> Fig16 {
    let schemes: Vec<(String, Scheme)> = vec![
        (
            "ExpressPass a=1/2".into(),
            Scheme::XPass(XPassConfig::aggressive()),
        ),
        (
            "ExpressPass a=1/16".into(),
            Scheme::XPass(XPassConfig::default().with_alpha_winit(1.0 / 16.0, 1.0 / 16.0)),
        ),
        ("DCTCP".into(), Scheme::Dctcp),
        ("RCP".into(), Scheme::Rcp),
    ];
    let mut cells = Vec::new();
    for (label, s) in &schemes {
        for &speed in &cfg.speeds {
            cells.push(measure(cfg, *s, label, speed));
        }
    }
    Fig16 { cells }
}

impl fmt::Display for Fig16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.scheme.clone(),
                    format!("{}G", c.speed_bps / 1_000_000_000),
                    c.rtts
                        .map(|r| format!("{r:.0} RTTs"))
                        .unwrap_or_else(|| "> window".into()),
                ]
            })
            .collect();
        writeln!(
            f,
            "Fig 16: convergence time of a joining flow (RTT = 100us)"
        )?;
        write!(
            f,
            "{}",
            text_table(&["Scheme", "Speed", "Convergence"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Fig16 {
    /// Structured payload: convergence in RTTs per (scheme, speed) cell.
    /// `rtts` is `null` when the flow did not converge in the window.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .with("scheme", Json::str(&c.scheme))
                    .with("speed_bps", Json::num_u64(c.speed_bps))
                    .with("rtts", crate::experiment::json_opt_f64(c.rtts))
            })
            .collect();
        Json::obj().with("cells", Json::Arr(cells))
    }
}

/// Registry adapter: drives Fig 16 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig16"
    }
    fn describe(&self) -> &str {
        "convergence time at 10G/100G"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expresspass_converges_in_few_rtts_speed_independent() {
        let cfg = Config::default();
        let a = measure(
            &cfg,
            Scheme::XPass(XPassConfig::aggressive()),
            "xp",
            10_000_000_000,
        );
        let b = measure(
            &cfg,
            Scheme::XPass(XPassConfig::aggressive()),
            "xp",
            100_000_000_000,
        );
        let ra = a.rtts.expect("converges at 10G");
        let rb = b.rtts.expect("converges at 100G");
        assert!(ra < 60.0, "10G: {ra} RTTs");
        assert!(rb < 60.0, "100G: {rb} RTTs");
        // Speed-independence: within a small factor of each other.
        assert!(rb < ra * 4.0 + 5.0, "{ra} vs {rb}");
    }

    #[test]
    fn dctcp_needs_orders_of_magnitude_longer() {
        let cfg = Config {
            window: Dur::ms(50),
            ..Config::default()
        };
        let xp = measure(
            &cfg,
            Scheme::XPass(XPassConfig::aggressive()),
            "xp",
            10_000_000_000,
        )
        .rtts
        .expect("xp converges");
        let dc = measure(&cfg, Scheme::Dctcp, "dctcp", 10_000_000_000);
        // DCTCP either converges much later or not within the window.
        // DCTCP not converging in 50ms = 500 RTTs is also consistent.
        if let Some(r) = dc.rtts {
            assert!(r > xp * 4.0, "dctcp {r} vs xpass {xp}");
        }
    }

    #[test]
    fn rcp_fast_too() {
        let cfg = Config::default();
        let rcp = measure(&cfg, Scheme::Rcp, "rcp", 10_000_000_000)
            .rtts
            .expect("rcp converges");
        assert!(rcp < 60.0, "rcp {rcp} RTTs");
    }
}
