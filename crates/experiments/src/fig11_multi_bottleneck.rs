//! Fig 11 — fairness with multiple bottlenecks: flows 1…N cross Link 1 and
//! Link 2; Flow 0 crosses only Link 2. Under max-min fairness Flow 0
//! should get C/(N+1). The naïve scheme gives Flow 0 far more (its credits
//! are never thinned at Link 1); the feedback loop tracks max-min closely
//! until the sub-credit-per-RTT regime.

use crate::harness::{text_table, Scheme};
use std::fmt;
use xpass_net::ids::HostId;
use xpass_net::topology::{TopoBuilder, Topology};
use xpass_sim::time::{Dur, SimTime};

/// Fig 11 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Competing flow counts N (paper: 1–1024).
    pub flow_counts: Vec<usize>,
    /// Link speed.
    pub link_bps: u64,
    /// Warmup.
    pub warmup: Dur,
    /// Measurement window.
    pub window: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            flow_counts: vec![1, 4, 16, 64],
            link_bps: 10_000_000_000,
            warmup: Dur::ms(5),
            window: Dur::ms(5),
            seed: 29,
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Competing flows N.
    pub n: usize,
    /// Flow 0 goodput in Gbps.
    pub flow0_gbps: f64,
    /// The max-min ideal C/(N+1) in Gbps (data-rate normalized).
    pub ideal_gbps: f64,
}

/// Fig 11 result.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme label.
    pub scheme: &'static str,
    /// Points per N.
    pub points: Vec<Point>,
}

/// Fig 11 result set.
#[derive(Clone, Debug)]
pub struct Fig11 {
    /// Feedback and naïve series.
    pub series: Vec<Series>,
}

/// Multi-bottleneck topology (the Fig 4a / Fig 11a structure): all flows
/// share the *first* data link sw0→sw1; flows 1..N continue over sw1→sw2.
/// In the credit direction, flows 1..N's credits are thinned at the
/// sw2→sw1 meter before competing at sw1→sw0 with Flow 0's fresh credits —
/// so the naïve scheme over-serves Flow 0 (≈ half the link, regardless of
/// N), while the feedback loop converges toward max-min.
///
/// Hosts: N+1 senders on sw0, Flow 0's receiver on sw1, N receivers on sw2.
fn build_topo(n: usize, link_bps: u64) -> (Topology, Vec<HostId>, HostId, Vec<HostId>) {
    let mut b = TopoBuilder::new();
    let senders = b.add_hosts(n + 1); // on sw0 (last one is Flow 0's source)
    let f0_dst = b.add_hosts(1)[0]; // on sw1
    let receivers = b.add_hosts(n); // on sw2
    let sw0 = b.add_switch();
    let sw1 = b.add_switch();
    let sw2 = b.add_switch();
    for &h in &senders {
        b.connect(
            xpass_net::ids::NodeId::Host(h),
            xpass_net::ids::NodeId::Switch(sw0),
            link_bps,
            Dur::us(1),
        );
    }
    b.connect(
        xpass_net::ids::NodeId::Host(f0_dst),
        xpass_net::ids::NodeId::Switch(sw1),
        link_bps,
        Dur::us(1),
    );
    for &h in &receivers {
        b.connect(
            xpass_net::ids::NodeId::Host(h),
            xpass_net::ids::NodeId::Switch(sw2),
            link_bps,
            Dur::us(1),
        );
    }
    b.connect(
        xpass_net::ids::NodeId::Switch(sw0),
        xpass_net::ids::NodeId::Switch(sw1),
        link_bps,
        Dur::us(1),
    );
    b.connect(
        xpass_net::ids::NodeId::Switch(sw1),
        xpass_net::ids::NodeId::Switch(sw2),
        link_bps,
        Dur::us(1),
    );
    (b.build("multi-bottleneck"), senders, f0_dst, receivers)
}

fn measure(cfg: &Config, scheme: Scheme, n: usize) -> f64 {
    let (topo, senders, f0_dst, receivers) = build_topo(n, cfg.link_bps);
    let mut net = scheme.build(topo, cfg.link_bps, cfg.seed);
    let bytes = (cfg.link_bps / 8) * 2;
    let f0 = net.add_flow(senders[n], f0_dst, bytes, SimTime::ZERO);
    for i in 0..n {
        net.add_flow(senders[i], receivers[i], bytes, SimTime::ZERO);
    }
    net.run_until(SimTime::ZERO + cfg.warmup);
    let before = net.delivered_bytes(f0);
    net.run_until(SimTime::ZERO + cfg.warmup + cfg.window);
    (net.delivered_bytes(f0) - before) as f64 * 8.0 / cfg.window.as_secs_f64() / 1e9
}

/// Run both series.
pub fn run(cfg: &Config) -> Fig11 {
    let schemes = [
        (
            "w/ feedback",
            Scheme::XPass(expresspass::XPassConfig::aggressive()),
        ),
        ("naive", Scheme::NaiveCredit),
    ];
    let max_data_gbps = cfg.link_bps as f64 * (1538.0 / 1622.0) * (1460.0 / 1538.0) / 1e9;
    let series = schemes
        .into_iter()
        .map(|(name, s)| Series {
            scheme: name,
            points: cfg
                .flow_counts
                .iter()
                .map(|&n| Point {
                    n,
                    flow0_gbps: measure(cfg, s, n),
                    ideal_gbps: max_data_gbps / (n + 1) as f64,
                })
                .collect(),
        })
        .collect();
    Fig11 { series }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["scheme".to_string()];
        for p in &self.series[0].points {
            headers.push(format!("N={}", p.n));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|s| {
                let mut row = vec![s.scheme.to_string()];
                row.extend(s.points.iter().map(|p| format!("{:.2}G", p.flow0_gbps)));
                row
            })
            .collect();
        let mut ideal = vec!["max-min ideal".to_string()];
        ideal.extend(
            self.series[0]
                .points
                .iter()
                .map(|p| format!("{:.2}G", p.ideal_gbps)),
        );
        rows.push(ideal);
        writeln!(f, "Fig 11: Flow 0 throughput vs competing flows")?;
        write!(f, "{}", text_table(&hdr_refs, &rows))
    }
}

use xpass_sim::json::Json;

impl Fig11 {
    /// Structured payload: flow-0 throughput vs the max-min ideal per
    /// bottleneck count, for every scheme series.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .with("n", Json::num_u64(p.n as u64))
                            .with("flow0_gbps", Json::Num(p.flow0_gbps))
                            .with("ideal_gbps", Json::Num(p.ideal_gbps))
                    })
                    .collect();
                Json::obj()
                    .with("scheme", Json::str(s.scheme))
                    .with("points", Json::Arr(points))
            })
            .collect();
        Json::obj().with("series", Json::Arr(series))
    }
}

/// Registry adapter: drives Fig 11 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig11"
    }
    fn describe(&self) -> &str {
        "multi-bottleneck fairness"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            flow_counts: vec![4, 16],
            warmup: Dur::ms(5),
            window: Dur::ms(5),
            ..Config::default()
        }
    }

    #[test]
    fn feedback_between_ideal_and_naive() {
        let r = run(&quick());
        let fb = &r.series[0].points;
        let naive = &r.series[1].points;
        for (a, b) in fb.iter().zip(naive.iter()) {
            // Flow 0 must not be starved below its max-min share…
            assert!(
                a.flow0_gbps > a.ideal_gbps * 0.7,
                "N={}: feedback flow0 {:.2} starved vs ideal {:.2}",
                a.n,
                a.flow0_gbps,
                a.ideal_gbps
            );
            // …and the naïve scheme over-serves it more than feedback does
            // (its credits are never thinned before the shared meter).
            assert!(
                b.flow0_gbps > a.flow0_gbps,
                "N={}: naive {:.2} should exceed feedback {:.2}",
                b.n,
                b.flow0_gbps,
                a.flow0_gbps
            );
        }
    }

    #[test]
    fn naive_overserves_flat_while_ideal_shrinks() {
        // The paper's Fig 11b: the naïve curve stays near C/2 regardless of
        // N while max-min drops as 1/(N+1).
        let r = run(&quick());
        let naive = &r.series[1].points;
        assert!(
            naive[1].flow0_gbps > naive[1].ideal_gbps * 2.0,
            "N={}: naive {:.2} vs ideal {:.2}",
            naive[1].n,
            naive[1].flow0_gbps,
            naive[1].ideal_gbps
        );
        let flat = naive[1].flow0_gbps / naive[0].flow0_gbps;
        assert!((0.5..1.6).contains(&flat), "naive not flat: {flat}");
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("max-min ideal"));
    }
}
