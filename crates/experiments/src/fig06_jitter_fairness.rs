//! Fig 6(a) — credit pacing jitter vs fairness on drop-tail credit queues.
//!
//! N concurrent ExpressPass flows share one bottleneck; the credit queues
//! use plain **drop-tail** overflow (the commodity-switch behaviour) and the
//! host-side pacing jitter `j` is swept. Perfect pacing (j = 0) synchronizes
//! credit arrivals and skews drops badly; tens of nanoseconds of jitter
//! restore fairness — the result that motivates §3.1's jitter mechanism.

use crate::harness::text_table;
use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::{HostDelayModel, NetConfig};
use xpass_net::ids::HostId;
use xpass_net::network::Network;
use xpass_net::queue::CreditDropPolicy;
use xpass_net::topology::Topology;
use xpass_sim::stats::jain_fairness;
use xpass_sim::time::{Dur, SimTime};

/// Fig 6a configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Concurrent flow counts to test (paper: 1–1024).
    pub flow_counts: Vec<usize>,
    /// Jitter levels `j` relative to the inter-credit gap (paper: 0–0.08).
    pub jitters: Vec<f64>,
    /// Link speed.
    pub link_bps: u64,
    /// Fairness measurement interval (paper: 1 ms).
    pub interval: Dur,
    /// Warmup before measuring.
    pub warmup: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            flow_counts: vec![4, 16, 64, 128],
            jitters: vec![0.0, 0.01, 0.02, 0.04, 0.08],
            link_bps: 10_000_000_000,
            interval: Dur::ms(5),
            warmup: Dur::ms(20),
            seed: 5,
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Concurrent flows.
    pub flows: usize,
    /// Jitter level j (`None` = uniform-random-drop reference run).
    pub jitter: Option<f64>,
    /// Jain's fairness index over the measurement interval.
    pub fairness: f64,
}

/// Fig 6a result.
#[derive(Clone, Debug)]
pub struct Fig6a {
    /// All points (flows × jitters).
    pub points: Vec<Point>,
}

fn measure(cfg: &Config, n: usize, j: Option<f64>) -> f64 {
    let topo = Topology::dumbbell(n, cfg.link_bps, Dur::us(8));
    let mut net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
    // The droptail behaviour under test; also disable the credit-size
    // randomization and host jitter so pacing jitter is the only source of
    // randomness in credit arrival order.
    net_cfg.credit_drop = match j {
        Some(_) => CreditDropPolicy::Tail,
        None => CreditDropPolicy::UniformRandom,
    };
    net_cfg.host_delay = HostDelayModel {
        min: Dur::us(1),
        max: Dur::us(1),
    };
    let mut xp = XPassConfig::aggressive().with_jitter(j.unwrap_or(0.05));
    xp.randomize_credit_size = false;
    let mut net = Network::new(topo, net_cfg, xpass_factory(xp));
    let bytes = cfg.link_bps / 8;
    let flows: Vec<_> = (0..n)
        .map(|i| {
            net.add_flow(
                HostId(i as u32),
                HostId((n + i) as u32),
                bytes,
                SimTime::ZERO,
            )
        })
        .collect();
    net.run_until(SimTime::ZERO + cfg.warmup);
    let before: Vec<u64> = flows.iter().map(|&f| net.delivered_bytes(f)).collect();
    net.run_until(SimTime::ZERO + cfg.warmup + cfg.interval);
    let deltas: Vec<f64> = flows
        .iter()
        .zip(before)
        .map(|(&f, b)| (net.delivered_bytes(f) - b) as f64)
        .collect();
    jain_fairness(&deltas)
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Fig6a {
    let mut points = Vec::new();
    for &n in &cfg.flow_counts {
        for &j in &cfg.jitters {
            points.push(Point {
                flows: n,
                jitter: Some(j),
                fairness: measure(cfg, n, Some(j)),
            });
        }
        // Reference: the uniform-random drop policy the rest of the
        // reproduction uses (the behaviour the paper's jitter approximates).
        points.push(Point {
            flows: n,
            jitter: None,
            fairness: measure(cfg, n, None),
        });
    }
    Fig6a { points }
}

impl fmt::Display for Fig6a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut jitters: Vec<Option<f64>> = Vec::new();
        for p in &self.points {
            if !jitters.contains(&p.jitter) {
                jitters.push(p.jitter);
            }
        }
        let mut headers = vec!["flows".to_string()];
        headers.extend(jitters.iter().map(|j| match j {
            Some(j) => format!("j={j}"),
            None => "rand-drop".to_string(),
        }));
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        let mut flows: Vec<usize> = Vec::new();
        for p in &self.points {
            if !flows.contains(&p.flows) {
                flows.push(p.flows);
            }
        }
        for n in flows {
            let mut row = vec![n.to_string()];
            for p in self.points.iter().filter(|p| p.flows == n) {
                row.push(format!("{:.3}", p.fairness));
            }
            rows.push(row);
        }
        writeln!(
            f,
            "Fig 6a: Jain fairness vs pacing jitter (drop-tail credit queues)"
        )?;
        write!(f, "{}", text_table(&hdr_refs, &rows))
    }
}

use xpass_sim::json::Json;

impl Fig6a {
    /// Structured payload: Jain index per (flows, jitter) point. `jitter`
    /// is `null` for the uniform-random-drop reference runs.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .with("flows", Json::num_u64(p.flows as u64))
                    .with("jitter", crate::experiment::json_opt_f64(p.jitter))
                    .with("fairness", Json::Num(p.fairness))
            })
            .collect();
        Json::obj().with("points", Json::Arr(points))
    }
}

/// Registry adapter: drives Fig 6a through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig06"
    }
    fn describe(&self) -> &str {
        "pacing jitter vs credit-drop fairness"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Config {
        Config {
            flow_counts: vec![16],
            jitters: vec![0.0, 0.08],
            ..Config::default()
        }
    }

    #[test]
    fn jitter_improves_droptail_fairness() {
        // The figure's claims: perfect pacing over drop-tail credit queues
        // is unfair, and small pacing jitter restores most of the fairness;
        // the uniform-random-drop reference is comparably fair.
        let r = run(&quick_cfg());
        let j0 = r.points[0].fairness;
        let j_hi = r
            .points
            .iter()
            .filter(|p| p.jitter == Some(0.08))
            .map(|p| p.fairness)
            .next()
            .unwrap();
        let rand = r
            .points
            .iter()
            .find(|p| p.jitter.is_none())
            .unwrap()
            .fairness;
        assert!(j_hi > j0, "j=0.08 {j_hi:.3} not above j=0 {j0:.3}");
        assert!(j_hi > 0.7, "jittered fairness {j_hi:.3}");
        assert!(rand > 0.7, "random-drop fairness {rand:.3}");
    }

    #[test]
    fn renders() {
        let s = run(&quick_cfg()).to_string();
        assert!(s.contains("Fig 6a"));
        assert!(s.contains("j=0.08"));
    }
}
