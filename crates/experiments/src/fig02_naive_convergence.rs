//! Fig 2 — convergence time of the naïve credit scheme vs TCP CUBIC vs
//! DCTCP (testbed experiment, reproduced in the simulator): a second flow
//! joins a saturated 10 G bottleneck, and we measure how long it takes to
//! reach its fair share. The paper reports ~25 µs for the naïve credit
//! scheme, 47 ms for CUBIC, and 70 ms for DCTCP.

use crate::harness::{convergence_time, convergence_time_cumulative, text_table, Scheme};
use std::fmt;
use xpass_net::ids::HostId;
use xpass_sim::time::{Dur, SimTime};

/// Fig 2 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Link speed.
    pub link_bps: u64,
    /// Per-link propagation delay (the testbed's RTT is ~25 µs).
    pub prop: Dur,
    /// Time the second flow joins.
    pub join_at: Dur,
    /// How long to run after the join.
    pub window: Dur,
    /// Throughput sample interval.
    pub sample: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            link_bps: 10_000_000_000,
            prop: Dur::us(10),
            join_at: Dur::ms(5),
            window: Dur::ms(1000),
            sample: Dur::us(65),
            seed: 3,
        }
    }
}

/// Per-scheme outcome.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scheme name.
    pub scheme: &'static str,
    /// Time from join to sustained fair share, if reached.
    pub convergence: Option<Dur>,
}

/// Fig 2 result.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// Naïve credit, CUBIC, DCTCP rows.
    pub rows: Vec<Row>,
}

/// Measure convergence of one scheme.
pub fn run_scheme(cfg: &Config, scheme: Scheme) -> Option<Dur> {
    let topo = xpass_net::topology::Topology::dumbbell(2, cfg.link_bps, cfg.prop);
    let mut net = scheme.build(topo, cfg.link_bps, cfg.seed);
    net.set_sample_interval(cfg.sample);
    // Long-running flows (sized to outlast the window).
    let bytes = cfg.link_bps / 8;
    net.add_flow(HostId(0), HostId(2), bytes, SimTime::ZERO);
    let join = SimTime::ZERO + cfg.join_at;
    let late = net.add_flow(HostId(1), HostId(3), bytes, join);
    net.track_flow(late);
    net.run_until(join + cfg.window);
    // Fair share for the late flow ≈ half the data capacity.
    let eff = match scheme {
        Scheme::XPass(_) | Scheme::NaiveCredit => 0.9482 * 1460.0 / 1538.0,
        _ => 1460.0 / 1538.0,
    };
    let fair = cfg.link_bps as f64 / 2.0 * eff / 1e9;
    match scheme {
        // Loss-based TCPs keep a deep sawtooth around fairness: use the
        // smooth cumulative-average metric.
        Scheme::Cubic | Scheme::Reno => convergence_time_cumulative(&net, late, join, fair, 0.30),
        _ => convergence_time(&net, late, join, fair, 0.35, 20),
    }
}

/// Run the three-scheme comparison.
pub fn run(cfg: &Config) -> Fig2 {
    let schemes = [
        ("NaiveCredit", Scheme::NaiveCredit),
        ("CUBIC", Scheme::Cubic),
        ("DCTCP", Scheme::Dctcp),
    ];
    let rows = schemes
        .into_iter()
        .map(|(name, s)| Row {
            scheme: name,
            convergence: run_scheme(cfg, s),
        })
        .collect();
    Fig2 { rows }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.to_string(),
                    r.convergence
                        .map(|d| format!("{d}"))
                        .unwrap_or_else(|| "not converged".into()),
                ]
            })
            .collect();
        writeln!(f, "Fig 2: time for a joining flow to reach fair share")?;
        write!(f, "{}", text_table(&["Scheme", "Convergence"], &rows))
    }
}

use xpass_sim::json::Json;

impl Fig2 {
    /// Structured payload: per-scheme convergence time (seconds, `null`
    /// when the flow never reached its fair share in the window).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj().with("scheme", Json::str(r.scheme)).with(
                    "convergence_s",
                    crate::experiment::json_opt_secs(r.convergence),
                )
            })
            .collect();
        Json::obj().with("rows", Json::Arr(rows))
    }
}

/// Registry adapter: drives Fig 2 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig02"
    }
    fn describe(&self) -> &str {
        "naive credit vs CUBIC vs DCTCP convergence"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_credit_converges_orders_of_magnitude_faster() {
        let cfg = Config::default();
        let r = run(&cfg);
        let naive = r.rows[0].convergence.expect("naive converges");
        let dctcp = r.rows[2].convergence.expect("dctcp converges");
        // Paper: 25us vs 70ms (~2800x). Require ≥ 20x in the scaled run.
        assert!(
            dctcp.as_ps() > naive.as_ps() * 20,
            "naive {naive} vs dctcp {dctcp}"
        );
        // Naïve credit converges within a few RTTs (~25us in the paper).
        assert!(naive < Dur::ms(2), "naive {naive}");
    }

    #[test]
    fn cubic_slower_than_naive() {
        let cfg = Config::default();
        let naive = run_scheme(&cfg, Scheme::NaiveCredit).unwrap();
        let cubic = run_scheme(&cfg, Scheme::Cubic).expect("cubic converges");
        assert!(cubic >= naive * 2, "cubic {cubic} vs naive {naive}");
    }
}
