//! Link-failure recovery — robustness companion to Fig 16's convergence
//! study: how fast does ExpressPass re-converge after a mid-run fault, and
//! does the zero-data-loss property survive a disturbance of the credit
//! class alone?
//!
//! Two scenarios, both driven by a deterministic [`FaultPlan`]:
//!
//! * **Credit-class disturbance** — long flows across a dumbbell
//!   bottleneck; mid-run, both directions of the bottleneck cable start
//!   dropping a large fraction of *credit* packets (data untouched). The
//!   feedback loop throttles, and once the loss clears the recovery-reset
//!   `w` closes the gap to the ceiling in a few RTTs. Because only credits
//!   were disturbed, the run must end with **zero data-queue drops** — the
//!   paper's core invariant under credit starvation.
//! * **Link down/up** — cross-pod flows on a k-ary fat tree; one ToR–agg
//!   cable goes down (queues frozen) and later comes back. ECMP re-hashes
//!   around the dead cable, go-back-N repairs in-flight data lost on the
//!   wire, and every flow still completes.
//!
//! A third check runs the credit scenario twice with the same seed and
//! asserts bit-identical counters and flow records — the deterministic
//! replay guarantee of the fault layer.

use crate::harness::text_table;
use expresspass::{xpass_factory, XPassConfig};
use std::fmt;
use xpass_net::config::NetConfig;
use xpass_net::faults::FaultPlan;
use xpass_net::ids::{HostId, NodeId, SwitchId};
use xpass_net::network::{Counters, FlowRecord, Network};
use xpass_net::topology::Topology;
use xpass_sim::time::{Dur, SimTime};

/// Fault-recovery experiment configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Sender/receiver pairs across the dumbbell bottleneck.
    pub n_pairs: usize,
    /// Link speed everywhere (dumbbell) / host speed (fat tree).
    pub speed_bps: u64,
    /// When the fault is injected.
    pub fault_at: Dur,
    /// When the fault clears.
    pub fault_clear: Dur,
    /// Observation end (credit scenario runs exactly this long).
    pub end: Dur,
    /// Credit loss probability on the disturbed bottleneck.
    pub credit_loss: f64,
    /// Sampling interval for the goodput series.
    pub sample: Dur,
    /// Startup transient excluded from the pre-fault goodput mean.
    pub sample_warmup: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            n_pairs: 4,
            speed_bps: 10_000_000_000,
            fault_at: Dur::ms(5),
            fault_clear: Dur::ms(10),
            end: Dur::ms(16),
            credit_loss: 0.8,
            sample: Dur::us(100),
            sample_warmup: Dur::ms(2),
            seed: 61,
        }
    }
}

/// Result of both scenarios.
#[derive(Clone, Debug)]
pub struct FaultRecovery {
    /// Aggregate goodput before the fault (Gbps, mean over the pre-window).
    pub pre_gbps: f64,
    /// Aggregate goodput while the credit class is disturbed.
    pub during_gbps: f64,
    /// Aggregate goodput after the fault cleared.
    pub post_gbps: f64,
    /// Time from fault-clear until aggregate goodput is back within 90 % of
    /// the pre-fault mean (3 consecutive samples); `None` = never in window.
    pub reconvergence: Option<Dur>,
    /// Data-queue drops in the credit scenario (must be 0).
    pub credit_data_drops: u64,
    /// Counters of the credit scenario.
    pub credit_counters: Counters,
    /// Completed flows in the link-failure scenario.
    pub linkfail_completed: usize,
    /// Total flows in the link-failure scenario.
    pub linkfail_total: usize,
    /// Counters of the link-failure scenario.
    pub linkfail_counters: Counters,
    /// Replays of the credit scenario were bit-identical.
    pub deterministic: bool,
}

/// Build and run the credit-class disturbance scenario once.
fn run_credit_scenario(cfg: &Config) -> (Network, Vec<xpass_net::ids::FlowId>) {
    let topo = Topology::dumbbell(cfg.n_pairs, cfg.speed_bps, Dur::us(1));
    let fwd = topo
        .dlink_between(NodeId::Switch(SwitchId(0)), NodeId::Switch(SwitchId(1)))
        .expect("dumbbell bottleneck");
    let rev = topo
        .dlink_between(NodeId::Switch(SwitchId(1)), NodeId::Switch(SwitchId(0)))
        .expect("dumbbell bottleneck reverse");
    let net_cfg = NetConfig::expresspass().with_seed(cfg.seed);
    let mut net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    net.set_sample_interval(cfg.sample);
    let t0 = SimTime::ZERO;
    let bytes = cfg.speed_bps / 8; // 1 s of traffic: outlives the window
    let mut flows = Vec::new();
    for i in 0..cfg.n_pairs {
        let f = net.add_flow(
            HostId(i as u32),
            HostId((cfg.n_pairs + i) as u32),
            bytes,
            t0,
        );
        net.track_flow(f);
        flows.push(f);
    }
    // Disturb ONLY the credit class, both directions for symmetry.
    net.install_fault_plan(
        FaultPlan::new()
            .set_loss(t0 + cfg.fault_at, fwd, 0.0, cfg.credit_loss)
            .set_loss(t0 + cfg.fault_at, rev, 0.0, cfg.credit_loss)
            .set_loss(t0 + cfg.fault_clear, fwd, 0.0, 0.0)
            .set_loss(t0 + cfg.fault_clear, rev, 0.0, 0.0),
    );
    net.run_until(t0 + cfg.end);
    (net, flows)
}

/// Aggregate tracked-flow goodput per sample instant.
fn aggregate_series(net: &Network, flows: &[xpass_net::ids::FlowId]) -> Vec<(SimTime, f64)> {
    let mut agg: Vec<(SimTime, f64)> = Vec::new();
    for (fi, f) in flows.iter().enumerate() {
        let series = net.flow_series(*f).expect("tracked");
        for (i, &(t, v)) in series.samples.iter().enumerate() {
            if fi == 0 {
                agg.push((t, v));
            } else if let Some(slot) = agg.get_mut(i) {
                debug_assert_eq!(slot.0, t, "sample instants align across flows");
                slot.1 += v;
            }
        }
    }
    agg
}

fn mean_in(agg: &[(SimTime, f64)], from: SimTime, to: SimTime) -> f64 {
    let vals: Vec<f64> = agg
        .iter()
        .filter(|&&(t, _)| t > from && t <= to)
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Run both scenarios plus the determinism replay.
pub fn run(cfg: &Config) -> FaultRecovery {
    // --- credit-class disturbance -------------------------------------
    let (net, flows) = run_credit_scenario(cfg);
    let agg = aggregate_series(&net, &flows);
    let t0 = SimTime::ZERO;
    let pre_gbps = mean_in(&agg, t0 + cfg.sample_warmup, t0 + cfg.fault_at);
    let during_gbps = mean_in(&agg, t0 + cfg.fault_at, t0 + cfg.fault_clear);
    let post_gbps = mean_in(&agg, t0 + cfg.fault_clear, t0 + cfg.end);
    // Re-convergence: first of 3 consecutive post-clear samples at ≥ 90 %
    // of the pre-fault aggregate.
    let clear = t0 + cfg.fault_clear;
    let threshold = 0.9 * pre_gbps;
    let post: Vec<(SimTime, f64)> = agg.iter().filter(|&&(t, _)| t > clear).copied().collect();
    let mut reconvergence = None;
    let mut streak = 0usize;
    for &(t, v) in &post {
        if v >= threshold {
            streak += 1;
            if streak == 3 {
                // Anchor at the first sample of the streak.
                let third = t.since(clear);
                let back = cfg.sample * 2;
                reconvergence = Some(Dur((third.0).saturating_sub(back.0)));
                break;
            }
        } else {
            streak = 0;
        }
    }
    let credit_data_drops = net.total_data_drops();
    let credit_counters = net.counters().clone();
    let credit_records: Vec<FlowRecord> = net.flow_records();

    // --- determinism replay -------------------------------------------
    let (net2, _) = run_credit_scenario(cfg);
    let deterministic =
        *net2.counters() == credit_counters && net2.flow_records() == credit_records;

    // --- link down/up on a fat tree -----------------------------------
    let topo = Topology::fat_tree(4, cfg.speed_bps, 4 * cfg.speed_bps, Dur::us(1));
    // ToR 0 ↔ its first agg (pod 0): host 0's default uplink path. The
    // second agg keeps the pod connected while the cable is down.
    let tor0 = NodeId::Switch(SwitchId(0));
    let agg0 = NodeId::Switch(SwitchId(8));
    let up = topo.dlink_between(tor0, agg0).expect("tor-agg cable");
    let down = topo.dlink_between(agg0, tor0).expect("agg-tor cable");
    let net_cfg = NetConfig::expresspass().with_seed(cfg.seed ^ 1);
    let mut lf_net = Network::new(topo, net_cfg, xpass_factory(XPassConfig::aggressive()));
    // Cross-pod flows into and out of pod 0 so traffic crosses the cable.
    // Sized to outlive the fault window (≈10 ms at line rate), so every
    // flow experiences the outage and must recover.
    let pairs: &[(u32, u32)] = &[(0, 4), (1, 8), (5, 2), (12, 3)];
    let lf_bytes = cfg.speed_bps / 8 * cfg.fault_clear.as_ps() / 1_000_000_000_000;
    for &(s, d) in pairs {
        lf_net.add_flow(HostId(s), HostId(d), lf_bytes, SimTime::ZERO);
    }
    lf_net.install_fault_plan(
        FaultPlan::new()
            .cable_down(SimTime::ZERO + cfg.fault_at, up, down)
            .cable_up(SimTime::ZERO + cfg.fault_clear, up, down),
    );
    lf_net.run_until_done(SimTime::ZERO + Dur::secs(1));
    FaultRecovery {
        pre_gbps,
        during_gbps,
        post_gbps,
        reconvergence,
        credit_data_drops,
        credit_counters,
        linkfail_completed: lf_net.completed_count(),
        linkfail_total: pairs.len(),
        linkfail_counters: lf_net.counters().clone(),
        deterministic,
    }
}

impl fmt::Display for FaultRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault recovery: credit-class disturbance + ToR-agg link down/up"
        )?;
        let rows = vec![
            vec![
                "credit disturbance".into(),
                format!("{:.2} Gbps", self.pre_gbps),
                format!("{:.2} Gbps", self.during_gbps),
                format!("{:.2} Gbps", self.post_gbps),
                self.reconvergence
                    .map(|d| format!("{:.0} us", d.as_micros_f64()))
                    .unwrap_or_else(|| "> window".into()),
                format!("{} data drops", self.credit_data_drops),
            ],
            vec![
                "tor-agg down/up".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!(
                    "{}/{} completed",
                    self.linkfail_completed, self.linkfail_total
                ),
            ],
        ];
        write!(
            f,
            "{}",
            text_table(
                &["Scenario", "Pre", "During", "Post", "Reconverge", "Outcome"],
                &rows
            )
        )?;
        writeln!(
            f,
            "faults injected: {} (credit) + {} (linkfail); \
             credit pkts lost to faults: {}; deterministic replay: {}",
            self.credit_counters.faults_injected,
            self.linkfail_counters.faults_injected,
            self.credit_counters.pkts_lost_to_faults,
            if self.deterministic { "yes" } else { "NO" },
        )
    }
}

use xpass_sim::json::Json;

impl FaultRecovery {
    /// Structured payload: both scenarios' headline numbers plus the full
    /// counter sets (the determinism check rides along as a bool).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("pre_gbps", Json::Num(self.pre_gbps))
            .with("during_gbps", Json::Num(self.during_gbps))
            .with("post_gbps", Json::Num(self.post_gbps))
            .with(
                "reconvergence_s",
                crate::experiment::json_opt_secs(self.reconvergence),
            )
            .with("credit_data_drops", Json::num_u64(self.credit_data_drops))
            .with("credit_counters", self.credit_counters.to_json())
            .with(
                "linkfail_completed",
                Json::num_u64(self.linkfail_completed as u64),
            )
            .with("linkfail_total", Json::num_u64(self.linkfail_total as u64))
            .with("linkfail_counters", self.linkfail_counters.to_json())
            .with("deterministic", Json::Bool(self.deterministic))
    }
}

/// Registry adapter: drives the fault-recovery study through the
/// [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "faults"
    }
    fn describe(&self) -> &str {
        "fault injection: re-convergence after failures"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_disturbance_throttles_then_reconverges_with_zero_data_loss() {
        let r = run(&Config::default());
        // The fault must actually bite …
        assert!(
            r.during_gbps < 0.7 * r.pre_gbps,
            "fault did not throttle: pre {:.2} during {:.2}",
            r.pre_gbps,
            r.during_gbps
        );
        assert!(r.credit_counters.pkts_lost_to_faults > 0);
        assert_eq!(r.credit_counters.faults_injected, 4);
        // … yet with only the credit class disturbed, no data is ever lost.
        assert_eq!(r.credit_data_drops, 0, "data loss under credit-only fault");
        // And the feedback loop recovers quickly once the loss clears.
        let rec = r.reconvergence.expect("re-converges within window");
        assert!(
            rec < Dur::ms(3),
            "re-convergence took {:.0} us",
            rec.as_micros_f64()
        );
        assert!(
            r.post_gbps > 0.85 * r.pre_gbps,
            "post-fault goodput {:.2} vs pre {:.2}",
            r.post_gbps,
            r.pre_gbps
        );
    }

    #[test]
    fn link_failure_reroutes_and_all_flows_complete() {
        let r = run(&Config::default());
        assert_eq!(
            r.linkfail_completed, r.linkfail_total,
            "flows lost to link failure"
        );
        assert!(r.linkfail_counters.faults_injected >= 4);
    }

    #[test]
    fn replay_is_bit_identical() {
        let r = run(&Config::default());
        assert!(r.deterministic, "fault replay diverged");
    }
}
