//! The [`Experiment`] trait — one uniform interface over every paper
//! reproduction module.
//!
//! Each experiment module exposes an adapter type (conventionally named
//! `Exp`) that owns the module's config struct and implements
//! [`Experiment`]. The CLI and the test suite dispatch exclusively through
//! the trait (see [`crate::registry`]), so every experiment uniformly
//! supports seed overrides, paper-scale parameters, machine-readable JSON
//! output, and — where the module records events — structured tracing.
//!
//! Contract for implementors:
//!
//! * `run` must produce **exactly** the text the module's `Display` impl
//!   renders (the byte-identity fences in `tests/golden_tables.rs` pin
//!   this), plus a structured JSON payload mirroring the typed rows.
//! * `set_seed` threads a CLI `--seed` into the config; experiments whose
//!   output is seed-independent ignore it.
//! * `paper_scale_config` switches to the paper's full parameters and
//!   returns `true`, or returns `false` (config untouched) when the module
//!   has no separate paper scale.

use xpass_sim::json::Json;
use xpass_sim::trace::TraceSink;

/// What one experiment run produced.
pub struct ExperimentOutput {
    /// The human-readable table(s), exactly as `Display` renders them.
    pub text: String,
    /// Structured payload for `--json` records: the typed rows of the
    /// figure/table, plus counters/engine/health where the experiment
    /// captures them.
    pub json: Json,
}

impl ExperimentOutput {
    /// Bundle a displayable result with its JSON payload.
    pub fn new(text: impl Into<String>, json: Json) -> ExperimentOutput {
        ExperimentOutput {
            text: text.into(),
            json,
        }
    }
}

/// A paper experiment, runnable through the uniform registry pipeline.
///
/// `Send + Sync` so the CLI's `--jobs` worker pool can run experiments on
/// scoped threads (each run builds its own single-threaded engines).
pub trait Experiment: Send + Sync {
    /// Registry name (`fig10`, `table3`, `faults`, ...).
    fn name(&self) -> &str;

    /// One-line description shown by `--list`.
    fn describe(&self) -> &str;

    /// Reset to the scaled-down default configuration.
    fn default_config(&mut self) {}

    /// Switch to the paper's full-scale parameters. Returns `false` when
    /// the experiment has no separate paper scale (config unchanged).
    fn paper_scale_config(&mut self) -> bool {
        false
    }

    /// Override the RNG seed. No-op for seed-independent experiments
    /// (analytical tables such as `table1`/`fig05`).
    fn set_seed(&mut self, _seed: u64) {}

    /// Whether [`run`](Experiment::run) records events into a trace sink.
    fn traces(&self) -> bool {
        false
    }

    /// Execute the experiment. `trace` is installed into the simulated
    /// network(s) for the duration of the run when the experiment supports
    /// tracing ([`traces`](Experiment::traces)); other experiments drop it.
    fn run(&self, trace: Option<Box<dyn TraceSink>>) -> ExperimentOutput;
}

/// Serialize an optional duration as seconds (`null` when absent) —
/// shared shorthand for `to_json` impls.
pub fn json_opt_secs(d: Option<xpass_sim::time::Dur>) -> Json {
    match d {
        Some(d) => Json::Num(d.as_secs_f64()),
        None => Json::Null,
    }
}

/// Serialize an optional float (`null` when absent).
pub fn json_opt_f64(v: Option<f64>) -> Json {
    match v {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}
