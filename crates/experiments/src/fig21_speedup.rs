//! Fig 21 — FCT speed-up when link speed rises from 10 G to 40 G, per
//! scheme and size bucket. The paper: ExpressPass gains the most
//! (1.5–3.5×) thanks to speed-independent convergence; DCTCP under 2× for
//! small buckets; DX/HULL benefit least; RCP leads only on Web Server L
//! flows.

use crate::harness::{text_table, RealisticRun, Scheme, SizeBucket};
use std::fmt;
use xpass_workloads::Workload;

/// Fig 21 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workloads and flow counts.
    pub workloads: Vec<(Workload, usize)>,
    /// Schemes to compare.
    pub schemes: Vec<Scheme>,
    /// Target load.
    pub load: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 2000)],
            schemes: vec![
                Scheme::XPass(expresspass::XPassConfig::default()),
                Scheme::Rcp,
                Scheme::Dctcp,
                Scheme::Dx,
                Scheme::Hull,
            ],
            load: 0.6,
            seed: 67,
        }
    }
}

/// One (workload, scheme) row: avg-FCT speed-up per bucket.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme name.
    pub scheme: &'static str,
    /// Speed-up (10 G FCT / 40 G FCT) per bucket; NaN when a bucket is
    /// empty.
    pub speedup: [f64; 4],
}

/// Fig 21 result.
#[derive(Clone, Debug)]
pub struct Fig21 {
    /// All rows.
    pub rows: Vec<Row>,
}

/// Run the comparison.
pub fn run(cfg: &Config) -> Fig21 {
    let mut rows = Vec::new();
    for &(w, n) in &cfg.workloads {
        for &scheme in &cfg.schemes {
            let fct_at = |speed: u64| {
                RealisticRun {
                    workload: w,
                    load: cfg.load,
                    n_flows: n,
                    link_bps: speed,
                    scheme,
                    seed: cfg.seed,
                }
                .run()
                .fct
            };
            let slow = fct_at(10_000_000_000);
            let fast = fct_at(40_000_000_000);
            let speedup = SizeBucket::all().map(|b| {
                let s = slow.avg(b);
                let f = fast.avg(b);
                if s > 0.0 && f > 0.0 {
                    s / f
                } else {
                    f64::NAN
                }
            });
            rows.push(Row {
                workload: w.name(),
                scheme: scheme.name(),
                speedup,
            });
        }
    }
    Fig21 { rows }
}

impl fmt::Display for Fig21 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.workload.to_string(), r.scheme.to_string()];
                for s in r.speedup {
                    row.push(if s.is_nan() {
                        "-".into()
                    } else {
                        format!("{s:.2}x")
                    });
                }
                row
            })
            .collect();
        writeln!(f, "Fig 21: avg FCT speed-up of 40G over 10G")?;
        write!(
            f,
            "{}",
            text_table(&["Workload", "Scheme", "S", "M", "L", "XL"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Fig21 {
    /// Structured payload: per-bucket speed-ups per (workload, scheme)
    /// row. Empty buckets (NaN speed-up) serialize as `null`.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let speedup = r
                    .speedup
                    .iter()
                    .map(|&s| if s.is_nan() { Json::Null } else { Json::Num(s) })
                    .collect();
                Json::obj()
                    .with("workload", Json::str(r.workload))
                    .with("scheme", Json::str(r.scheme))
                    .with("speedup", Json::Arr(speedup))
            })
            .collect();
        Json::obj().with("rows", Json::Arr(rows))
    }
}

/// Registry adapter: drives Fig 21 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig21"
    }
    fn describe(&self) -> &str {
        "40G-over-10G FCT speed-up"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            workloads: vec![(Workload::WebServer, 800)],
            schemes: vec![
                Scheme::XPass(expresspass::XPassConfig::default()),
                Scheme::Dctcp,
            ],
            ..Config::default()
        }
    }

    #[test]
    fn speedups_are_positive_and_bounded() {
        let r = run(&quick());
        for row in &r.rows {
            for (i, s) in row.speedup.iter().enumerate() {
                if s.is_nan() {
                    continue;
                }
                assert!(
                    (0.4..8.0).contains(s),
                    "{} bucket {i}: speedup {s}",
                    row.scheme
                );
            }
        }
    }

    #[test]
    fn larger_buckets_gain_more_than_small_for_xpass() {
        // Small flows are RTT-bound: speedup less than L flows' (paper).
        let r = run(&quick());
        let xp = &r.rows[0];
        if !xp.speedup[0].is_nan() && !xp.speedup[2].is_nan() {
            assert!(
                xp.speedup[2] >= xp.speedup[0] * 0.6,
                "S {} vs L {}",
                xp.speedup[0],
                xp.speedup[2]
            );
        }
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 21"));
    }
}
