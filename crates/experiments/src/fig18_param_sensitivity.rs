//! Fig 18 — parameter sensitivity: 99th-percentile FCT of short (S) and
//! large (L) flows under realistic workloads, for (α, w_init) pairs from
//! (1/2, 1/2) down to (1/32, 1/32). Small α improves large flows (less
//! credit waste from mice) at the cost of short-flow FCT; the paper picks
//! (1/16, 1/16).

use crate::harness::{fmt_secs, text_table, RealisticRun, Scheme, SizeBucket};
use expresspass::XPassConfig;
use std::fmt;
use xpass_workloads::Workload;

/// Fig 18 configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// (α, w_init) pairs, in the paper's order.
    pub params: Vec<(f64, f64)>,
    /// Workload and flow count.
    pub workload: Workload,
    /// Flows per run.
    pub n_flows: usize,
    /// Target load.
    pub load: f64,
    /// Link speed.
    pub link_bps: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            params: vec![
                (0.5, 0.5),
                (1.0 / 16.0, 0.5),
                (1.0 / 16.0, 1.0 / 16.0),
                (1.0 / 32.0, 1.0 / 16.0),
                (1.0 / 32.0, 1.0 / 32.0),
            ],
            workload: Workload::CacheFollower,
            n_flows: 1000,
            load: 0.6,
            link_bps: 10_000_000_000,
            seed: 59,
        }
    }
}

/// One parameter point.
#[derive(Clone, Debug)]
pub struct Row {
    /// (α, w_init).
    pub alpha: f64,
    /// w_init.
    pub w_init: f64,
    /// 99% FCT of S flows (s).
    pub p99_s: f64,
    /// 99% FCT of L flows (s).
    pub p99_l: f64,
    /// Credit waste ratio for context.
    pub waste: f64,
}

/// Fig 18 result.
#[derive(Clone, Debug)]
pub struct Fig18 {
    /// Rows in sweep order.
    pub rows: Vec<Row>,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Fig18 {
    let rows = cfg
        .params
        .iter()
        .map(|&(alpha, w_init)| {
            let xp = XPassConfig::default().with_alpha_winit(alpha, w_init);
            let r = RealisticRun {
                workload: cfg.workload,
                load: cfg.load,
                n_flows: cfg.n_flows,
                link_bps: cfg.link_bps,
                scheme: Scheme::XPass(xp),
                seed: cfg.seed,
            }
            .run();
            let mut fct = r.fct.clone();
            Row {
                alpha,
                w_init,
                p99_s: fct.p99(SizeBucket::S),
                p99_l: fct.p99(SizeBucket::L),
                waste: if r.credits_sent > 0 {
                    r.credits_wasted as f64 / r.credits_sent as f64
                } else {
                    0.0
                },
            }
        })
        .collect();
    Fig18 { rows }
}

impl fmt::Display for Fig18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("1/{:.0}", 1.0 / r.alpha),
                    format!("1/{:.0}", 1.0 / r.w_init),
                    fmt_secs(r.p99_s),
                    fmt_secs(r.p99_l),
                    format!("{:.1}%", r.waste * 100.0),
                ]
            })
            .collect();
        writeln!(f, "Fig 18: 99%-ile FCT vs (alpha, w_init)")?;
        write!(
            f,
            "{}",
            text_table(&["alpha", "w_init", "S p99", "L p99", "waste"], &rows)
        )
    }
}

use xpass_sim::json::Json;

impl Fig18 {
    /// Structured payload: short/large p99 FCTs and waste per (α, w_init).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .with("alpha", Json::Num(r.alpha))
                    .with("w_init", Json::Num(r.w_init))
                    .with("p99_s_s", Json::Num(r.p99_s))
                    .with("p99_l_s", Json::Num(r.p99_l))
                    .with("waste", Json::Num(r.waste))
            })
            .collect();
        Json::obj().with("rows", Json::Arr(rows))
    }
}

/// Registry adapter: drives Fig 18 through the [`crate::Experiment`] trait.
#[derive(Default)]
pub struct Exp(Config);

impl crate::Experiment for Exp {
    fn name(&self) -> &str {
        "fig18"
    }
    fn describe(&self) -> &str {
        "(alpha, w_init) sensitivity"
    }
    fn default_config(&mut self) {
        self.0 = Config::default();
    }
    fn set_seed(&mut self, seed: u64) {
        self.0.seed = seed;
    }
    fn run(&self, _trace: Option<Box<dyn xpass_sim::trace::TraceSink>>) -> crate::ExperimentOutput {
        let r = run(&self.0);
        crate::ExperimentOutput::new(r.to_string(), r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            params: vec![(0.5, 0.5), (1.0 / 16.0, 1.0 / 16.0)],
            n_flows: 400,
            ..Config::default()
        }
    }

    #[test]
    fn smaller_alpha_reduces_waste() {
        let r = run(&quick());
        assert!(
            r.rows[1].waste < r.rows[0].waste,
            "waste: α=1/2 {:.3} vs α=1/16 {:.3}",
            r.rows[0].waste,
            r.rows[1].waste
        );
    }

    #[test]
    fn all_runs_complete() {
        let r = run(&quick());
        for row in &r.rows {
            assert!(row.p99_s > 0.0, "S p99 missing");
            assert!(row.p99_l > 0.0, "L p99 missing");
        }
    }

    #[test]
    fn renders() {
        assert!(run(&quick()).to_string().contains("Fig 18"));
    }
}
