//! Global byte/packet conservation ledger.
//!
//! With a ledger installed
//! ([`Network::install_ledger`](crate::network::Network::install_ledger)),
//! every packet a host NIC emits is tracked to one of five terminal
//! accounts, and at any observation point the books must balance:
//!
//! ```text
//! emitted = delivered            (reached an endpoint or absorbed at a host)
//!         + queue_dropped        (tail-dropped at a data or credit queue)
//!         + fault_lost           (dead links, random loss, flushed backlogs,
//!                                 routing dead-ends)
//!         + corrupted            (CRC-dropped by an injected fault)
//!         + in_flight            (on a wire or in host processing delay)
//!         + queued               (sitting in a port queue)
//!         + stashed              (held by a host-pause fault)
//! ```
//!
//! — in packets *and* in wire bytes. Any imbalance means the simulator
//! leaked or double-counted a packet, and surfaces as a failed
//! [`LedgerReport::balanced`] check folded into the run's
//! [`HealthReport`](crate::health::HealthReport).
//!
//! The first five accounts are running counters maintained at the exact
//! points where a packet's fate is decided; `in_flight` counts packets
//! inside scheduled `Arrive`/`HostRx` events, and `queued`/`stashed` are
//! snapshots of port queues and pause stashes taken when the report is
//! built. Install the ledger **before** running the network — packets
//! already in flight at installation time were never credited to `emitted`
//! and would unbalance the books.
//!
//! Like tracing, faults, and invariant monitors, the ledger is
//! `Option`-gated and observation-only: it never touches the RNG or the
//! event queue, so ledger-free runs are byte-identical with or without this
//! module compiled in.

use xpass_sim::json::Json;

/// One account of the ledger: a packet count and a wire-byte count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Packets.
    pub pkts: u64,
    /// Wire bytes.
    pub bytes: u64,
}

impl LedgerEntry {
    fn add(&mut self, size: u32) {
        self.pkts += 1;
        self.bytes += size as u64;
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("pkts", Json::num_u64(self.pkts))
            .with("bytes", Json::num_u64(self.bytes))
    }
}

/// Running conservation state held by the network while a ledger is
/// installed. Snapshot accounts (`queued`, `stashed`) live only on the
/// [`LedgerReport`].
#[derive(Clone, Debug, Default)]
pub(crate) struct Ledger {
    pub emitted: LedgerEntry,
    pub delivered: LedgerEntry,
    pub queue_dropped: LedgerEntry,
    pub fault_lost: LedgerEntry,
    pub corrupted: LedgerEntry,
    /// Packets inside scheduled `Arrive`/`HostRx` events (wire propagation
    /// or host processing delay). Maintained as a running balance.
    pub in_flight: LedgerEntry,
}

impl Ledger {
    /// A host NIC emitted a packet.
    #[inline]
    pub fn emit(&mut self, size: u32) {
        self.emitted.add(size);
    }

    /// A packet reached its terminal host (endpoint delivery or absorption).
    #[inline]
    pub fn deliver(&mut self, size: u32) {
        self.delivered.add(size);
    }

    /// A packet was tail-dropped at a port queue (`size` is the victim's —
    /// for credit queues possibly an evicted resident, not the arrival).
    #[inline]
    pub fn queue_drop(&mut self, size: u32) {
        self.queue_dropped.add(size);
    }

    /// A packet was lost to an injected fault.
    #[inline]
    pub fn fault_loss(&mut self, size: u32) {
        self.fault_lost.add(size);
    }

    /// A whole backlog was flushed by a fault (counts are aggregates).
    #[inline]
    pub fn fault_loss_bulk(&mut self, pkts: u64, bytes: u64) {
        self.fault_lost.pkts += pkts;
        self.fault_lost.bytes += bytes;
    }

    /// A packet was CRC-dropped by an injected corruption fault.
    #[inline]
    pub fn corrupt(&mut self, size: u32) {
        self.corrupted.add(size);
    }

    /// A packet entered a scheduled `Arrive`/`HostRx` event.
    #[inline]
    pub fn flight_begin(&mut self, size: u32) {
        self.in_flight.add(size);
    }

    /// A scheduled `Arrive`/`HostRx` event was handled.
    #[inline]
    pub fn flight_end(&mut self, size: u32) {
        self.in_flight.pkts = self.in_flight.pkts.saturating_sub(1);
        self.in_flight.bytes = self.in_flight.bytes.saturating_sub(size as u64);
    }
}

impl xpass_sim::Snapshot for LedgerEntry {
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        w.u64(self.pkts);
        w.u64(self.bytes);
    }
}

impl xpass_sim::Restore for LedgerEntry {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.pkts = r.u64()?;
        self.bytes = r.u64()?;
        Ok(())
    }
}

impl xpass_sim::Snapshot for Ledger {
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        self.emitted.snap(w);
        self.delivered.snap(w);
        self.queue_dropped.snap(w);
        self.fault_lost.snap(w);
        self.corrupted.snap(w);
        self.in_flight.snap(w);
    }
}

impl xpass_sim::Restore for Ledger {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.emitted.restore(r)?;
        self.delivered.restore(r)?;
        self.queue_dropped.restore(r)?;
        self.fault_lost.restore(r)?;
        self.corrupted.restore(r)?;
        self.in_flight.restore(r)
    }
}

/// Conservation snapshot: the running accounts plus the residual ones
/// (`queued`, `stashed`) measured at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LedgerReport {
    /// Packets emitted by host NICs.
    pub emitted: LedgerEntry,
    /// Packets that reached a terminal host.
    pub delivered: LedgerEntry,
    /// Packets tail-dropped at data/credit queues.
    pub queue_dropped: LedgerEntry,
    /// Packets lost to injected faults.
    pub fault_lost: LedgerEntry,
    /// Packets CRC-dropped by injected corruption.
    pub corrupted: LedgerEntry,
    /// Packets on a wire or in host processing at snapshot time.
    pub in_flight: LedgerEntry,
    /// Packets sitting in port queues at snapshot time.
    pub queued: LedgerEntry,
    /// Packets held by host-pause stashes at snapshot time.
    pub stashed: LedgerEntry,
}

impl LedgerReport {
    /// Sum of every non-`emitted` account.
    fn accounted(&self) -> LedgerEntry {
        let parts = [
            self.delivered,
            self.queue_dropped,
            self.fault_lost,
            self.corrupted,
            self.in_flight,
            self.queued,
            self.stashed,
        ];
        let mut total = LedgerEntry::default();
        for p in parts {
            total.pkts += p.pkts;
            total.bytes += p.bytes;
        }
        total
    }

    /// True when every emitted packet (and byte) is accounted for.
    pub fn balanced(&self) -> bool {
        self.accounted() == self.emitted
    }

    /// Signed packet imbalance (`emitted − accounted`; nonzero = leak).
    pub fn imbalance_pkts(&self) -> i64 {
        self.emitted.pkts as i64 - self.accounted().pkts as i64
    }

    /// Render as a JSON object (one key per account, plus `balanced`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("emitted", self.emitted.to_json())
            .with("delivered", self.delivered.to_json())
            .with("queue_dropped", self.queue_dropped.to_json())
            .with("fault_lost", self.fault_lost.to_json())
            .with("corrupted", self.corrupted.to_json())
            .with("in_flight", self.in_flight.to_json())
            .with("queued", self.queued.to_json())
            .with("stashed", self.stashed.to_json())
            .with("balanced", Json::Bool(self.balanced()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn books_balance_when_every_packet_is_accounted() {
        let mut l = Ledger::default();
        l.emit(100);
        l.emit(84);
        l.emit(1538);
        l.flight_begin(100);
        l.flight_end(100);
        l.deliver(100);
        l.queue_drop(84);
        l.fault_loss(1538);
        let r = LedgerReport {
            emitted: l.emitted,
            delivered: l.delivered,
            queue_dropped: l.queue_dropped,
            fault_lost: l.fault_lost,
            corrupted: l.corrupted,
            in_flight: l.in_flight,
            ..LedgerReport::default()
        };
        assert!(r.balanced(), "{r:?}");
        assert_eq!(r.imbalance_pkts(), 0);
    }

    #[test]
    fn a_leaked_packet_unbalances_the_books() {
        let mut l = Ledger::default();
        l.emit(100);
        l.emit(100);
        l.deliver(100);
        // Second packet vanished without a terminal account.
        let r = LedgerReport {
            emitted: l.emitted,
            delivered: l.delivered,
            ..LedgerReport::default()
        };
        assert!(!r.balanced());
        assert_eq!(r.imbalance_pkts(), 1);
    }

    #[test]
    fn byte_mismatch_alone_is_detected() {
        // Right packet count, wrong bytes (e.g. a credit evicted for a
        // differently-sized one charged at the wrong size).
        let r = LedgerReport {
            emitted: LedgerEntry { pkts: 1, bytes: 92 },
            delivered: LedgerEntry { pkts: 1, bytes: 84 },
            ..LedgerReport::default()
        };
        assert!(!r.balanced());
        assert_eq!(r.imbalance_pkts(), 0, "packets match, bytes must not");
    }

    #[test]
    fn report_json_shape() {
        let r = LedgerReport {
            emitted: LedgerEntry {
                pkts: 2,
                bytes: 200,
            },
            delivered: LedgerEntry {
                pkts: 2,
                bytes: 200,
            },
            ..LedgerReport::default()
        };
        let j = xpass_sim::json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(j.get("balanced").unwrap().as_bool(), Some(true));
        assert_eq!(
            j.get("emitted").unwrap().get("pkts").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            j.get("delivered").unwrap().get("bytes").unwrap().as_u64(),
            Some(200)
        );
    }
}
