//! Symmetric flow hashing for deterministic ECMP (paper §3.1).
//!
//! ExpressPass requires **path symmetry**: a flow's data packets must traverse
//! the reverse of the path its credits took. On Clos topologies with ECMP
//! this is achieved with (a) a *symmetric* hash — the same value for both
//! directions of a flow — and (b) *deterministic* next-hop ordering — every
//! switch sorts its equal-cost next hops by neighbor address, so "the k-th
//! uplink" means topologically mirrored links at both ends.

use crate::ids::{FlowId, HostId};

/// A 64-bit symmetric flow hash: invariant under swapping source and
/// destination, and well-mixed via SplitMix64 finalization.
#[inline]
pub fn symmetric_flow_hash(a: HostId, b: HostId, flow: FlowId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    let x = ((lo as u64) << 40) ^ ((hi as u64) << 16) ^ flow.0 as u64;
    mix(x)
}

/// SplitMix64 finalizer: a cheap, statistically strong 64→64 bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Pick one of `n` equal-cost next hops for a flow. All switches use the
/// same function over the same sorted next-hop lists, which yields
/// deterministic, symmetric path selection.
#[inline]
pub fn ecmp_index(a: HostId, b: HostId, flow: FlowId, n: usize) -> usize {
    debug_assert!(n > 0);
    (symmetric_flow_hash(a, b, flow) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_symmetric() {
        for i in 0..100u32 {
            for j in 0..100u32 {
                let f = FlowId(i * 100 + j);
                assert_eq!(
                    symmetric_flow_hash(HostId(i), HostId(j), f),
                    symmetric_flow_hash(HostId(j), HostId(i), f),
                );
            }
        }
    }

    #[test]
    fn hash_depends_on_flow_id() {
        let h1 = symmetric_flow_hash(HostId(1), HostId(2), FlowId(1));
        let h2 = symmetric_flow_hash(HostId(1), HostId(2), FlowId(2));
        assert_ne!(h1, h2);
    }

    #[test]
    fn hash_depends_on_pair() {
        let h1 = symmetric_flow_hash(HostId(1), HostId(2), FlowId(1));
        let h2 = symmetric_flow_hash(HostId(1), HostId(3), FlowId(1));
        assert_ne!(h1, h2);
    }

    #[test]
    fn ecmp_index_spreads_roughly_evenly() {
        let n = 4;
        let mut counts = [0usize; 4];
        for f in 0..10_000u32 {
            counts[ecmp_index(HostId(1), HostId(2), FlowId(f), n)] += 1;
        }
        for &c in &counts {
            assert!((2000..3000).contains(&c), "uneven ECMP spread: {counts:?}");
        }
    }

    #[test]
    fn ecmp_index_symmetric_across_directions() {
        for f in 0..1000u32 {
            let fwd = ecmp_index(HostId(7), HostId(42), FlowId(f), 8);
            let rev = ecmp_index(HostId(42), HostId(7), FlowId(f), 8);
            assert_eq!(fwd, rev);
        }
    }
}
