//! Runtime invariant monitors: check the paper's core claims *during* a run.
//!
//! ExpressPass's headline properties are invariants, not averages: switch
//! data queues stay below the Table-1 network-calculus bound, and no data
//! packet is ever dropped. With an [`InvariantSpec`] installed
//! ([`Network::install_invariants`](crate::network::Network::install_invariants)),
//! the network checks both conditions at every switch-egress data enqueue,
//! surfaces violations as [`TraceEvent::InvariantViolation`] trace events
//! (when a sink is installed), and accumulates a structured [`HealthReport`].
//!
//! Like tracing and fault injection, monitoring is `Option`-gated: with no
//! spec installed the checks are a single `is_some()` test and runs are
//! byte-identical to an unmonitored simulator.

use crate::ledger::LedgerReport;
use xpass_sim::json::Json;
use xpass_sim::time::SimTime;
use xpass_sim::trace::TraceEvent;

/// What to monitor during a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct InvariantSpec {
    /// Assert every switch-egress data queue stays at or below this many
    /// bytes (the Table-1 bound for the topology's worst port).
    pub data_queue_bound_bytes: Option<u64>,
    /// Assert no data packet is tail-dropped at a switch egress queue.
    pub zero_data_loss: bool,
}

/// Structured outcome of the invariant monitors for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// True when monitors were installed (all other fields are meaningful
    /// only in that case).
    pub monitored: bool,
    /// The configured queue bound, if any.
    pub queue_bound_bytes: Option<u64>,
    /// Switch-egress data enqueues observed above the bound.
    pub queue_violations: u64,
    /// Time of the first queue-bound violation.
    pub first_queue_violation: Option<SimTime>,
    /// Peak switch-egress data-queue occupancy seen by the monitor, bytes.
    pub peak_switch_queue_bytes: u64,
    /// Data packets tail-dropped at switch egress queues (zero-loss
    /// violations when `zero_data_loss` was requested).
    pub loss_violations: u64,
    /// Time of the first data loss.
    pub first_loss: Option<SimTime>,
    /// Byte/packet conservation snapshot, when a ledger was installed
    /// ([`Network::install_ledger`](crate::network::Network::install_ledger));
    /// an unbalanced ledger fails [`ok`](Self::ok).
    pub ledger: Option<LedgerReport>,
}

impl HealthReport {
    /// True when every monitored invariant held for the whole run.
    pub fn ok(&self) -> bool {
        self.queue_violations == 0
            && self.loss_violations == 0
            && self.ledger.as_ref().is_none_or(LedgerReport::balanced)
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("monitored", Json::Bool(self.monitored))
            .with(
                "queue_bound_bytes",
                match self.queue_bound_bytes {
                    Some(b) => Json::num_u64(b),
                    None => Json::Null,
                },
            )
            .with("queue_violations", Json::num_u64(self.queue_violations))
            .with(
                "first_queue_violation_ps",
                match self.first_queue_violation {
                    Some(t) => Json::num_u64(t.as_ps()),
                    None => Json::Null,
                },
            )
            .with(
                "peak_switch_queue_bytes",
                Json::num_u64(self.peak_switch_queue_bytes),
            )
            .with("loss_violations", Json::num_u64(self.loss_violations))
            .with(
                "first_loss_ps",
                match self.first_loss {
                    Some(t) => Json::num_u64(t.as_ps()),
                    None => Json::Null,
                },
            )
            .with(
                "ledger",
                match self.ledger.as_ref() {
                    Some(l) => l.to_json(),
                    None => Json::Null,
                },
            )
            .with("ok", Json::Bool(self.ok()))
    }
}

/// Live monitor state held by the network while a spec is installed.
pub(crate) struct InvariantState {
    spec: InvariantSpec,
    /// Per-dlink: is this a switch egress port (the monitored set)?
    pub(crate) is_switch_egress: Vec<bool>,
    report: HealthReport,
}

impl InvariantState {
    pub(crate) fn new(spec: InvariantSpec, is_switch_egress: Vec<bool>) -> InvariantState {
        InvariantState {
            spec,
            is_switch_egress,
            report: HealthReport {
                monitored: true,
                queue_bound_bytes: spec.data_queue_bound_bytes,
                ..HealthReport::default()
            },
        }
    }

    pub(crate) fn report(&self) -> &HealthReport {
        &self.report
    }

    /// A data packet was accepted at a switch egress queue, leaving it at
    /// `qlen_bytes`. Returns a violation event when the bound is exceeded.
    pub(crate) fn on_switch_data_enqueue(
        &mut self,
        now: SimTime,
        dlink: u32,
        qlen_bytes: u64,
    ) -> Option<TraceEvent> {
        if qlen_bytes > self.report.peak_switch_queue_bytes {
            self.report.peak_switch_queue_bytes = qlen_bytes;
        }
        let bound = self.spec.data_queue_bound_bytes?;
        if qlen_bytes <= bound {
            return None;
        }
        self.report.queue_violations += 1;
        if self.report.first_queue_violation.is_none() {
            self.report.first_queue_violation = Some(now);
        }
        Some(TraceEvent::InvariantViolation {
            at: now,
            invariant: "data_queue_bound",
            dlink,
            observed: qlen_bytes,
            bound,
        })
    }

    /// A data packet was tail-dropped at a switch egress queue. Returns a
    /// violation event when zero-loss was requested.
    pub(crate) fn on_switch_data_drop(
        &mut self,
        now: SimTime,
        dlink: u32,
        bytes: u32,
    ) -> Option<TraceEvent> {
        if !self.spec.zero_data_loss {
            return None;
        }
        self.report.loss_violations += 1;
        if self.report.first_loss.is_none() {
            self.report.first_loss = Some(now);
        }
        Some(TraceEvent::InvariantViolation {
            at: now,
            invariant: "zero_data_loss",
            dlink,
            observed: bytes as u64,
            bound: 0,
        })
    }
}

impl xpass_sim::Snapshot for InvariantState {
    // The spec and switch-egress map are configuration; only the accumulated
    // violation counters carry over. The report's `ledger` field is filled
    // from the network's own ledger at report-build time, never here.
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        w.u64(self.report.queue_violations);
        w.opt(self.report.first_queue_violation.as_ref(), |w, t| {
            w.u64(t.0)
        });
        w.u64(self.report.peak_switch_queue_bytes);
        w.u64(self.report.loss_violations);
        w.opt(self.report.first_loss.as_ref(), |w, t| w.u64(t.0));
    }
}

impl xpass_sim::Restore for InvariantState {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.report.queue_violations = r.u64()?;
        self.report.first_queue_violation = r.opt(|r| Ok(SimTime(r.u64()?)))?;
        self.report.peak_switch_queue_bytes = r.u64()?;
        self.report.loss_violations = r.u64()?;
        self.report.first_loss = r.opt(|r| Ok(SimTime(r.u64()?)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bound_violations_accumulate() {
        let spec = InvariantSpec {
            data_queue_bound_bytes: Some(1000),
            zero_data_loss: true,
        };
        let mut st = InvariantState::new(spec, vec![true, false]);
        assert!(st.on_switch_data_enqueue(SimTime(1), 0, 900).is_none());
        let v = st.on_switch_data_enqueue(SimTime(2), 0, 1500).unwrap();
        match v {
            TraceEvent::InvariantViolation {
                invariant,
                observed,
                bound,
                ..
            } => {
                assert_eq!(invariant, "data_queue_bound");
                assert_eq!(observed, 1500);
                assert_eq!(bound, 1000);
            }
            other => panic!("{other:?}"),
        }
        assert!(st.on_switch_data_enqueue(SimTime(3), 0, 1600).is_some());
        let r = st.report();
        assert!(!r.ok());
        assert_eq!(r.queue_violations, 2);
        assert_eq!(r.first_queue_violation, Some(SimTime(2)));
        assert_eq!(r.peak_switch_queue_bytes, 1600);
    }

    #[test]
    fn loss_violations_only_when_requested() {
        let mut quiet = InvariantState::new(
            InvariantSpec {
                data_queue_bound_bytes: None,
                zero_data_loss: false,
            },
            vec![true],
        );
        assert!(quiet.on_switch_data_drop(SimTime(5), 0, 1538).is_none());
        assert!(quiet.report().ok());

        let mut strict = InvariantState::new(
            InvariantSpec {
                data_queue_bound_bytes: None,
                zero_data_loss: true,
            },
            vec![true],
        );
        assert!(strict.on_switch_data_drop(SimTime(5), 0, 1538).is_some());
        assert_eq!(strict.report().loss_violations, 1);
        assert_eq!(strict.report().first_loss, Some(SimTime(5)));
        assert!(!strict.report().ok());
    }

    #[test]
    fn report_json_shape() {
        let spec = InvariantSpec {
            data_queue_bound_bytes: Some(577_000),
            zero_data_loss: true,
        };
        let st = InvariantState::new(spec, vec![]);
        let j = xpass_sim::json::parse(&st.report().to_json().to_string()).unwrap();
        assert_eq!(j.get("monitored").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("queue_bound_bytes").unwrap().as_u64(), Some(577_000));
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("first_loss_ps"), Some(&Json::Null));
    }
}
