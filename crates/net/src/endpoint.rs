//! The `Endpoint` trait every congestion-control protocol implements, and
//! the `Ctx` handle endpoints act through.
//!
//! A flow has two endpoints — a sender at the source host and a receiver at
//! the destination — each a boxed `Endpoint`. The network delivers three
//! kinds of callbacks: `on_start` (flow activation), `on_packet` (a packet
//! addressed to this endpoint arrived, after host processing delay), and
//! `on_timer` (a timer armed via [`Ctx::arm_timer`] fired).
//!
//! The same structure serves ExpressPass (where the *receiver* is the active
//! party, pacing credits) and the window/rate baselines (where the sender
//! is).

use crate::ids::{FlowId, HostId, Side};
use crate::network::Network;
use crate::packet::{Packet, PktKind};
use std::any::Any;
use xpass_sim::rng::Rng;
use xpass_sim::time::{Dur, SimTime};

/// Immutable per-flow facts available to endpoints.
#[derive(Clone, Debug)]
pub struct FlowInfo {
    /// Flow id.
    pub id: FlowId,
    /// Data source host.
    pub src: HostId,
    /// Data destination host.
    pub dst: HostId,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// Scheduled start time.
    pub start: SimTime,
    /// Traffic class (0 = highest priority; see §7 multi-class credits).
    pub class: u8,
}

/// A congestion-control protocol endpoint (one side of one flow).
pub trait Endpoint {
    /// The flow has started (fires at `FlowInfo::start` on both sides).
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// A packet addressed to this endpoint arrived.
    fn on_packet(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>);

    /// A timer armed with [`Ctx::arm_timer`] fired. `gen` is the arming
    /// generation; compare against the latest armed generation to ignore
    /// stale timers (see [`TimerSlot`]).
    fn on_timer(&mut self, kind: u8, gen: u64, ctx: &mut Ctx<'_>);

    /// Downcasting hook for out-of-band control (e.g. the ideal-rate oracle
    /// setting sender rates).
    fn as_any(&mut self) -> &mut dyn Any;

    /// Serialize this endpoint's dynamic state into a checkpoint. Every
    /// protocol must write *all* state that influences future behaviour —
    /// a restored run must be byte-identical to an uninterrupted one.
    fn snap_state(&self, w: &mut xpass_sim::SnapWriter);

    /// Restore state written by [`snap_state`](Self::snap_state) into a
    /// freshly constructed endpoint (the factory rebuilds configuration;
    /// this overlays the dynamic fields).
    fn restore_state(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError>;
}

/// Constructor for protocol endpoints: called once per flow per side. The
/// [`FlowHandle`](crate::arena::FlowHandle) is the flow's generational arena
/// slot — controllers may keep it to detect slot reuse after retirement.
pub type EndpointFactory =
    Box<dyn Fn(Side, &FlowInfo, crate::arena::FlowHandle) -> Box<dyn Endpoint>>;

/// The capability handle endpoints act through. Wraps the network with the
/// identity of the flow/side being called back.
pub struct Ctx<'a> {
    pub(crate) net: &'a mut Network,
    /// The flow this callback concerns.
    pub flow: FlowId,
    /// The side being called back.
    pub side: Side,
}

impl<'a> Ctx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The run's RNG.
    pub fn rng(&mut self) -> &mut Rng {
        self.net.rng()
    }

    /// Flow facts.
    pub fn info(&self) -> &FlowInfo {
        self.net.flow_info(self.flow)
    }

    /// The host this endpoint lives on.
    pub fn local_host(&self) -> HostId {
        let info = self.info();
        match self.side {
            Side::Sender => info.src,
            Side::Receiver => info.dst,
        }
    }

    /// Line rate of this endpoint's host uplink, in bits/s. Protocols use
    /// this as `max_rate` (the paper assumes uniform host link speeds, §7).
    pub fn host_link_bps(&self) -> u64 {
        self.net.host_link_bps(self.local_host())
    }

    /// A packet template originating at this endpoint, addressed to the
    /// peer, with `t_sent` stamped.
    pub fn make_pkt(&self, kind: PktKind, size: u32) -> Packet {
        let info = self.info();
        let (src, dst) = match self.side {
            Side::Sender => (info.src, info.dst),
            Side::Receiver => (info.dst, info.src),
        };
        let mut p = Packet::new(self.flow, src, dst, kind, size);
        p.t_sent = self.now();
        p.class = info.class;
        p
    }

    /// Emit a packet from this endpoint's host NIC.
    pub fn send(&mut self, pkt: Packet) {
        debug_assert_eq!(pkt.src, self.local_host(), "packet src must be local host");
        self.net.host_emit(pkt);
    }

    /// Arm a timer; returns the arming generation to match in `on_timer`.
    pub fn arm_timer(&mut self, kind: u8, delay: Dur) -> u64 {
        self.net.arm_timer(self.flow, self.side, kind, delay)
    }

    /// Receiver side: record `bytes` of in-order application data delivered.
    /// Completion (and FCT) is recorded when the cumulative total reaches
    /// the flow size.
    pub fn deliver(&mut self, bytes: u64) {
        debug_assert_eq!(self.side, Side::Receiver, "only receivers deliver data");
        self.net.deliver(self.flow, bytes);
    }

    /// Application bytes delivered so far (receiver-side progress).
    pub fn delivered_bytes(&self) -> u64 {
        self.net.delivered_bytes(self.flow)
    }

    /// True once the flow has fully delivered.
    pub fn flow_done(&self) -> bool {
        self.net.flow_done(self.flow)
    }

    /// Sender side: account a credit that arrived but triggered no data
    /// (paper §6.3, "credit waste").
    pub fn count_wasted_credit(&mut self) {
        self.net.count_wasted_credit(self.flow);
    }

    /// Give up on this flow (e.g. connection-establishment retries
    /// exhausted). The flow counts as settled for
    /// [`run_until_done`](Network::run_until_done), its record reports
    /// [`FlowOutcome::Aborted`](crate::network::FlowOutcome::Aborted), and
    /// `counters.flows_aborted` increments. Idempotent; a no-op once done.
    pub fn abort_flow(&mut self) {
        self.net.abort_flow(self.flow);
    }

    /// True once this flow was aborted.
    pub fn flow_aborted(&self) -> bool {
        self.net.flow_aborted(self.flow)
    }

    /// Flag (or clear) a forward-progress stall on this flow's record.
    /// Purely observational — the flow keeps running and the flag clears
    /// automatically when it completes.
    pub fn set_stalled(&mut self, stalled: bool) {
        self.net.mark_stalled(self.flow, stalled);
    }

    /// True while this endpoint's own host is frozen by an injected
    /// `HostPause` fault. Endpoints use this (and
    /// [`peer_paused`](Self::peer_paused)) to suppress liveness judgements —
    /// a flow is not *stalled* or *dead* while a fault is deliberately
    /// holding one of its hosts.
    pub fn local_paused(&self) -> bool {
        self.net.host_paused(self.local_host())
    }

    /// True while the peer endpoint's host is frozen by an injected
    /// `HostPause` fault.
    pub fn peer_paused(&self) -> bool {
        let info = self.info();
        let peer = match self.side {
            Side::Sender => info.dst,
            Side::Receiver => info.src,
        };
        self.net.host_paused(peer)
    }

    /// True when a trace sink is installed. Endpoints gate any work needed
    /// only to *build* a trace event behind this, keeping no-sink runs free
    /// of telemetry cost.
    pub fn trace_enabled(&self) -> bool {
        self.net.trace_enabled()
    }

    /// Record a trace event (no-op without a sink). Tracing is
    /// observation-only: it must never touch the RNG or schedule events.
    pub fn trace(&mut self, ev: xpass_sim::trace::TraceEvent) {
        self.net.trace_emit(ev);
    }

    /// Count one credit feedback-loop rate update on the live metrics
    /// plane (no-op when metrics are off; safe to call unconditionally).
    #[inline]
    pub fn note_feedback_update(&mut self) {
        self.net.metrics_note_feedback();
    }
}

/// Helper tracking the latest armed generation of one timer kind, so
/// endpoints can cancel/rearm logically: stale firings are filtered by
/// generation mismatch.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimerSlot {
    armed: Option<u64>,
}

impl TimerSlot {
    /// Unarmed slot.
    pub fn new() -> TimerSlot {
        TimerSlot::default()
    }

    /// Arm (or re-arm) this slot's timer.
    pub fn arm(&mut self, ctx: &mut Ctx<'_>, kind: u8, delay: Dur) {
        self.armed = Some(ctx.arm_timer(kind, delay));
    }

    /// Logically cancel: any in-flight firing will be ignored.
    pub fn cancel(&mut self) {
        self.armed = None;
    }

    /// Whether a firing with this generation is the latest arming. Consumes
    /// the arming (one-shot semantics); re-arm for periodic behaviour.
    pub fn matches(&mut self, gen: u64) -> bool {
        if self.armed == Some(gen) {
            self.armed = None;
            true
        } else {
            false
        }
    }

    /// True if armed and not yet fired/cancelled.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }
}

impl xpass_sim::Snapshot for TimerSlot {
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        w.opt(self.armed.as_ref(), |w, g| w.u64(*g));
    }
}

impl xpass_sim::Restore for TimerSlot {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.armed = r.opt(|r| r.u64())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_slot_one_shot_semantics() {
        let mut s = TimerSlot::new();
        assert!(!s.is_armed());
        s.armed = Some(7);
        assert!(s.is_armed());
        assert!(!s.matches(6));
        assert!(s.matches(7));
        assert!(!s.matches(7), "second firing with same gen must not match");
        assert!(!s.is_armed());
    }

    #[test]
    fn timer_slot_cancel() {
        let mut s = TimerSlot::new();
        s.armed = Some(3);
        s.cancel();
        assert!(!s.matches(3));
    }
}
