//! Per-run network configuration.

use crate::rcplink::RcpParams;
use xpass_sim::time::Dur;

/// How a host delays credit processing before the triggered data packet is
/// handed to its NIC (paper §2: software implementations show 0.9–6.2 µs at
//  the 99.99th percentile; NIC hardware is ~1 µs spread).
#[derive(Clone, Copy, Debug)]
pub struct HostDelayModel {
    /// Minimum processing delay.
    pub min: Dur,
    /// Maximum processing delay (spread = max − min).
    pub max: Dur,
}

impl HostDelayModel {
    /// The SoftNIC software implementation measured in the paper (§2, §5).
    pub fn software() -> HostDelayModel {
        HostDelayModel {
            min: Dur::ns(900),
            max: Dur::ns(6200),
        }
    }

    /// A NIC-hardware implementation: ~1 µs processing with a ±0.2 µs
    /// spread — enough delay noise to keep deterministic phase locks from
    /// forming, small enough not to reorder back-to-back full frames at
    /// 10 G.
    pub fn hardware() -> HostDelayModel {
        HostDelayModel {
            min: Dur::ns(800),
            max: Dur::ns(1200),
        }
    }

    /// No jitter at all (for unit tests and the "perfect pacing" point of
    /// Fig 6a).
    pub fn none() -> HostDelayModel {
        HostDelayModel {
            min: Dur::ZERO,
            max: Dur::ZERO,
        }
    }

    /// Delay spread `Δd_host = max − min` used by the network calculus.
    pub fn spread(&self) -> Dur {
        self.max - self.min
    }
}

/// How packets pick among equal-cost paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingMode {
    /// Deterministic symmetric-hash ECMP (§3.1): a flow's data retraces its
    /// credits' path. The paper's base design.
    EcmpSymmetric,
    /// Per-packet random spraying (§7): balances load perfectly but breaks
    /// credit/data path coupling; viable because bounded queues also bound
    /// reordering.
    PacketSpray,
}

/// Network-wide configuration applied when a [`Topology`](crate::Topology)
/// is instantiated into a [`Network`](crate::Network).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Data queue capacity per switch egress port, in bytes.
    /// Paper simulations: 384.5 KB (250 MTU) at 10 G, 1.54 MB at 40 G.
    pub switch_queue_bytes: u64,
    /// Data queue capacity at host NICs (effectively unbounded: the
    /// transport, not the NIC, is the limit at the sender).
    pub host_queue_bytes: u64,
    /// ECN marking threshold K in bytes, if ECN is enabled (DCTCP/HULL).
    pub ecn_k_bytes: Option<u64>,
    /// HULL phantom queues: (drain fraction γ, marking threshold bytes).
    pub phantom: Option<(f64, u64)>,
    /// RCP per-link rate computation.
    pub rcp: Option<RcpParams>,
    /// Credit class enabled (ExpressPass / naïve credit runs).
    pub credit: bool,
    /// Credit queue capacity per port, in credits (paper default 8).
    pub credit_queue_pkts: usize,
    /// Credit overflow policy (see
    /// [`CreditDropPolicy`](crate::queue::CreditDropPolicy)).
    pub credit_drop: crate::queue::CreditDropPolicy,
    /// Number of credit traffic classes per port (§7). Class 0 has strict
    /// priority over class 1, and so on. Default 1 (no prioritization).
    pub credit_classes: usize,
    /// Multipath routing mode (§7: symmetric ECMP vs packet spraying).
    pub routing: RoutingMode,
    /// Host credit-processing delay model.
    pub host_delay: HostDelayModel,
    /// Seed for the run's RNG.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            switch_queue_bytes: 384_500, // 250 MTU, paper's 10G setting
            host_queue_bytes: 1 << 30,
            ecn_k_bytes: None,
            phantom: None,
            rcp: None,
            credit: false,
            credit_queue_pkts: 8,
            credit_drop: crate::queue::CreditDropPolicy::UniformRandom,
            credit_classes: 1,
            routing: RoutingMode::EcmpSymmetric,
            host_delay: HostDelayModel::hardware(),
            seed: 1,
        }
    }
}

impl NetConfig {
    /// Baseline config for an ExpressPass run.
    pub fn expresspass() -> NetConfig {
        NetConfig {
            credit: true,
            ..NetConfig::default()
        }
    }

    /// Baseline config for a DCTCP run at the given link speed
    /// (K = 65 packets at 10 G, scaled linearly with speed per the paper).
    pub fn dctcp(link_bps: u64) -> NetConfig {
        let k_pkts = 65.0 * link_bps as f64 / 10e9;
        NetConfig {
            ecn_k_bytes: Some((k_pkts * crate::packet::MAX_FRAME as f64) as u64),
            ..NetConfig::default()
        }
    }

    /// Baseline config for a HULL run: DCTCP marking on a phantom queue
    /// draining at 95% of capacity.
    pub fn hull(link_bps: u64) -> NetConfig {
        // HULL's 1KB-at-1Gbps marking threshold, scaled with link speed.
        let thresh = (1000.0 * link_bps as f64 / 1e9) as u64;
        NetConfig {
            phantom: Some((0.95, thresh)),
            ..NetConfig::default()
        }
    }

    /// Baseline config for an RCP run.
    pub fn rcp() -> NetConfig {
        NetConfig {
            rcp: Some(RcpParams::default()),
            ..NetConfig::default()
        }
    }

    /// Scale switch queue capacity with link speed as the paper does
    /// (250 MTU at 10 G, 1000 MTU at 40 G).
    pub fn with_queue_for_speed(mut self, link_bps: u64) -> NetConfig {
        let mtus = if link_bps >= 40_000_000_000 {
            1000
        } else {
            250
        };
        self.switch_queue_bytes = mtus * crate::packet::MAX_FRAME as u64;
        // Scale ECN K too if set.
        if let Some(k) = self.ecn_k_bytes.as_mut() {
            let k_pkts = 65.0 * link_bps as f64 / 10e9;
            *k = (k_pkts * crate::packet::MAX_FRAME as f64) as u64;
        }
        self
    }

    /// Set the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> NetConfig {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = NetConfig::default();
        assert_eq!(c.switch_queue_bytes, 384_500);
        assert_eq!(c.credit_queue_pkts, 8);
        assert!(!c.credit);
    }

    #[test]
    fn dctcp_k_scales_with_speed() {
        let k10 = NetConfig::dctcp(10_000_000_000).ecn_k_bytes.unwrap();
        let k100 = NetConfig::dctcp(100_000_000_000).ecn_k_bytes.unwrap();
        assert_eq!(k10, 65 * 1538);
        assert_eq!(k100, 650 * 1538);
    }

    #[test]
    fn queue_scales_with_speed() {
        let c = NetConfig::default().with_queue_for_speed(40_000_000_000);
        assert_eq!(c.switch_queue_bytes, 1000 * 1538);
        let c = NetConfig::default().with_queue_for_speed(10_000_000_000);
        assert_eq!(c.switch_queue_bytes, 250 * 1538);
    }

    #[test]
    fn host_delay_models() {
        assert_eq!(HostDelayModel::software().spread(), Dur::ns(5300));
        assert_eq!(HostDelayModel::none().spread(), Dur::ZERO);
        assert!(HostDelayModel::hardware().spread() < HostDelayModel::software().spread());
    }
}
