//! Per-host timer generations and a shared hierarchical occupancy wheel.
//!
//! The old layout gave every flow its own `timer_gen: u64` counter — 8 bytes
//! per flow whose only job was minting unique generations for the
//! logical-cancel protocol ([`TimerSlot`](crate::endpoint::TimerSlot)
//! filters stale firings by generation mismatch). Generations only need to
//! be unique *per arming endpoint*, and every endpoint lives on a fixed
//! host (the sender on `src`, the receiver on `dst`), so one monotone
//! counter per **host** suffices — million-flow runs carry `n_hosts`
//! counters instead of `n_flows`.
//!
//! On top of the counters, [`TimerWheels`] keeps a shared hierarchical
//! occupancy wheel: four levels of 64 slots at geometrically coarser
//! granularity (≈1 µs, 67 µs, 4.3 ms, 275 ms per slot), layered over the
//! calendar event queue that actually fires the events. Arming picks the
//! finest level whose horizon covers the delay and packs the level into
//! the generation's top bits, so the fire path can decrement the exact
//! slot without a search. The wheel is pure accounting — an O(1) histogram
//! of outstanding timers by expiry horizon, plus an exact per-host pending
//! count — and never influences event order, so observable outputs stay
//! byte-identical.
//!
//! Timer events are never removed from the event queue (cancellation is
//! logical, in the endpoint's `TimerSlot`), so every `arm` is matched by
//! exactly one `fired` and the occupancy counts are exact even across
//! slot aliasing (windows 64 apart share a slot; the sum stays right).

use crate::ids::HostId;
use xpass_sim::time::SimTime;
use xpass_sim::{SnapError, SnapReader, SnapWriter};

/// Wheel levels (finest → coarsest).
pub const LEVELS: usize = 4;
/// Slots per level.
pub const SLOTS: usize = 64;
/// log2 of each level's slot width in picoseconds: ≈1 µs, 67 µs, 4.3 ms,
/// 275 ms. A level's horizon is 64 slots: ≈67 µs, 4.3 ms, 275 ms, 17.6 s.
const SHIFT: [u32; LEVELS] = [20, 26, 32, 38];
/// Generation bits below the packed level tag.
const LEVEL_SHIFT: u32 = 58;
const GEN_MASK: u64 = (1 << LEVEL_SHIFT) - 1;
/// Level tag for delays beyond the top level's horizon.
const OVERFLOW: u64 = LEVELS as u64;

/// Per-host timer generations + shared hierarchical occupancy wheel.
pub struct TimerWheels {
    /// Monotone generation counter per host (low 58 bits of minted gens).
    host_gen: Vec<u64>,
    /// Outstanding (armed, not yet fired) timers per host. Exact.
    host_pending: Vec<u32>,
    /// Occupancy counts per level and slot.
    counts: [[u32; SLOTS]; LEVELS],
    /// Outstanding timers per level.
    level_pending: [u64; LEVELS],
    /// Timers beyond the top level's horizon.
    overflow: u64,
}

impl TimerWheels {
    /// Wheels for a topology with `n_hosts` hosts.
    pub fn new(n_hosts: usize) -> TimerWheels {
        TimerWheels {
            host_gen: vec![0; n_hosts],
            host_pending: vec![0; n_hosts],
            counts: [[0; SLOTS]; LEVELS],
            level_pending: [0; LEVELS],
            overflow: 0,
        }
    }

    /// Mint a generation for a timer on `host` expiring at `expiry`, and
    /// count it into the wheel. The returned generation is unique per host
    /// (level tag in the top bits, monotone counter below).
    #[inline]
    pub fn arm(&mut self, host: HostId, now: SimTime, expiry: SimTime) -> u64 {
        let h = host.0 as usize;
        self.host_gen[h] += 1;
        let counter = self.host_gen[h];
        debug_assert!(counter <= GEN_MASK, "per-host timer generation overflow");
        self.host_pending[h] += 1;

        let delay = expiry.as_ps().saturating_sub(now.as_ps());
        let level = Self::level_for(delay);
        if level == OVERFLOW {
            self.overflow += 1;
        } else {
            let l = level as usize;
            let slot = (expiry.as_ps() >> SHIFT[l]) as usize % SLOTS;
            self.counts[l][slot] += 1;
            self.level_pending[l] += 1;
        }
        (level << LEVEL_SHIFT) | counter
    }

    /// Account a timer firing: decrement the exact slot the generation's
    /// level tag names. Called for every popped timer event, live or stale.
    ///
    /// Saturating rather than asserting: a restored (possibly adversarial)
    /// snapshot may carry counts inconsistent with its pending events, and
    /// the wheel is pure accounting — it must never abort the run.
    #[inline]
    pub fn fired(&mut self, host: HostId, gen: u64, expiry: SimTime) {
        let h = host.0 as usize;
        if let Some(p) = self.host_pending.get_mut(h) {
            *p = p.saturating_sub(1);
        }

        let level = gen >> LEVEL_SHIFT;
        if level >= OVERFLOW {
            self.overflow = self.overflow.saturating_sub(1);
        } else {
            let l = level as usize;
            let slot = (expiry.as_ps() >> SHIFT[l]) as usize % SLOTS;
            self.counts[l][slot] = self.counts[l][slot].saturating_sub(1);
            self.level_pending[l] = self.level_pending[l].saturating_sub(1);
        }
    }

    /// Finest level whose 64-slot horizon covers `delay_ps`, or the
    /// overflow tag.
    #[inline]
    fn level_for(delay_ps: u64) -> u64 {
        for (l, shift) in SHIFT.iter().enumerate() {
            if delay_ps < (SLOTS as u64) << shift {
                return l as u64;
            }
        }
        OVERFLOW
    }

    /// Outstanding timers on one host.
    pub fn pending(&self, host: HostId) -> u32 {
        self.host_pending[host.0 as usize]
    }

    /// Outstanding timers across all hosts.
    pub fn total_pending(&self) -> u64 {
        self.level_pending.iter().sum::<u64>() + self.overflow
    }

    /// Outstanding timers per level (finest → coarsest) plus overflow.
    pub fn occupancy(&self) -> ([u64; LEVELS], u64) {
        (self.level_pending, self.overflow)
    }

    /// Number of hosts the wheels were sized for.
    pub fn n_hosts(&self) -> usize {
        self.host_gen.len()
    }

    /// Serialize all wheel state.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(&self.host_gen, |w, g| w.u64(*g));
        w.seq(&self.host_pending, |w, p| w.u32(*p));
        for l in 0..LEVELS {
            for s in 0..SLOTS {
                w.u32(self.counts[l][s]);
            }
            w.u64(self.level_pending[l]);
        }
        w.u64(self.overflow);
    }

    /// Restore state written by [`snap`](Self::snap). The host count must
    /// match the configured topology.
    pub fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = self.host_gen.len();
        r.enter("host_gen");
        let ng = r.seq_len(8)?;
        if ng != n {
            return Err(r.err(format!(
                "timer wheel host count mismatch: configuration has {n}, snapshot has {ng}"
            )));
        }
        for g in self.host_gen.iter_mut() {
            *g = r.u64()?;
        }
        r.leave();
        r.enter("host_pending");
        let np = r.seq_len(4)?;
        if np != n {
            return Err(r.err(format!(
                "timer wheel host count mismatch: configuration has {n}, snapshot has {np}"
            )));
        }
        for p in self.host_pending.iter_mut() {
            *p = r.u32()?;
        }
        r.leave();
        r.enter("wheel");
        for l in 0..LEVELS {
            for s in 0..SLOTS {
                self.counts[l][s] = r.u32()?;
            }
            self.level_pending[l] = r.u64()?;
        }
        self.overflow = r.u64()?;
        r.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpass_sim::time::Dur;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::us(us)
    }

    #[test]
    fn gens_are_unique_and_monotone_per_host() {
        let mut w = TimerWheels::new(2);
        let g1 = w.arm(HostId(0), t(0), t(10));
        let g2 = w.arm(HostId(0), t(0), t(10));
        let g3 = w.arm(HostId(1), t(0), t(10));
        assert_ne!(g1, g2);
        assert!((g1 & GEN_MASK) < (g2 & GEN_MASK));
        // Different hosts may mint equal counters; uniqueness is per host.
        assert_eq!(g3 & GEN_MASK, g1 & GEN_MASK);
    }

    #[test]
    fn level_selection_by_horizon() {
        // 10 µs fits level 0 (67 µs horizon); 1 ms → level 1; 100 ms →
        // level 2 (275 ms horizon); 1 s → level 3; 60 s → overflow.
        assert_eq!(TimerWheels::level_for(Dur::us(10).as_ps()), 0);
        assert_eq!(TimerWheels::level_for(Dur::us(1000).as_ps()), 1);
        assert_eq!(TimerWheels::level_for(Dur::ms(100).as_ps()), 2);
        assert_eq!(TimerWheels::level_for(Dur::ms(1000).as_ps()), 3);
        assert_eq!(TimerWheels::level_for(Dur::ms(60_000).as_ps()), OVERFLOW);
    }

    #[test]
    fn arm_fire_roundtrip_zeroes_occupancy() {
        let mut w = TimerWheels::new(3);
        let mut armed = Vec::new();
        for (i, us) in [5u64, 50, 500, 5_000, 50_000, 500_000, 30_000_000]
            .iter()
            .enumerate()
        {
            let host = HostId((i % 3) as u32);
            let expiry = t(100 + *us);
            let gen = w.arm(host, t(100), expiry);
            armed.push((host, gen, expiry));
        }
        assert_eq!(w.total_pending(), 7);
        for (host, gen, expiry) in armed {
            w.fired(host, gen, expiry);
        }
        assert_eq!(w.total_pending(), 0);
        for h in 0..3 {
            assert_eq!(w.pending(HostId(h)), 0);
        }
    }

    #[test]
    fn per_host_pending_is_exact() {
        let mut w = TimerWheels::new(2);
        let g0 = w.arm(HostId(0), t(0), t(1));
        let _g1 = w.arm(HostId(1), t(0), t(2));
        assert_eq!(w.pending(HostId(0)), 1);
        assert_eq!(w.pending(HostId(1)), 1);
        w.fired(HostId(0), g0, t(1));
        assert_eq!(w.pending(HostId(0)), 0);
        assert_eq!(w.pending(HostId(1)), 1);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut w = TimerWheels::new(4);
        let mut fired_later = Vec::new();
        for i in 0..20u64 {
            let host = HostId((i % 4) as u32);
            let expiry = t(i * 37 + 1);
            let gen = w.arm(host, t(0), expiry);
            if i % 3 == 0 {
                w.fired(host, gen, expiry);
            } else {
                fired_later.push((host, gen, expiry));
            }
        }
        let mut sw = SnapWriter::new();
        w.snap(&mut sw);
        let body = sw.into_body();

        let mut w2 = TimerWheels::new(4);
        let mut r = SnapReader::new(&body, 0);
        w2.restore(&mut r).unwrap();
        assert_eq!(w2.total_pending(), w.total_pending());
        for h in 0..4 {
            assert_eq!(w2.pending(HostId(h)), w.pending(HostId(h)));
        }
        // The restored wheels keep accounting exactly.
        for (host, gen, expiry) in fired_later {
            w2.fired(host, gen, expiry);
        }
        assert_eq!(w2.total_pending(), 0);
    }

    #[test]
    fn restore_rejects_host_count_mismatch() {
        let mut w = TimerWheels::new(2);
        let mut sw = SnapWriter::new();
        w.arm(HostId(0), t(0), t(5));
        w.snap(&mut sw);
        let body = sw.into_body();
        let mut w3 = TimerWheels::new(3);
        let mut r = SnapReader::new(&body, 0);
        let err = w3.restore(&mut r).unwrap_err();
        assert!(
            err.to_string().contains("timer wheel host count mismatch"),
            "got: {err}"
        );
    }
}
