//! The egress-port scheduler.
//!
//! Every directed link has one egress port at its transmitting end holding a
//! data queue and (in credit-enabled runs) a credit queue. When the wire is
//! free the port sends, in order of preference:
//!
//! 1. the head credit, if the credit meter has tokens for it;
//! 2. the head data packet;
//! 3. nothing — but if credits are waiting for tokens, it asks to be woken
//!    when the meter will conform.
//!
//! This realizes the paper's switch behaviour: credits are a strictly
//! metered class (max-bandwidth metering, burst 2), data is work-conserving
//! in the remaining capacity.

use crate::ids::DLinkId;
use crate::packet::{Packet, PktKind};
use crate::queue::{CreditQueue, DataQueue};
use crate::rcplink::RcpLink;
use xpass_sim::time::{tx_time, Dur, SimTime};
use xpass_sim::trace::{TraceEvent, TraceSink};

/// What an idle port wants to do next.
#[derive(Debug)]
pub enum TxDecision {
    /// Start serializing this packet now.
    Transmit(Packet),
    /// Nothing conforming now; wake me at this time (credit meter refill).
    WaitUntil(SimTime),
    /// Nothing to send.
    Idle,
}

/// Egress port state for one directed link.
pub struct EgressPort {
    /// The directed link this port feeds.
    pub dlink: DLinkId,
    /// Line rate.
    pub speed_bps: u64,
    /// Propagation delay to the far end.
    pub prop_delay: Dur,
    /// Data-class queue.
    pub data: DataQueue,
    /// Credit-class queue (credit-enabled runs only).
    pub credit: Option<CreditQueue>,
    /// RCP per-link rate state (RCP runs only).
    pub rcp: Option<RcpLink>,
    /// The wire is busy until this time.
    pub busy_until: SimTime,
    /// Pending meter-refill wake, to avoid duplicate wake events.
    token_wake: Option<SimTime>,
    /// Total wire bytes transmitted.
    pub tx_bytes: u64,
    /// Wire bytes of data packets transmitted.
    pub tx_data_bytes: u64,
    /// Application payload bytes transmitted (for utilization metrics).
    pub tx_payload_bytes: u64,
    /// Wire bytes of credit packets transmitted.
    pub tx_credit_bytes: u64,
    /// Optional inter-credit-gap collection (Fig 6b / Fig 14b): picosecond
    /// gaps between consecutive credit transmissions on this port.
    pub credit_gaps: Option<(SimTime, xpass_sim::stats::Percentiles)>,
}

impl EgressPort {
    /// New port with the given queues.
    pub fn new(
        dlink: DLinkId,
        speed_bps: u64,
        prop_delay: Dur,
        data: DataQueue,
        credit: Option<CreditQueue>,
        rcp: Option<RcpLink>,
    ) -> EgressPort {
        EgressPort {
            dlink,
            speed_bps,
            prop_delay,
            data,
            credit,
            rcp,
            busy_until: SimTime::ZERO,
            token_wake: None,
            tx_bytes: 0,
            tx_data_bytes: 0,
            tx_payload_bytes: 0,
            tx_credit_bytes: 0,
            credit_gaps: None,
        }
    }

    /// Start collecting inter-credit gaps on this port.
    pub fn collect_credit_gaps(&mut self) {
        self.credit_gaps = Some((SimTime::ZERO, xpass_sim::stats::Percentiles::new()));
    }

    /// True if the transmitter is currently serializing a packet.
    #[inline]
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// Decide what to do at `now` (must be called only when not busy).
    /// On `Transmit`, the transmitter is marked busy through the packet's
    /// serialization time and byte counters are updated; the caller delivers
    /// the packet to the far end after `prop_delay`.
    ///
    /// `trace` (pass `None` when tracing is off) receives a
    /// [`TraceEvent::PktDequeue`] for each packet leaving a queue; it never
    /// affects the decision.
    pub fn try_transmit(
        &mut self,
        now: SimTime,
        mut trace: Option<&mut (dyn TraceSink + 'static)>,
    ) -> TxDecision {
        if self.is_busy(now) {
            // A wake is already pending at busy_until; spurious call.
            return TxDecision::Idle;
        }
        // Conforming credits have priority (they are tiny and strictly
        // metered, so they cannot starve data).
        if let Some(cq) = self.credit.as_mut() {
            if cq.head_conforms(now) {
                let pkt = cq.dequeue(now).expect("head_conforms implies nonempty");
                if let Some(sink) = trace.as_deref_mut() {
                    sink.record(&dequeue_event(now, self.dlink, &pkt));
                }
                return TxDecision::Transmit(self.start_tx(now, pkt));
            }
        }
        if let Some(mut pkt) = self.data.dequeue(now) {
            // RCP: stamp the advertised rate and account the packet.
            if let Some(rcp) = self.rcp.as_mut() {
                if pkt.kind == PktKind::Data {
                    pkt.rate = rcp.stamp(pkt.rate);
                    let rtt = if pkt.rtt_est.is_zero() {
                        None
                    } else {
                        Some(pkt.rtt_est)
                    };
                    rcp.on_packet(pkt.size, rtt);
                }
            }
            if let Some(sink) = trace {
                sink.record(&dequeue_event(now, self.dlink, &pkt));
            }
            return TxDecision::Transmit(self.start_tx(now, pkt));
        }
        // Only non-conforming credits remain (if anything).
        if let Some(cq) = self.credit.as_mut() {
            if let Some(t) = cq.head_ready_at(now) {
                if self.token_wake == Some(t) {
                    return TxDecision::Idle; // wake already scheduled
                }
                self.token_wake = Some(t);
                return TxDecision::WaitUntil(t);
            }
        }
        TxDecision::Idle
    }

    fn start_tx(&mut self, now: SimTime, pkt: Packet) -> Packet {
        let tx = tx_time(pkt.size as u64, self.speed_bps);
        self.busy_until = now + tx;
        self.token_wake = None;
        self.tx_bytes += pkt.size as u64;
        match pkt.kind {
            PktKind::Credit => {
                self.tx_credit_bytes += pkt.size as u64;
                if let Some((last, gaps)) = self.credit_gaps.as_mut() {
                    if *last > SimTime::ZERO {
                        gaps.add(now.since(*last).as_secs_f64());
                    }
                    *last = now;
                }
            }
            PktKind::Data => {
                self.tx_data_bytes += pkt.size as u64;
                self.tx_payload_bytes += pkt.payload as u64;
            }
            _ => {}
        }
        pkt
    }

    /// Time the current serialization finishes (== now when idle).
    pub fn tx_done_at(&self) -> SimTime {
        self.busy_until
    }
}

// Dynamic state only: dlink, speed and propagation delay are configuration
// rebuilt by setup. Queue contents, the transmitter busy horizon, the pending
// meter wake, byte counters, and the optional gap collector all carry over.
impl xpass_sim::Snapshot for EgressPort {
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        self.data.snap(w);
        w.opt(self.credit.as_ref(), |w, cq| cq.snap(w));
        w.opt(self.rcp.as_ref(), |w, rcp| rcp.snap(w));
        w.u64(self.busy_until.0);
        w.opt(self.token_wake.as_ref(), |w, t| w.u64(t.0));
        w.u64(self.tx_bytes);
        w.u64(self.tx_data_bytes);
        w.u64(self.tx_payload_bytes);
        w.u64(self.tx_credit_bytes);
        w.opt(self.credit_gaps.as_ref(), |w, (last, gaps)| {
            w.u64(last.0);
            gaps.snap(w);
        });
    }
}

impl xpass_sim::Restore for EgressPort {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        fn opt_mismatch(r: &SnapReader, what: &str, cfg: bool, snap: bool) -> xpass_sim::SnapError {
            r.err(format!(
                "{what} presence mismatch: configuration {}, snapshot {}",
                if cfg { "has one" } else { "has none" },
                if snap { "has one" } else { "has none" },
            ))
        }
        self.data.restore(r)?;
        let has_credit = r.bool()?;
        match (self.credit.as_mut(), has_credit) {
            (Some(cq), true) => cq.restore(r)?,
            (None, false) => {}
            (cfg, snap) => return Err(opt_mismatch(r, "credit queue", cfg.is_some(), snap)),
        }
        let has_rcp = r.bool()?;
        match (self.rcp.as_mut(), has_rcp) {
            (Some(rcp), true) => rcp.restore(r)?,
            (None, false) => {}
            (cfg, snap) => return Err(opt_mismatch(r, "rcp link state", cfg.is_some(), snap)),
        }
        self.busy_until = SimTime(r.u64()?);
        self.token_wake = r.opt(|r| Ok(SimTime(r.u64()?)))?;
        self.tx_bytes = r.u64()?;
        self.tx_data_bytes = r.u64()?;
        self.tx_payload_bytes = r.u64()?;
        self.tx_credit_bytes = r.u64()?;
        self.credit_gaps = r.opt(|r| {
            let last = SimTime(r.u64()?);
            let mut gaps = xpass_sim::stats::Percentiles::new();
            gaps.restore(r)?;
            Ok((last, gaps))
        })?;
        Ok(())
    }
}

use xpass_sim::SnapReader;

fn dequeue_event(now: SimTime, dlink: DLinkId, pkt: &Packet) -> TraceEvent {
    TraceEvent::PktDequeue {
        at: now,
        dlink: dlink.0,
        class: pkt.kind.trace_class(),
        flow: pkt.flow.0,
        bytes: pkt.size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use crate::packet::{CREDIT_SIZE, MAX_FRAME};

    const G10: u64 = 10_000_000_000;

    fn port(credit: bool) -> EgressPort {
        EgressPort::new(
            DLinkId(0),
            G10,
            Dur::us(1),
            DataQueue::new(1 << 20),
            credit.then(|| CreditQueue::new(G10, 8)),
            None,
        )
    }

    fn data_pkt() -> Packet {
        let mut p = Packet::new(FlowId(0), HostId(0), HostId(1), PktKind::Data, MAX_FRAME);
        p.payload = 1460;
        p
    }

    fn credit_pkt() -> Packet {
        Packet::new(
            FlowId(0),
            HostId(1),
            HostId(0),
            PktKind::Credit,
            CREDIT_SIZE,
        )
    }

    fn rng() -> xpass_sim::rng::Rng {
        xpass_sim::rng::Rng::new(99)
    }

    #[test]
    fn transmits_data_when_idle() {
        let mut p = port(false);
        p.data.enqueue(SimTime::ZERO, data_pkt());
        match p.try_transmit(SimTime::ZERO, None) {
            TxDecision::Transmit(pkt) => assert_eq!(pkt.size, MAX_FRAME),
            other => panic!("{other:?}"),
        }
        // Busy for one MTU time (1.2304us at 10G).
        assert!(p.is_busy(SimTime::ZERO + Dur::ns(1230)));
        assert!(!p.is_busy(SimTime::ZERO + Dur::ns(1231)));
        assert_eq!(p.tx_data_bytes, MAX_FRAME as u64);
        assert_eq!(p.tx_payload_bytes, 1460);
    }

    #[test]
    fn idle_when_busy() {
        let mut p = port(false);
        p.data.enqueue(SimTime::ZERO, data_pkt());
        let _ = p.try_transmit(SimTime::ZERO, None);
        p.data.enqueue(SimTime::ZERO, data_pkt());
        match p.try_transmit(SimTime::ZERO + Dur::ns(100), None) {
            TxDecision::Idle => {}
            other => panic!("{other:?}"),
        }
        // After serialization completes, the next packet goes out.
        match p.try_transmit(p.tx_done_at(), None) {
            TxDecision::Transmit(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conforming_credit_beats_data() {
        let mut p = port(true);
        p.data.enqueue(SimTime::ZERO, data_pkt());
        p.credit
            .as_mut()
            .unwrap()
            .enqueue(SimTime::ZERO, credit_pkt(), &mut rng());
        match p.try_transmit(SimTime::ZERO, None) {
            TxDecision::Transmit(pkt) => assert_eq!(pkt.kind, PktKind::Credit),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.tx_credit_bytes, 84);
    }

    #[test]
    fn nonconforming_credit_yields_to_data() {
        let mut p = port(true);
        // Exhaust the meter burst.
        for _ in 0..2 {
            p.credit
                .as_mut()
                .unwrap()
                .enqueue(SimTime::ZERO, credit_pkt(), &mut rng());
        }
        let _ = p.try_transmit(SimTime::ZERO, None);
        let t1 = p.tx_done_at();
        let _ = p.try_transmit(t1, None);
        let t2 = p.tx_done_at();
        // Third credit has no tokens; data must flow instead.
        p.credit
            .as_mut()
            .unwrap()
            .enqueue(t2, credit_pkt(), &mut rng());
        p.data.enqueue(t2, data_pkt());
        match p.try_transmit(t2, None) {
            TxDecision::Transmit(pkt) => assert_eq!(pkt.kind, PktKind::Data),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn waits_for_meter_when_only_credits() {
        let mut p = port(true);
        for _ in 0..3 {
            p.credit
                .as_mut()
                .unwrap()
                .enqueue(SimTime::ZERO, credit_pkt(), &mut rng());
        }
        let _ = p.try_transmit(SimTime::ZERO, None); // burst 1
        let _ = p.try_transmit(p.tx_done_at(), None); // burst 2
        let t = p.tx_done_at();
        match p.try_transmit(t, None) {
            TxDecision::WaitUntil(w) => {
                assert!(w > t);
                // Asking again returns Idle (wake already pending).
                match p.try_transmit(t, None) {
                    TxDecision::Idle => {}
                    other => panic!("{other:?}"),
                }
                // At the wake time the credit goes out.
                match p.try_transmit(w, None) {
                    TxDecision::Transmit(pkt) => assert_eq!(pkt.kind, PktKind::Credit),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_port_is_idle() {
        let mut p = port(true);
        match p.try_transmit(SimTime::ZERO, None) {
            TxDecision::Idle => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn credit_class_throughput_is_metered() {
        // Saturate the credit queue for 10ms; credits transmitted must match
        // the 5.18% meter, leaving the rest for data.
        let mut p = port(true);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::ZERO + Dur::ms(10);
        let mut queued = 0;
        while now < horizon {
            let cq = p.credit.as_mut().unwrap();
            while cq.len() < 8 && queued < 100_000 {
                cq.enqueue(now, credit_pkt(), &mut rng());
                queued += 1;
            }
            match p.try_transmit(now, None) {
                TxDecision::Transmit(_) => now = p.tx_done_at(),
                TxDecision::WaitUntil(w) => now = w,
                TxDecision::Idle => break,
            }
        }
        let rate = p.tx_credit_bytes as f64 * 8.0 / 0.01;
        let expect = 10e9 * 84.0 / 1622.0;
        assert!(
            (rate - expect).abs() / expect < 0.01,
            "credit rate {rate:.3e} vs {expect:.3e}"
        );
    }
}
