//! # xpass-net — packet-level datacenter network model
//!
//! The simulator substrate that plays the role ns-2 (and the hardware
//! testbed) played in the ExpressPass paper: hosts with NICs, switches with
//! per-port output queues, full-duplex links, ECMP routing, and the
//! credit-class machinery the paper adds to commodity switches.
//!
//! Layout:
//!
//! * [`ids`] — typed indices for hosts, switches, links, flows.
//! * [`packet`] — wire-format constants (84 B credits, 1538 B max frames) and
//!   the [`Packet`](packet::Packet) struct every protocol shares.
//! * [`queue`] — drop-tail data queues with optional ECN marking and HULL
//!   phantom queues; tiny credit queues with leaky-bucket metering.
//! * [`rcplink`] — per-link explicit-rate state for the RCP baseline.
//! * [`port`] — the egress-port scheduler arbitrating the credit and data
//!   classes onto the wire.
//! * [`topology`] — graph construction (dumbbell, parking lot,
//!   multi-bottleneck, k-ary fat tree, oversubscribed 3-tier Clos) and
//!   flat precomputed per-(switch, dst-ToR) ECMP route tables.
//! * [`arena`] — generational slab of per-flow state with the credit-pacer
//!   hot fields split struct-of-arrays.
//! * [`timers`] — per-host timer generations and a shared hierarchical
//!   occupancy wheel layered over the calendar event queue.
//! * [`routing`] — symmetric flow hashing for deterministic, path-symmetric
//!   ECMP (paper §3.1).
//! * [`endpoint`] — the `Endpoint` trait all congestion-control protocols
//!   implement, plus the `Ctx` handle they act through.
//! * [`faults`] — deterministic fault-injection schedules: link failures,
//!   lossy/corrupting links, and host pauses, replayable from the run seed.
//! * [`ledger`] — global byte/packet conservation ledger proving every
//!   emitted packet is accounted for (delivered, dropped, fault-lost,
//!   corrupted, in flight, queued, or stashed).
//! * `metrics` (private) — per-network live metrics state bridging the
//!   event loop to [`xpass_sim::metrics`]: boundary-checked sampling of
//!   queue depths, link utilization, flow counts, ledger fates, and
//!   watchdog headroom, published to the cross-thread plane.
//! * [`network`] — the event loop tying everything together.
//! * [`config`] — per-run knobs (queue capacity, ECN K, credit queue size,
//!   host jitter model, …).

#![warn(missing_docs)]
pub mod arena;
pub mod config;
pub mod endpoint;
pub mod faults;
pub mod health;
pub mod ids;
pub mod ledger;
mod metrics;
pub mod network;
pub mod packet;
pub mod port;
pub mod queue;
pub mod rcplink;
pub mod routing;
pub mod timers;
pub mod topology;

pub use arena::{FlowArena, FlowHandle};
pub use config::NetConfig;
pub use endpoint::{Ctx, Endpoint, EndpointFactory};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use ids::{DLinkId, FlowId, HostId, NodeId, Side, SwitchId};
pub use network::{Controller, FlowOutcome, FlowRecord, Network, NoController};
pub use packet::{Packet, PktKind};
pub use topology::Topology;
