//! Generational flow arena: the million-flow state layout.
//!
//! Flow state used to live in a `Vec<FlowRuntime>` — one large struct per
//! flow, with the per-credit hot counters (`rx_bytes`, `credits_sent`,
//! `credits_wasted`, the done/aborted/stalled bits) interleaved with cold
//! identity and boxed endpoint pointers. At 10⁵–10⁶ flows that layout
//! wastes cache on every credit: touching one `u64` counter drags a ~200 B
//! struct line in with it.
//!
//! [`FlowArena`] splits the state three ways:
//!
//! * **Slots** (cold): identity ([`FlowInfo`]), the two boxed endpoints
//!   (kept boxed so the take/put-back dispatch dance and snapshot overlay
//!   keep working), the recorded FCT, and a generation counter.
//! * **Struct-of-arrays hot fields**: `rx_bytes`, `credits_sent`,
//!   `credits_wasted`, and a packed flag byte per flow, each in its own
//!   dense array touched by the per-credit loop.
//! * **Free list**: retired slots are reused; each reuse bumps the slot
//!   generation so stale [`FlowHandle`]s (and timers carrying them)
//!   are detected and dropped instead of acting on the wrong flow.
//!
//! `FlowId` remains the public identity and equals the slot index. In
//! production runs flows are never retired, so ids stay dense and every
//! observable output is byte-identical to the old layout; the free list is
//! exercised by churn workloads (and tests) via
//! [`Network::retire_flow`](crate::network::Network::retire_flow).

use crate::endpoint::{Endpoint, FlowInfo};
use crate::ids::{FlowId, Side};
use xpass_sim::time::Dur;

/// Flow is fully delivered.
pub const FLAG_DONE: u8 = 1 << 0;
/// Flow gave up (connection-establishment retries exhausted, …).
pub const FLAG_ABORTED: u8 = 1 << 1;
/// Flow is currently flagged as stalled (observational).
pub const FLAG_STALLED: u8 = 1 << 2;

/// A generational handle to an arena slot. The index aliases the
/// [`FlowId`]; the generation detects slot reuse — a handle (or timer)
/// minted before a slot was retired never acts on its successor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowHandle {
    /// Slot index (== `FlowId.0`).
    pub idx: u32,
    /// Slot generation at mint time.
    pub gen: u32,
}

impl FlowHandle {
    /// The flow id this handle addresses.
    pub fn flow(self) -> FlowId {
        FlowId(self.idx)
    }
}

/// Cold per-flow state: identity, endpoints, outcome.
struct Slot {
    /// Bumped each time the slot is retired; handles embed the value.
    gen: u32,
    occupied: bool,
    info: FlowInfo,
    sender: Option<Box<dyn Endpoint>>,
    receiver: Option<Box<dyn Endpoint>>,
    fct: Option<Dur>,
}

/// Arena of flow slots with struct-of-arrays hot fields. See module docs.
pub struct FlowArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    // Hot arrays, indexed by slot. Kept parallel to `slots`.
    rx_bytes: Vec<u64>,
    credits_sent: Vec<u64>,
    credits_wasted: Vec<u64>,
    flags: Vec<u8>,
}

impl FlowArena {
    /// Empty arena.
    pub fn new() -> FlowArena {
        FlowArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            rx_bytes: Vec::new(),
            credits_sent: Vec::new(),
            credits_wasted: Vec::new(),
            flags: Vec::new(),
        }
    }

    /// Number of slots (live + vacant). Equals the dense flow-id space.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of live (occupied) flows.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Reserve a slot and return its handle. The caller must follow with
    /// [`commit`](Self::commit); the slot is not live until then. Reuses
    /// the most recently freed slot first (LIFO), else appends.
    pub fn alloc(&mut self) -> FlowHandle {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    occupied: false,
                    info: FlowInfo {
                        id: FlowId(i),
                        src: crate::ids::HostId(0),
                        dst: crate::ids::HostId(0),
                        size_bytes: 0,
                        start: xpass_sim::time::SimTime::ZERO,
                        class: 0,
                    },
                    sender: None,
                    receiver: None,
                    fct: None,
                });
                self.rx_bytes.push(0);
                self.credits_sent.push(0);
                self.credits_wasted.push(0);
                self.flags.push(0);
                i
            }
        };
        FlowHandle {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    /// Fill a slot reserved with [`alloc`](Self::alloc) and mark it live.
    pub fn commit(
        &mut self,
        h: FlowHandle,
        info: FlowInfo,
        sender: Box<dyn Endpoint>,
        receiver: Box<dyn Endpoint>,
    ) {
        let s = &mut self.slots[h.idx as usize];
        assert_eq!(s.gen, h.gen, "commit with stale handle");
        assert!(!s.occupied, "commit to occupied slot");
        debug_assert_eq!(info.id.0, h.idx, "flow id must equal slot index");
        s.occupied = true;
        s.info = info;
        s.sender = Some(sender);
        s.receiver = Some(receiver);
        s.fct = None;
        let i = h.idx as usize;
        self.rx_bytes[i] = 0;
        self.credits_sent[i] = 0;
        self.credits_wasted[i] = 0;
        self.flags[i] = 0;
        self.live += 1;
    }

    /// Retire a live slot: drop its endpoints, bump the generation (so
    /// stale handles and timers go dead), and push it on the free list.
    /// Returns the flow's identity and final counters.
    pub fn retire(&mut self, h: FlowHandle) -> (FlowInfo, Option<Dur>) {
        let s = &mut self.slots[h.idx as usize];
        assert_eq!(s.gen, h.gen, "retire with stale handle");
        assert!(s.occupied, "retire of vacant slot");
        s.occupied = false;
        s.gen = s.gen.wrapping_add(1);
        s.sender = None;
        s.receiver = None;
        let fct = s.fct.take();
        let info = s.info.clone();
        self.free.push(h.idx);
        self.live -= 1;
        (info, fct)
    }

    /// Handle for a flow id, if the slot is live.
    pub fn handle(&self, flow: FlowId) -> Option<FlowHandle> {
        let s = self.slots.get(flow.0 as usize)?;
        if s.occupied {
            Some(FlowHandle {
                idx: flow.0,
                gen: s.gen,
            })
        } else {
            None
        }
    }

    /// True when the slot is live and the handle generation is current.
    #[inline]
    pub fn check_gen(&self, flow: FlowId, gen: u32) -> bool {
        match self.slots.get(flow.0 as usize) {
            Some(s) => s.occupied && s.gen == gen,
            None => false,
        }
    }

    /// True when the flow id addresses a live slot.
    #[inline]
    pub fn is_live(&self, flow: FlowId) -> bool {
        matches!(self.slots.get(flow.0 as usize), Some(s) if s.occupied)
    }

    /// Current generation of a slot (live or vacant). Panics out of range.
    pub fn gen(&self, flow: FlowId) -> u32 {
        self.slots[flow.0 as usize].gen
    }

    /// Flow identity. Panics if the slot is vacant or out of range.
    #[inline]
    pub fn info(&self, flow: FlowId) -> &FlowInfo {
        let s = &self.slots[flow.0 as usize];
        debug_assert!(s.occupied, "info() on vacant slot {flow}");
        &s.info
    }

    /// Recorded flow-completion time, if completed.
    pub fn fct(&self, flow: FlowId) -> Option<Dur> {
        self.slots[flow.0 as usize].fct
    }

    /// Record the flow-completion time.
    pub fn set_fct(&mut self, flow: FlowId, fct: Dur) {
        self.slots[flow.0 as usize].fct = Some(fct);
    }

    // ---- SoA hot-field accessors -------------------------------------

    /// Receiver-side delivered bytes.
    #[inline]
    pub fn rx_bytes(&self, flow: FlowId) -> u64 {
        self.rx_bytes[flow.0 as usize]
    }

    /// Add delivered bytes; returns the new total.
    #[inline]
    pub fn add_rx_bytes(&mut self, flow: FlowId, bytes: u64) -> u64 {
        let r = &mut self.rx_bytes[flow.0 as usize];
        *r += bytes;
        *r
    }

    /// Credits sent by this flow's receiver.
    #[inline]
    pub fn credits_sent(&self, flow: FlowId) -> u64 {
        self.credits_sent[flow.0 as usize]
    }

    /// Count one credit sent.
    #[inline]
    pub fn incr_credits_sent(&mut self, flow: FlowId) {
        self.credits_sent[flow.0 as usize] += 1;
    }

    /// Credits that arrived but triggered no data (paper §6.3).
    #[inline]
    pub fn credits_wasted(&self, flow: FlowId) -> u64 {
        self.credits_wasted[flow.0 as usize]
    }

    /// Count one wasted credit.
    #[inline]
    pub fn incr_credits_wasted(&mut self, flow: FlowId) {
        self.credits_wasted[flow.0 as usize] += 1;
    }

    /// Raw flag byte (`FLAG_*` bits).
    #[inline]
    pub fn flags(&self, flow: FlowId) -> u8 {
        self.flags[flow.0 as usize]
    }

    /// True once fully delivered.
    #[inline]
    pub fn is_done(&self, flow: FlowId) -> bool {
        self.flags[flow.0 as usize] & FLAG_DONE != 0
    }

    /// True once aborted.
    #[inline]
    pub fn is_aborted(&self, flow: FlowId) -> bool {
        self.flags[flow.0 as usize] & FLAG_ABORTED != 0
    }

    /// True while flagged stalled.
    #[inline]
    pub fn is_stalled(&self, flow: FlowId) -> bool {
        self.flags[flow.0 as usize] & FLAG_STALLED != 0
    }

    /// Set or clear a flag bit; returns true if the byte changed.
    #[inline]
    pub fn set_flag(&mut self, flow: FlowId, bit: u8, on: bool) -> bool {
        let f = &mut self.flags[flow.0 as usize];
        let old = *f;
        if on {
            *f |= bit;
        } else {
            *f &= !bit;
        }
        *f != old
    }

    // ---- endpoint take/put-back (dispatch + snapshot) ----------------

    /// Take an endpoint out for dispatch; `None` if absent (re-entrant
    /// dispatch, retired slot, or still checked out).
    pub fn take_endpoint(&mut self, flow: FlowId, side: Side) -> Option<Box<dyn Endpoint>> {
        let s = self.slots.get_mut(flow.0 as usize)?;
        match side {
            Side::Sender => s.sender.take(),
            Side::Receiver => s.receiver.take(),
        }
    }

    /// Put a dispatched endpoint back.
    pub fn put_endpoint(&mut self, flow: FlowId, side: Side, ep: Box<dyn Endpoint>) {
        let s = &mut self.slots[flow.0 as usize];
        let slot = match side {
            Side::Sender => &mut s.sender,
            Side::Receiver => &mut s.receiver,
        };
        debug_assert!(slot.is_none(), "put_endpoint over a present endpoint");
        *slot = Some(ep);
    }

    /// Borrow an endpoint immutably (snapshot serialization).
    pub fn endpoint(&self, flow: FlowId, side: Side) -> Option<&dyn Endpoint> {
        let s = self.slots.get(flow.0 as usize)?;
        match side {
            Side::Sender => s.sender.as_deref(),
            Side::Receiver => s.receiver.as_deref(),
        }
    }

    /// Borrow an endpoint mutably (restore overlay, oracle downcasts).
    pub fn endpoint_mut(&mut self, flow: FlowId, side: Side) -> Option<&mut Box<dyn Endpoint>> {
        let s = self.slots.get_mut(flow.0 as usize)?;
        match side {
            Side::Sender => s.sender.as_mut(),
            Side::Receiver => s.receiver.as_mut(),
        }
    }

    /// Iterate live flow ids in index order.
    pub fn live_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.occupied)
            .map(|(i, _)| FlowId(i as u32))
    }

    /// Whether each slot is live, in index order (snapshot layout).
    pub fn occupancy(&self) -> impl Iterator<Item = bool> + '_ {
        self.slots.iter().map(|s| s.occupied)
    }

    // ---- snapshot/restore plumbing -----------------------------------

    /// Overwrite a slot's generation (snapshot restore overlay).
    pub fn force_gen(&mut self, flow: FlowId, gen: u32) {
        self.slots[flow.0 as usize].gen = gen;
    }

    /// Append a vacant slot with the given generation (restore of a
    /// snapshot whose tail slots were retired).
    pub fn push_vacant(&mut self, gen: u32) {
        let i = self.slots.len() as u32;
        self.slots.push(Slot {
            gen,
            occupied: false,
            info: FlowInfo {
                id: FlowId(i),
                src: crate::ids::HostId(0),
                dst: crate::ids::HostId(0),
                size_bytes: 0,
                start: xpass_sim::time::SimTime::ZERO,
                class: 0,
            },
            sender: None,
            receiver: None,
            fct: None,
        });
        self.rx_bytes.push(0);
        self.credits_sent.push(0);
        self.credits_wasted.push(0);
        self.flags.push(0);
    }

    /// Overwrite a live slot's hot fields (restore overlay).
    #[allow(clippy::too_many_arguments)]
    pub fn overlay_dynamic(
        &mut self,
        flow: FlowId,
        rx_bytes: u64,
        credits_sent: u64,
        credits_wasted: u64,
        flags: u8,
        fct: Option<Dur>,
    ) {
        let i = flow.0 as usize;
        self.rx_bytes[i] = rx_bytes;
        self.credits_sent[i] = credits_sent;
        self.credits_wasted[i] = credits_wasted;
        self.flags[i] = flags;
        self.slots[i].fct = fct;
    }

    /// The free list, most recently freed last (snapshot layout).
    pub fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Replace the free list (restore). Entries must address vacant slots.
    pub fn set_free_list(&mut self, free: Vec<u32>) {
        debug_assert!(free
            .iter()
            .all(|&i| (i as usize) < self.slots.len() && !self.slots[i as usize].occupied));
        self.free = free;
    }
}

impl Default for FlowArena {
    fn default() -> Self {
        FlowArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use std::any::Any;
    use xpass_sim::time::SimTime;

    struct Dummy;
    impl Endpoint for Dummy {
        fn on_start(&mut self, _ctx: &mut crate::endpoint::Ctx<'_>) {}
        fn on_packet(&mut self, _pkt: &crate::packet::Packet, _ctx: &mut crate::endpoint::Ctx<'_>) {
        }
        fn on_timer(&mut self, _kind: u8, _gen: u64, _ctx: &mut crate::endpoint::Ctx<'_>) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn snap_state(&self, _w: &mut xpass_sim::SnapWriter) {}
        fn restore_state(
            &mut self,
            _r: &mut xpass_sim::SnapReader,
        ) -> Result<(), xpass_sim::SnapError> {
            Ok(())
        }
    }

    fn info(idx: u32) -> FlowInfo {
        FlowInfo {
            id: FlowId(idx),
            src: HostId(0),
            dst: HostId(1),
            size_bytes: 100,
            start: SimTime::ZERO,
            class: 0,
        }
    }

    fn add(a: &mut FlowArena) -> FlowHandle {
        let h = a.alloc();
        a.commit(h, info(h.idx), Box::new(Dummy), Box::new(Dummy));
        h
    }

    #[test]
    fn dense_ids_without_retirement() {
        let mut a = FlowArena::new();
        for i in 0..5u32 {
            let h = add(&mut a);
            assert_eq!(h.idx, i);
            assert_eq!(h.gen, 0);
        }
        assert_eq!(a.slot_count(), 5);
        assert_eq!(a.live_count(), 5);
        assert!(a.free_list().is_empty());
    }

    #[test]
    fn retire_bumps_generation_and_reuses_slot() {
        let mut a = FlowArena::new();
        let h0 = add(&mut a);
        let _h1 = add(&mut a);
        a.retire(h0);
        assert_eq!(a.live_count(), 1);
        assert!(!a.is_live(FlowId(0)));
        assert!(!a.check_gen(FlowId(0), h0.gen));

        let h2 = a.alloc();
        assert_eq!(h2.idx, 0, "freed slot is reused");
        assert_eq!(h2.gen, 1, "reuse sees the bumped generation");
        a.commit(h2, info(0), Box::new(Dummy), Box::new(Dummy));
        assert!(a.check_gen(FlowId(0), 1));
        assert!(!a.check_gen(FlowId(0), 0), "stale handle stays dead");
    }

    #[test]
    fn soa_fields_reset_on_reuse() {
        let mut a = FlowArena::new();
        let h = add(&mut a);
        a.add_rx_bytes(h.flow(), 42);
        a.incr_credits_sent(h.flow());
        a.set_flag(h.flow(), FLAG_DONE, true);
        a.retire(h);
        let h2 = a.alloc();
        a.commit(h2, info(0), Box::new(Dummy), Box::new(Dummy));
        assert_eq!(a.rx_bytes(h2.flow()), 0);
        assert_eq!(a.credits_sent(h2.flow()), 0);
        assert_eq!(a.flags(h2.flow()), 0);
    }

    #[test]
    fn take_put_endpoint_roundtrip() {
        let mut a = FlowArena::new();
        let h = add(&mut a);
        let ep = a.take_endpoint(h.flow(), Side::Sender).unwrap();
        assert!(
            a.take_endpoint(h.flow(), Side::Sender).is_none(),
            "checked-out endpoint is absent (re-entrant dispatch drops)"
        );
        a.put_endpoint(h.flow(), Side::Sender, ep);
        assert!(a.endpoint(h.flow(), Side::Sender).is_some());
    }

    #[test]
    fn flag_set_reports_change() {
        let mut a = FlowArena::new();
        let h = add(&mut a);
        assert!(a.set_flag(h.flow(), FLAG_STALLED, true));
        assert!(!a.set_flag(h.flow(), FLAG_STALLED, true));
        assert!(a.set_flag(h.flow(), FLAG_STALLED, false));
        assert!(!a.is_done(h.flow()) && !a.is_aborted(h.flow()));
    }

    #[test]
    #[should_panic(expected = "retire with stale handle")]
    fn stale_retire_panics() {
        let mut a = FlowArena::new();
        let h = add(&mut a);
        a.retire(h);
        let h2 = a.alloc();
        a.commit(h2, info(0), Box::new(Dummy), Box::new(Dummy));
        a.retire(h); // stale
    }
}
