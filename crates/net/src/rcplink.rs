//! Per-link explicit-rate state for the RCP baseline.
//!
//! RCP (Dukkipati, *Rate Control Protocol*) switches compute a single rate
//! `R` per link that every flow through the link is entitled to, updated
//! every control interval `T`:
//!
//! ```text
//! R ← R · [ 1 + (T/d₀) · ( α·(C − y) − β·q/d₀ ) / C ]
//! ```
//!
//! where `C` is link capacity, `y` the measured input rate over the last
//! interval, `q` the instantaneous queue, and `d₀` the moving-average RTT of
//! packets through the link. Data packets carry a rate field that each
//! switch lowers to its `R`; the receiver echoes the bottleneck rate to the
//! sender, which paces at it. New flows start at the current `R` — the
//! behaviour responsible for the queue overshoot the paper reports in
//! Fig 15(f).

use xpass_sim::time::{Dur, SimTime};

/// RCP algorithm parameters.
#[derive(Clone, Copy, Debug)]
pub struct RcpParams {
    /// Gain on spare capacity (classic default 0.4).
    pub alpha: f64,
    /// Gain on queue drain (classic default 0.2).
    pub beta: f64,
    /// Initial moving-average RTT before any sample arrives.
    pub init_rtt: Dur,
    /// Floor on the advertised rate as a fraction of capacity (keeps the
    /// fixed point away from zero with huge flow counts).
    pub min_rate_frac: f64,
}

impl Default for RcpParams {
    fn default() -> RcpParams {
        RcpParams {
            alpha: 0.4,
            beta: 0.2,
            init_rtt: Dur::us(100),
            min_rate_frac: 1e-4,
        }
    }
}

/// Explicit-rate state attached to one directed link.
#[derive(Clone, Debug)]
pub struct RcpLink {
    params: RcpParams,
    cap_bps: f64,
    /// Current advertised rate (bits/s).
    rate_bps: f64,
    /// Moving-average RTT (seconds).
    avg_rtt: f64,
    /// Bytes that arrived at this port since the last update.
    bytes_in: u64,
    last_update: SimTime,
}

impl RcpLink {
    /// New state for a link of `cap_bps`; the initial advertised rate is the
    /// full capacity (RCP processor-sharing start).
    pub fn new(cap_bps: u64, params: RcpParams) -> RcpLink {
        RcpLink {
            params,
            cap_bps: cap_bps as f64,
            rate_bps: cap_bps as f64,
            avg_rtt: params.init_rtt.as_secs_f64(),
            bytes_in: 0,
            last_update: SimTime::ZERO,
        }
    }

    /// Current advertised rate in bits/s.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// The control interval: `min(avg RTT, 10 ms)`, the RCP default.
    pub fn update_interval(&self) -> Dur {
        Dur::from_secs_f64(self.avg_rtt.clamp(1e-6, 0.01))
    }

    /// Record a data packet traversing the port: accumulate the input-rate
    /// estimate and fold its RTT sample into the moving average.
    pub fn on_packet(&mut self, wire_bytes: u32, rtt_sample: Option<Dur>) {
        self.bytes_in += wire_bytes as u64;
        if let Some(rtt) = rtt_sample {
            let s = rtt.as_secs_f64();
            if s > 0.0 {
                // Standard RCP running average with gain 0.02.
                self.avg_rtt = 0.98 * self.avg_rtt + 0.02 * s;
            }
        }
    }

    /// Periodic rate update. `queue_bytes` is the instantaneous data queue.
    pub fn update(&mut self, now: SimTime, queue_bytes: u64) {
        let t = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        if t <= 0.0 {
            return;
        }
        let y = self.bytes_in as f64 * 8.0 / t; // measured input, bits/s
        self.bytes_in = 0;
        let d0 = self.avg_rtt.max(1e-6);
        let q_bits = queue_bytes as f64 * 8.0;
        let spare = self.params.alpha * (self.cap_bps - y);
        let drain = self.params.beta * q_bits / d0;
        let factor = 1.0 + (t / d0) * (spare - drain) / self.cap_bps;
        self.rate_bps =
            (self.rate_bps * factor).clamp(self.cap_bps * self.params.min_rate_frac, self.cap_bps);
    }

    /// Stamp a packet's rate field with `min(current, R)`.
    pub fn stamp(&self, rate_field: f64) -> f64 {
        rate_field.min(self.rate_bps)
    }
}

impl xpass_sim::Snapshot for RcpLink {
    // Parameters and capacity are configuration; the advertised rate, RTT
    // average, input-rate accumulator and update timestamp are dynamic.
    fn snap(&self, w: &mut xpass_sim::SnapWriter) {
        w.f64(self.rate_bps);
        w.f64(self.avg_rtt);
        w.u64(self.bytes_in);
        w.u64(self.last_update.0);
    }
}

impl xpass_sim::Restore for RcpLink {
    fn restore(&mut self, r: &mut xpass_sim::SnapReader) -> Result<(), xpass_sim::SnapError> {
        self.rate_bps = r.f64()?;
        self.avg_rtt = r.f64()?;
        self.bytes_in = r.u64()?;
        self.last_update = SimTime(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: u64 = 10_000_000_000;

    #[test]
    fn idle_link_advertises_full_capacity() {
        let mut l = RcpLink::new(C, RcpParams::default());
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += Dur::us(100);
            l.update(now, 0);
        }
        assert!((l.rate_bps() - C as f64).abs() < C as f64 * 1e-6);
    }

    #[test]
    fn overloaded_link_reduces_rate_toward_fair_share() {
        let mut l = RcpLink::new(C, RcpParams::default());
        let mut now = SimTime::ZERO;
        // Simulate 4 flows each sending at the advertised rate: input is
        // 4×R; rate should fall until 4×R ≈ C, i.e. R → C/4.
        for _ in 0..3000 {
            let dt = Dur::us(100);
            now += dt;
            let bytes = (4.0 * l.rate_bps() * dt.as_secs_f64() / 8.0) as u64;
            // queue grows if input exceeds capacity
            let q = ((4.0 * l.rate_bps() - C as f64) * 0.0001 / 8.0).max(0.0) as u64;
            for _ in 0..1 {
                l.on_packet(0, Some(Dur::us(100)));
            }
            l.bytes_in += bytes;
            l.update(now, q);
        }
        let share = l.rate_bps() / C as f64;
        assert!(
            (share - 0.25).abs() < 0.05,
            "converged share {share} (want ~0.25)"
        );
    }

    #[test]
    fn queue_pressure_lowers_rate() {
        let mut l = RcpLink::new(C, RcpParams::default());
        let before = l.rate_bps();
        l.bytes_in = C / 8 / 10_000; // input ≈ capacity over 100us
        l.update(SimTime::ZERO + Dur::us(100), 500_000); // big queue
        assert!(l.rate_bps() < before);
    }

    #[test]
    fn rate_never_exceeds_capacity_nor_floor() {
        let mut l = RcpLink::new(C, RcpParams::default());
        let mut now = SimTime::ZERO;
        for i in 0..1000 {
            now += Dur::us(100);
            // Alternate famine and flood.
            if i % 2 == 0 {
                l.bytes_in = 10_000_000;
            }
            l.update(now, if i % 3 == 0 { 1_000_000 } else { 0 });
            assert!(l.rate_bps() <= C as f64 + 1.0);
            assert!(l.rate_bps() >= C as f64 * 1e-4 - 1.0);
        }
    }

    #[test]
    fn stamp_takes_minimum() {
        let l = RcpLink::new(C, RcpParams::default());
        assert_eq!(l.stamp(f64::INFINITY), C as f64);
        assert_eq!(l.stamp(1e9), 1e9);
    }

    #[test]
    fn rtt_average_tracks_samples() {
        let mut l = RcpLink::new(C, RcpParams::default());
        for _ in 0..500 {
            l.on_packet(1538, Some(Dur::us(50)));
        }
        assert!((l.avg_rtt - 50e-6).abs() < 5e-6, "{}", l.avg_rtt);
        assert!(l.update_interval() >= Dur::us(40));
    }
}
