//! Egress-port queues: the drop-tail data queue (with optional ECN marking
//! and a HULL phantom queue) and the tiny leaky-bucket-metered credit queue.
//!
//! Credit queues follow §3.1/§5 of the paper: a separate per-port class with
//! a fixed buffer of a handful of credit packets ("buffer carving"), paced by
//! maximum-bandwidth metering with a burst of 2 credits, so at peak rate
//! credits are spaced exactly one MTU-time apart.

use crate::packet::{Packet, CREDIT_SIZE};
use std::collections::VecDeque;
use xpass_sim::bucket::TokenBucket;
use xpass_sim::stats::TimeWeighted;
use xpass_sim::time::SimTime;

/// ECN marking configuration for a data queue.
#[derive(Clone, Copy, Debug)]
pub struct EcnCfg {
    /// Instantaneous marking threshold in bytes (DCTCP's K).
    pub k_bytes: u64,
}

/// HULL phantom ("virtual") queue: a counter that drains at a fraction of
/// link speed and marks ECN when it exceeds a threshold, signalling
/// congestion *before* any real queue forms.
#[derive(Clone, Debug)]
pub struct PhantomQueue {
    /// Drain rate in bits per second (γ·C, e.g. 0.95·C).
    pub drain_bps: u64,
    /// Marking threshold in bytes.
    pub thresh_bytes: u64,
    vq_bits: u128,
    last: SimTime,
}

impl PhantomQueue {
    /// New phantom queue draining at `drain_bps`, marking above
    /// `thresh_bytes`.
    pub fn new(drain_bps: u64, thresh_bytes: u64) -> PhantomQueue {
        PhantomQueue {
            drain_bps,
            thresh_bytes,
            vq_bits: 0,
            last: SimTime::ZERO,
        }
    }

    /// Account a packet of `bytes` arriving at `now`; returns `true` if the
    /// packet must be ECN-marked.
    pub fn on_packet(&mut self, now: SimTime, bytes: u32) -> bool {
        let dt_ps = now.since(self.last).as_ps() as u128;
        self.last = now;
        let drained = dt_ps * self.drain_bps as u128 / 1_000_000_000_000;
        self.vq_bits = self.vq_bits.saturating_sub(drained);
        self.vq_bits += bytes as u128 * 8;
        self.vq_bits > self.thresh_bytes as u128 * 8
    }

    /// Current virtual queue length in bytes.
    pub fn len_bytes(&self) -> u64 {
        (self.vq_bits / 8) as u64
    }
}

/// Statistics kept by every queue.
#[derive(Clone, Debug, Default)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets dropped at the tail.
    pub dropped: u64,
    /// Packets ECN-marked.
    pub marked: u64,
    /// Time-weighted occupancy (bytes) and max.
    pub occupancy: TimeWeighted,
    /// Maximum instantaneous length in bytes.
    pub max_bytes: u64,
}

/// What happened to a packet offered to a [`DataQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnqueueOutcome {
    /// The packet was accepted (false = tail drop).
    pub accepted: bool,
    /// The packet picked up an ECN mark on this enqueue (it arrived
    /// unmarked and left the admission path marked).
    pub newly_marked: bool,
    /// Queue occupancy in bytes after the operation.
    pub qlen_bytes: u64,
}

/// Drop-tail FIFO data queue with optional ECN and phantom-queue marking.
#[derive(Debug)]
pub struct DataQueue {
    q: VecDeque<Packet>,
    len_bytes: u64,
    cap_bytes: u64,
    /// ECN marking config, if enabled.
    pub ecn: Option<EcnCfg>,
    /// HULL phantom queue, if enabled.
    pub phantom: Option<PhantomQueue>,
    /// Occupancy / drop / mark counters.
    pub stats: QueueStats,
}

impl DataQueue {
    /// New queue with the given byte capacity.
    pub fn new(cap_bytes: u64) -> DataQueue {
        DataQueue {
            q: VecDeque::new(),
            len_bytes: 0,
            cap_bytes,
            ecn: None,
            phantom: None,
            stats: QueueStats::default(),
        }
    }

    /// Attempt to enqueue; returns `false` (and counts a drop) when the
    /// packet does not fit. Applies ECN/phantom marking on accepted packets.
    pub fn enqueue(&mut self, now: SimTime, pkt: Packet) -> bool {
        self.enqueue_outcome(now, pkt).accepted
    }

    /// [`enqueue`](Self::enqueue) reporting the full [`EnqueueOutcome`]
    /// (accepted / newly ECN-marked / resulting occupancy) so callers can
    /// observe what happened without peeking at `stats` deltas.
    pub fn enqueue_outcome(&mut self, now: SimTime, mut pkt: Packet) -> EnqueueOutcome {
        if self.len_bytes + pkt.size as u64 > self.cap_bytes {
            self.stats.dropped += 1;
            return EnqueueOutcome {
                accepted: false,
                newly_marked: false,
                qlen_bytes: self.len_bytes,
            };
        }
        let was_marked = pkt.ecn;
        self.len_bytes += pkt.size as u64;
        self.stats.enqueued += 1;
        self.stats.max_bytes = self.stats.max_bytes.max(self.len_bytes);
        self.stats.occupancy.set(now, self.len_bytes as f64);
        if let Some(ecn) = self.ecn {
            // DCTCP marks on instantaneous queue exceeding K at arrival.
            if self.len_bytes > ecn.k_bytes {
                pkt.ecn = true;
                self.stats.marked += 1;
            }
        }
        if let Some(ph) = self.phantom.as_mut() {
            if ph.on_packet(now, pkt.size) {
                if !pkt.ecn {
                    self.stats.marked += 1;
                }
                pkt.ecn = true;
            }
        }
        let newly_marked = pkt.ecn && !was_marked;
        pkt.enq_t = now;
        self.q.push_back(pkt);
        EnqueueOutcome {
            accepted: true,
            newly_marked,
            qlen_bytes: self.len_bytes,
        }
    }

    /// Dequeue the head packet, updating its accumulated queuing delay.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let mut pkt = self.q.pop_front()?;
        self.len_bytes -= pkt.size as u64;
        self.stats.occupancy.set(now, self.len_bytes as f64);
        pkt.qdelay += now.since(pkt.enq_t);
        Some(pkt)
    }

    /// Drop every queued packet (hard port reset, e.g. a flushing link
    /// failure). Returns the number of packets discarded; they are *not*
    /// counted in `stats.dropped`, which tracks tail drops only.
    pub fn flush(&mut self, now: SimTime) -> usize {
        self.flush_counted(now).0
    }

    /// [`flush`](Self::flush) also reporting the discarded bytes, so byte
    /// conservation ledgers can account the lost backlog exactly.
    pub fn flush_counted(&mut self, now: SimTime) -> (usize, u64) {
        let n = self.q.len();
        let bytes = self.len_bytes;
        self.q.clear();
        self.len_bytes = 0;
        self.stats.occupancy.set(now, 0.0);
        (n, bytes)
    }

    /// Current length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Current length in packets.
    pub fn len_pkts(&self) -> usize {
        self.q.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Capacity in bytes.
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes
    }
}

/// How a full credit queue sheds load.
///
/// Credit drops *are* ExpressPass's congestion signal, and fairness requires
/// them to fall uniformly across flows (§3.1 "Ensuring fair credit drop").
/// `Tail` models a plain drop-tail buffer, whose arrival-order sensitivity
/// the paper shows causes severe unfairness under synchronized pacing
/// (Fig 6a); `UniformRandom` drops a uniformly random credit among the
/// queued ones and the arrival — the idealized behaviour the paper's
/// end-host jitter and credit-size randomization approximate on commodity
/// drop-tail hardware.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CreditDropPolicy {
    /// Drop the arriving credit when full.
    Tail,
    /// Drop a uniformly random credit among residents + arrival when full.
    UniformRandom,
    /// Drop the oldest credit of the flow occupying the most queue slots
    /// (counting the arrival). Longest-queue-drop sheds load proportionally
    /// with far lower per-flow variance than uniform random choice, which
    /// keeps per-RTT loss estimates stable — the low-noise behaviour the
    /// paper's deterministically-paced testbed exhibits.
    LongestQueueDrop,
}

/// What happened to a credit offered to a [`CreditQueue`]: on overflow
/// exactly one credit dies — the arrival or an evicted resident, whose
/// sizes can differ under the §3.1 size randomization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditEnqueueOutcome {
    /// Wire bytes of the credit dropped by this enqueue (`None` = clean
    /// admission, no drop).
    pub dropped_bytes: Option<u32>,
}

/// The credit-class queue at an egress port: a tiny buffer (4–8 credits)
/// drained through a token bucket at the credit rate limit.
///
/// §7 multi-class support: the buffer is carved into one FIFO sub-queue per
/// traffic class sharing the single meter, with strict priority by class
/// index — prioritizing class A's credits over class B's strictly
/// prioritizes A's *data* over B's, exactly as §7 describes.
#[derive(Debug)]
pub struct CreditQueue {
    /// One FIFO per traffic class; index = class; strict priority by index.
    qs: Vec<VecDeque<Packet>>,
    cap_pkts: usize,
    /// Overflow behaviour.
    pub drop_policy: CreditDropPolicy,
    /// Leaky bucket enforcing the credit rate (burst = 2 credits).
    pub bucket: TokenBucket,
    /// Occupancy / drop counters.
    pub stats: QueueStats,
}

impl CreditQueue {
    /// New single-class credit queue for a link of `link_bps`, buffering at
    /// most `cap_pkts` credits (paper default 8).
    pub fn new(link_bps: u64, cap_pkts: usize) -> CreditQueue {
        CreditQueue::with_classes(link_bps, cap_pkts, 1)
    }

    /// New credit queue with `classes` strict-priority sub-queues, each
    /// holding up to `cap_pkts` credits (per-class buffer carving).
    pub fn with_classes(link_bps: u64, cap_pkts: usize, classes: usize) -> CreditQueue {
        assert!(classes >= 1);
        let rate = crate::packet::credit_rate_bps(link_bps);
        CreditQueue {
            qs: (0..classes)
                .map(|_| VecDeque::with_capacity(cap_pkts))
                .collect(),
            cap_pkts,
            drop_policy: CreditDropPolicy::UniformRandom,
            bucket: TokenBucket::new(rate, 2 * CREDIT_SIZE as u64),
            stats: QueueStats::default(),
        }
    }

    /// The highest-priority non-empty class, if any.
    fn head_class(&self) -> Option<usize> {
        self.qs.iter().position(|q| !q.is_empty())
    }

    /// Attempt to enqueue a credit. On overflow one credit of the arrival's
    /// class is dropped according to [`drop_policy`](Self::drop_policy);
    /// returns `false` iff a drop occurred (the arrival may still have been
    /// admitted at the expense of a resident credit).
    pub fn enqueue(&mut self, now: SimTime, pkt: Packet, rng: &mut xpass_sim::rng::Rng) -> bool {
        self.enqueue_outcome(now, pkt, rng).dropped_bytes.is_none()
    }

    /// [`enqueue`](Self::enqueue) reporting exactly which credit (by size)
    /// was dropped on overflow. Credit sizes are randomized (84–92 B, §3.1),
    /// so an evicted resident's size can differ from the arrival's —
    /// conservation ledgers need the victim's true size.
    pub fn enqueue_outcome(
        &mut self,
        now: SimTime,
        mut pkt: Packet,
        rng: &mut xpass_sim::rng::Rng,
    ) -> CreditEnqueueOutcome {
        let class = (pkt.class as usize).min(self.qs.len() - 1);
        if self.qs[class].len() >= self.cap_pkts {
            self.stats.dropped += 1;
            match self.drop_policy {
                CreditDropPolicy::Tail => {
                    return CreditEnqueueOutcome {
                        dropped_bytes: Some(pkt.size),
                    }
                }
                CreditDropPolicy::UniformRandom => {
                    let q = &mut self.qs[class];
                    let victim = rng.index(q.len() + 1);
                    if victim == q.len() {
                        // The arrival itself is the victim.
                        return CreditEnqueueOutcome {
                            dropped_bytes: Some(pkt.size),
                        };
                    }
                    // Evict the victim and append the arrival at the tail:
                    // FIFO order of surviving credits must be preserved, or
                    // echoed sequence numbers reorder and the receiver
                    // miscounts losses.
                    let evicted = q.remove(victim).expect("victim index in range");
                    pkt.enq_t = now;
                    q.push_back(pkt);
                    self.stats.enqueued += 1;
                    return CreditEnqueueOutcome {
                        dropped_bytes: Some(evicted.size),
                    };
                }
                CreditDropPolicy::LongestQueueDrop => {
                    let q = &mut self.qs[class];
                    // Count per-flow occupancy among residents + arrival.
                    let mut best_flow = pkt.flow;
                    let mut best_count = 1usize;
                    for c in q.iter() {
                        let n = q.iter().filter(|o| o.flow == c.flow).count()
                            + usize::from(pkt.flow == c.flow);
                        if n > best_count {
                            best_count = n;
                            best_flow = c.flow;
                        }
                    }
                    if best_flow == pkt.flow && !q.iter().any(|c| c.flow == pkt.flow) {
                        // Arrival's flow is the (singleton) max: drop it.
                        return CreditEnqueueOutcome {
                            dropped_bytes: Some(pkt.size),
                        };
                    }
                    // Evict the oldest credit of the most-represented flow.
                    let mut dropped = pkt.size;
                    if let Some(idx) = q.iter().position(|c| c.flow == best_flow) {
                        let evicted = q.remove(idx).expect("victim index in range");
                        dropped = evicted.size;
                        pkt.enq_t = now;
                        q.push_back(pkt);
                        self.stats.enqueued += 1;
                    }
                    return CreditEnqueueOutcome {
                        dropped_bytes: Some(dropped),
                    };
                }
            }
        }
        self.stats.enqueued += 1;
        self.stats.max_bytes = self.stats.max_bytes.max((self.len() + 1) as u64);
        self.stats.occupancy.set(now, (self.len() + 1) as f64);
        pkt.enq_t = now;
        self.qs[class].push_back(pkt);
        CreditEnqueueOutcome {
            dropped_bytes: None,
        }
    }

    /// Whether the head credit conforms to the meter right now. Metering is
    /// in actual wire bytes, so the 84–92 B size randomization (§3.1)
    /// translates into jittered drain times at every switch — the mechanism
    /// the paper uses to break credit-drop synchronization across switches.
    pub fn head_conforms(&mut self, now: SimTime) -> bool {
        match self.head_class() {
            Some(c) => {
                let sz = self.qs[c].front().expect("nonempty class").size as u64;
                self.bucket.conforms(now, sz)
            }
            None => false,
        }
    }

    /// Earliest time the head credit could conform (`None` if empty).
    pub fn head_ready_at(&mut self, now: SimTime) -> Option<SimTime> {
        let c = self.head_class()?;
        let sz = self.qs[c].front().expect("nonempty class").size as u64;
        Some(self.bucket.time_until_conforming(now, sz))
    }

    /// Dequeue the highest-priority head credit, consuming meter tokens.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let c = self.head_class()?;
        let mut pkt = self.qs[c].pop_front()?;
        self.bucket.consume(now, pkt.size as u64);
        self.stats.occupancy.set(now, self.len() as f64);
        pkt.qdelay += now.since(pkt.enq_t);
        Some(pkt)
    }

    /// Drop every queued credit across all classes without touching the
    /// meter (hard port reset). Returns the number discarded; not counted
    /// in `stats.dropped`, which is the congestion signal.
    pub fn flush(&mut self, now: SimTime) -> usize {
        self.flush_counted(now).0
    }

    /// [`flush`](Self::flush) also reporting the discarded wire bytes.
    pub fn flush_counted(&mut self, now: SimTime) -> (usize, u64) {
        let n = self.len();
        let bytes = self.len_bytes();
        for q in &mut self.qs {
            q.clear();
        }
        self.stats.occupancy.set(now, 0.0);
        (n, bytes)
    }

    /// Credits currently queued across all classes.
    pub fn len(&self) -> usize {
        self.qs.iter().map(|q| q.len()).sum()
    }

    /// Wire bytes currently queued across all classes.
    pub fn len_bytes(&self) -> u64 {
        self.qs
            .iter()
            .flat_map(|q| q.iter())
            .map(|p| p.size as u64)
            .sum()
    }

    /// True when no credits are queued.
    pub fn is_empty(&self) -> bool {
        self.qs.iter().all(|q| q.is_empty())
    }

    /// Buffer capacity per class, in credits.
    pub fn cap_pkts(&self) -> usize {
        self.cap_pkts
    }

    /// Worst-case drain time of a full credit queue: `cap` credits at the
    /// metered rate. This is the `max(d_credit)` term of Eq. (1).
    pub fn max_drain_time(&self) -> xpass_sim::time::Dur {
        // One credit per (CREDIT_SIZE + MAX_FRAME) slot of link time, which
        // equals CREDIT_SIZE bytes at the metered credit rate.
        let interval = xpass_sim::time::tx_time(CREDIT_SIZE as u64, self.bucket.rate_bps());
        interval * self.cap_pkts as u64
    }
}

// --- Snapshot/restore -------------------------------------------------------
//
// Queues capture queued packets plus counters; capacities, ECN thresholds,
// drop policies, and meter rates are configuration rebuilt by setup.

use xpass_sim::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for QueueStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.enqueued);
        w.u64(self.dropped);
        w.u64(self.marked);
        self.occupancy.snap(w);
        w.u64(self.max_bytes);
    }
}

impl Restore for QueueStats {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.enqueued = r.u64()?;
        self.dropped = r.u64()?;
        self.marked = r.u64()?;
        self.occupancy.restore(r)?;
        self.max_bytes = r.u64()?;
        Ok(())
    }
}

impl Snapshot for PhantomQueue {
    fn snap(&self, w: &mut SnapWriter) {
        w.u128(self.vq_bits);
        w.u64(self.last.0);
    }
}

impl Restore for PhantomQueue {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.vq_bits = r.u128()?;
        self.last = SimTime(r.u64()?);
        Ok(())
    }
}

impl Snapshot for DataQueue {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.q.len());
        for p in &self.q {
            p.snap(w);
        }
        w.u64(self.len_bytes);
        w.opt(self.phantom.as_ref(), |w, ph| ph.snap(w));
        self.stats.snap(w);
    }
}

impl Restore for DataQueue {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.seq_len(8)?;
        self.q = (0..n)
            .map(|_| Packet::from_snap(r))
            .collect::<Result<_, _>>()?;
        self.len_bytes = r.u64()?;
        let had_phantom = r.bool()?;
        if had_phantom {
            let ph = self
                .phantom
                .as_mut()
                .ok_or_else(|| r.err("snapshot has a phantom queue, configuration does not"))?;
            ph.restore(r)?;
        } else if self.phantom.is_some() {
            return Err(r.err("configuration has a phantom queue, snapshot does not"));
        }
        self.stats.restore(r)
    }
}

impl Snapshot for CreditQueue {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.qs.len());
        for q in &self.qs {
            w.usize(q.len());
            for p in q {
                p.snap(w);
            }
        }
        self.bucket.snap(w);
        self.stats.snap(w);
    }
}

impl Restore for CreditQueue {
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let classes = r.seq_len(8)?;
        if classes != self.qs.len() {
            return Err(r.err(format!(
                "credit class count mismatch: configuration has {}, snapshot has {classes}",
                self.qs.len()
            )));
        }
        for q in &mut self.qs {
            let n = r.seq_len(8)?;
            *q = (0..n)
                .map(|_| Packet::from_snap(r))
                .collect::<Result<_, _>>()?;
        }
        self.bucket.restore(r)?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use crate::packet::PktKind;
    use xpass_sim::time::Dur;

    fn data_pkt(size: u32) -> Packet {
        Packet::new(FlowId(0), HostId(0), HostId(1), PktKind::Data, size)
    }

    fn credit_pkt() -> Packet {
        Packet::new(
            FlowId(0),
            HostId(1),
            HostId(0),
            PktKind::Credit,
            CREDIT_SIZE,
        )
    }

    fn rng() -> xpass_sim::rng::Rng {
        xpass_sim::rng::Rng::new(99)
    }

    #[test]
    fn droptail_drops_when_full() {
        let mut q = DataQueue::new(3000);
        assert!(q.enqueue(SimTime::ZERO, data_pkt(1538)));
        assert!(q.enqueue(SimTime::ZERO, data_pkt(1400)));
        assert!(!q.enqueue(SimTime::ZERO, data_pkt(100)));
        assert_eq!(q.stats.dropped, 1);
        assert_eq!(q.len_bytes(), 2938);
        assert_eq!(q.len_pkts(), 2);
    }

    #[test]
    fn fifo_order_and_qdelay() {
        let mut q = DataQueue::new(1 << 20);
        let mut p1 = data_pkt(100);
        p1.seq = 1;
        let mut p2 = data_pkt(100);
        p2.seq = 2;
        q.enqueue(SimTime::ZERO, p1);
        q.enqueue(SimTime::ZERO, p2);
        let out = q.dequeue(SimTime::ZERO + Dur::us(5)).unwrap();
        assert_eq!(out.seq, 1);
        assert_eq!(out.qdelay, Dur::us(5));
        let out2 = q.dequeue(SimTime::ZERO + Dur::us(9)).unwrap();
        assert_eq!(out2.seq, 2);
        assert_eq!(out2.qdelay, Dur::us(9));
        assert!(q.dequeue(SimTime::ZERO + Dur::us(9)).is_none());
    }

    #[test]
    fn ecn_marks_above_k() {
        let mut q = DataQueue::new(1 << 20);
        q.ecn = Some(EcnCfg { k_bytes: 3000 });
        q.enqueue(SimTime::ZERO, data_pkt(1538)); // 1538 ≤ 3000: clean
        q.enqueue(SimTime::ZERO, data_pkt(1538)); // 3076 > 3000: marked
        let a = q.dequeue(SimTime::ZERO).unwrap();
        let b = q.dequeue(SimTime::ZERO).unwrap();
        assert!(!a.ecn);
        assert!(b.ecn);
        assert_eq!(q.stats.marked, 1);
    }

    #[test]
    fn phantom_queue_marks_when_over_virtual_capacity() {
        // Drain at 95% of 10G; feed at 10G for a while → vq grows, marks.
        let mut ph = PhantomQueue::new(9_500_000_000, 3000);
        let mut now = SimTime::ZERO;
        let mut marked = false;
        for _ in 0..1000 {
            marked |= ph.on_packet(now, 1538);
            now += xpass_sim::time::tx_time(1538, 10_000_000_000);
        }
        assert!(marked, "vq={}", ph.len_bytes());
    }

    #[test]
    fn phantom_queue_stays_clean_below_drain_rate() {
        // Feed at 50% of drain rate → no marking.
        let mut ph = PhantomQueue::new(9_500_000_000, 3000);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            assert!(!ph.on_packet(now, 1538));
            now += xpass_sim::time::tx_time(1538, 5_000_000_000).mul_f64(2.0);
        }
    }

    #[test]
    fn credit_queue_caps_at_configured_depth() {
        let mut cq = CreditQueue::new(10_000_000_000, 8);
        for _ in 0..8 {
            assert!(cq.enqueue(SimTime::ZERO, credit_pkt(), &mut rng()));
        }
        assert!(!cq.enqueue(SimTime::ZERO, credit_pkt(), &mut rng()));
        assert_eq!(cq.stats.dropped, 1);
        assert_eq!(cq.len(), 8);
        assert_eq!(cq.cap_pkts(), 8);
    }

    #[test]
    fn credit_queue_metering_paces_credits() {
        let mut cq = CreditQueue::new(10_000_000_000, 8);
        for _ in 0..4 {
            cq.enqueue(SimTime::ZERO, credit_pkt(), &mut rng());
        }
        // Burst of 2 allowed immediately.
        assert!(cq.head_conforms(SimTime::ZERO));
        cq.dequeue(SimTime::ZERO);
        assert!(cq.head_conforms(SimTime::ZERO));
        cq.dequeue(SimTime::ZERO);
        // Third credit must wait ~one credit interval (1622B at 10G ≈ 1.3us).
        assert!(!cq.head_conforms(SimTime::ZERO));
        let ready = cq.head_ready_at(SimTime::ZERO).unwrap();
        let ps = ready.as_ps();
        assert!((1_290_000..1_310_000).contains(&ps), "ready at {ps}ps");
    }

    #[test]
    fn credit_queue_empty_behaviour() {
        let mut cq = CreditQueue::new(10_000_000_000, 8);
        assert!(!cq.head_conforms(SimTime::ZERO));
        assert!(cq.head_ready_at(SimTime::ZERO).is_none());
        assert!(cq.dequeue(SimTime::ZERO).is_none());
        assert!(cq.is_empty());
    }

    #[test]
    fn credit_queue_drain_time_bound() {
        let cq = CreditQueue::new(10_000_000_000, 8);
        // 8 credits × 1.2976us ≈ 10.4us.
        let d = cq.max_drain_time();
        let us = d.as_micros_f64();
        assert!((10.0..11.0).contains(&us), "{us}");
    }

    #[test]
    fn enqueue_outcome_reports_admission_and_marking() {
        let mut q = DataQueue::new(4000);
        q.ecn = Some(EcnCfg { k_bytes: 1600 });
        let ok = q.enqueue_outcome(SimTime::ZERO, data_pkt(1538));
        assert!(ok.accepted);
        assert!(!ok.newly_marked);
        assert_eq!(ok.qlen_bytes, 1538);
        let marked = q.enqueue_outcome(SimTime::ZERO, data_pkt(1538));
        assert!(marked.accepted);
        assert!(marked.newly_marked, "3076 > K=1600");
        assert_eq!(marked.qlen_bytes, 3076);
        // Already-marked arrivals are not "newly" marked.
        let mut pre = data_pkt(100);
        pre.ecn = true;
        let pre_out = q.enqueue_outcome(SimTime::ZERO, pre);
        assert!(pre_out.accepted && !pre_out.newly_marked);
        // Overflow: rejected, occupancy unchanged.
        let full = q.enqueue_outcome(SimTime::ZERO, data_pkt(1538));
        assert!(!full.accepted);
        assert_eq!(full.qlen_bytes, 3176);
        assert_eq!(q.stats.dropped, 1);
    }

    #[test]
    fn occupancy_stats_track_time_weighted_mean() {
        let mut q = DataQueue::new(1 << 20);
        q.enqueue(SimTime::ZERO, data_pkt(1000));
        q.dequeue(SimTime::ZERO + Dur::us(10));
        q.stats.occupancy.finish(SimTime::ZERO + Dur::us(20));
        // 1000B for 10us, 0 for 10us → mean 500.
        assert!((q.stats.occupancy.mean() - 500.0).abs() < 1.0);
        assert_eq!(q.stats.max_bytes, 1000);
    }
}

#[cfg(test)]
mod class_tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use crate::packet::PktKind;
    use xpass_sim::time::Dur;

    fn credit_of(class: u8, flow: u32) -> Packet {
        let mut p = Packet::new(FlowId(flow), HostId(flow), HostId(9), PktKind::Credit, 84);
        p.class = class;
        p
    }

    fn rng() -> xpass_sim::rng::Rng {
        xpass_sim::rng::Rng::new(5)
    }

    #[test]
    fn strict_priority_across_classes() {
        let mut q = CreditQueue::with_classes(10_000_000_000, 8, 2);
        let mut r = rng();
        // Enqueue low-priority first, then high-priority.
        q.enqueue(SimTime::ZERO, credit_of(1, 10), &mut r);
        q.enqueue(SimTime::ZERO, credit_of(1, 10), &mut r);
        q.enqueue(SimTime::ZERO, credit_of(0, 20), &mut r);
        // Class 0 drains first despite arriving last.
        let first = q.dequeue(SimTime::ZERO).unwrap();
        assert_eq!(first.class, 0);
        let second = q.dequeue(SimTime::ZERO + Dur::us(2)).unwrap();
        assert_eq!(second.class, 1);
    }

    #[test]
    fn per_class_buffer_carving() {
        // Each class gets its own cap: filling class 1 does not evict or
        // block class 0.
        let mut q = CreditQueue::with_classes(10_000_000_000, 4, 2);
        let mut r = rng();
        for _ in 0..6 {
            q.enqueue(SimTime::ZERO, credit_of(1, 10), &mut r);
        }
        assert_eq!(q.stats.dropped, 2, "class-1 overflow");
        assert!(q.enqueue(SimTime::ZERO, credit_of(0, 20), &mut r));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn out_of_range_class_clamps_to_last() {
        let mut q = CreditQueue::with_classes(10_000_000_000, 4, 2);
        let mut r = rng();
        assert!(q.enqueue(SimTime::ZERO, credit_of(7, 1), &mut r));
        assert_eq!(q.len(), 1);
        // It drains as the lowest-priority class.
        let out = q.dequeue(SimTime::ZERO).unwrap();
        assert_eq!(out.class, 7);
    }

    #[test]
    fn meter_is_shared_across_classes() {
        // Burst of 2 total across classes, not per class.
        let mut q = CreditQueue::with_classes(10_000_000_000, 8, 2);
        let mut r = rng();
        q.enqueue(SimTime::ZERO, credit_of(0, 1), &mut r);
        q.enqueue(SimTime::ZERO, credit_of(1, 2), &mut r);
        q.enqueue(SimTime::ZERO, credit_of(1, 2), &mut r);
        assert!(q.head_conforms(SimTime::ZERO));
        q.dequeue(SimTime::ZERO);
        assert!(q.head_conforms(SimTime::ZERO));
        q.dequeue(SimTime::ZERO);
        // Third credit (class 1) must wait for the shared meter.
        assert!(!q.head_conforms(SimTime::ZERO));
    }

    #[test]
    fn single_class_behaviour_unchanged() {
        let mut a = CreditQueue::new(10_000_000_000, 8);
        let mut b = CreditQueue::with_classes(10_000_000_000, 8, 1);
        let mut r1 = rng();
        let mut r2 = rng();
        for i in 0..12 {
            let ok_a = a.enqueue(SimTime(i * 1000), credit_of(0, (i % 3) as u32), &mut r1);
            let ok_b = b.enqueue(SimTime(i * 1000), credit_of(0, (i % 3) as u32), &mut r2);
            assert_eq!(ok_a, ok_b);
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.stats.dropped, b.stats.dropped);
    }
}
